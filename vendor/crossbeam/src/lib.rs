//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented over `std::thread::scope`
//! (stable since Rust 1.63, which post-dates crossbeam's scoped threads and
//! makes them redundant). Panic semantics differ slightly from upstream:
//! a panicking child re-panics on join inside `std::thread::scope`, so the
//! `Result` returned here is always `Ok` — callers that `.expect()` the
//! result observe identical behaviour either way.

pub mod thread {
    //! Scoped threads.

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    /// A scope for spawning borrowing threads, mirroring
    /// `crossbeam::thread::Scope` (spawn closures receive `&Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope, so
        /// threads can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing stack
    /// frame; all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this subset: a panicking child thread
    /// propagates its panic directly (std scoped-thread semantics).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            7
        })
        .expect("no panics");
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
