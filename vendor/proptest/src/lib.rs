//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `arg in strategy` bindings, range and tuple strategies,
//! [`Strategy::prop_map`], `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Unlike upstream there is **no
//! shrinking**: a failing case panics with the regular `assert!` message, and
//! the deterministic per-test seed makes failures reproducible.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a property-test block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for a named test.
#[doc(hidden)]
pub fn test_rng(name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7)
}

pub mod collection {
    //! Collection strategies.

    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs.

    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    pub mod prop {
        //! Alias of the crate root, as in upstream proptest.
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test (no shrinking in this subset;
/// behaves as `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (behaves as `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            let __strats = ($($strat,)+);
            for __case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::sample(&__strats, &mut __rng);
                $body
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a test running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2i64..3) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..5, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn mapped_tuples(p in pair_strategy()) {
            prop_assert!(p.0 < 10);
            prop_assert_eq!(p.1, p.1);
        }
    }

    #[test]
    fn default_config_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(a.gen_range(0u64..1_000), b.gen_range(0u64..1_000));
    }
}
