//! Offline, API-compatible subset of the `rand` crate (0.8-era surface).
//!
//! The build environment for this repository has no network access, so the
//! handful of `rand` APIs the workspace actually uses are reimplemented here
//! behind the same paths: [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — not the upstream ChaCha12, so
//! streams differ from real `rand`, but every use in the workspace only
//! relies on determinism-within-a-binary and statistical uniformity, both of
//! which hold.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps a random `u64` to a `f64` uniform in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed bytes.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ in this subset).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_unit_interval_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
