//! Offline, API-compatible subset of the `criterion` benchmarking crate.
//!
//! Provides the surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`] — with a simple
//! fixed-sample timer instead of upstream's adaptive statistics. Each
//! benchmark runs one warmup call plus `sample_size` timed calls and prints
//! the mean wall-clock time (and throughput when configured).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `f`: one warmup call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        let mean_s = b.mean.as_secs_f64();
        let mut line = format!("{}/{}: {}", self.name, id, fmt_duration(b.mean));
        if let Some(t) = self.throughput {
            if mean_s > 0.0 {
                match t {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  ({:.0} elem/s)", n as f64 / mean_s));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  ({:.0} B/s)", n as f64 / mean_s));
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Runs a benchmark by name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, f);
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // one warmup + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(21u64), &21u64, |b, &x| {
            b.iter(|| {
                seen = x;
            });
        });
        group.finish();
        assert_eq!(seen, 21);
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_nanos(50)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).contains(" s"));
    }
}
