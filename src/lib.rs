//! Workspace root crate for the RecMG reproduction.
//!
//! This crate re-exports the public API of every workspace member so that the
//! runnable examples under `examples/` and the integration tests under
//! `tests/` can exercise the whole system through one import. The actual
//! implementation lives in the `crates/` members:
//!
//! * [`recmg_tensor`] — tensors, autograd, LSTM/attention layers, losses.
//! * [`recmg_trace`] — synthetic DLRM embedding-access traces and analysis.
//! * [`recmg_cache`] — replacement policies, Belady/OPTgen, GPU buffer.
//! * [`recmg_prefetch`] — baseline prefetchers and co-simulation.
//! * [`recmg_dlrm`] — DLRM inference simulator and tiered-memory timing.
//! * [`recmg_core`] — the RecMG caching/prefetch models and buffer manager.

pub use recmg_cache as cache;
pub use recmg_core as core;
pub use recmg_dlrm as dlrm;
pub use recmg_prefetch as prefetch;
pub use recmg_tensor as tensor;
pub use recmg_trace as trace;
