//! Sparse-feature access study (paper §III): reuse distances, the 80/20
//! popularity skew, and the LRU-vs-optimal capacity gap.
//!
//! Run with: `cargo run --release --example trace_analysis`

use recmg_repro::cache::belady;
use recmg_repro::trace::{lru_hit_rates, ReuseHistogram, SyntheticConfig, TraceStats};

fn main() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.05).generate();
    let acc = trace.accesses();
    let stats = TraceStats::compute(&trace);

    println!("== popularity (paper §I) ==");
    for frac in [0.05, 0.1, 0.2, 0.5] {
        println!(
            "top {:>4.0}% of vectors take {:>5.1}% of accesses",
            frac * 100.0,
            stats.top_share(frac) * 100.0
        );
    }

    println!("\n== reuse-distance histogram (paper Fig. 3) ==");
    let hist = ReuseHistogram::compute(acc);
    println!("cold (first-touch) accesses: {}", hist.cold);
    for (i, &count) in hist.buckets.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat((count as f64).log2().max(0.0) as usize);
            println!("2^{i:<2} {count:>8}  {bar}");
        }
    }
    let tail_bound = ((stats.unique as f64) / 4.0).log2().floor() as usize;
    println!(
        "accesses with reuse distance >= 2^{tail_bound} (~unique/4): {:.1}%",
        hist.tail_fraction(tail_bound) * 100.0
    );

    println!("\n== LRU vs optimal (paper Fig. 3's right axis) ==");
    let caps: Vec<u64> = (3..=14).map(|i| 1u64 << i).collect();
    let lru = lru_hit_rates(acc, &caps);
    for (i, &cap) in caps.iter().enumerate() {
        let opt = belady::belady_hit_stats(acc, cap as usize).hit_rate();
        println!(
            "capacity {:>6}: LRU {:>5.1}%   OPT {:>5.1}%",
            cap,
            lru[i] * 100.0,
            opt * 100.0
        );
    }
    if let Some(opt_cap) = belady::belady_capacity_for_hit_rate(acc, 0.8) {
        let lru_cap = caps
            .iter()
            .zip(&lru)
            .find(|(_, &h)| h >= 0.8)
            .map(|(&c, _)| c);
        match lru_cap {
            Some(lc) => println!(
                "\n80% hits need OPT capacity {} vs LRU capacity {} — {:.1}x gap (paper: 16x)",
                opt_cap,
                lc,
                lc as f64 / opt_cap as f64
            ),
            None => {
                println!("\n80% hits need OPT capacity {opt_cap}; LRU never reaches 80% in range")
            }
        }
    }
}
