//! Streaming request serving with admission control and SLA budgets.
//!
//! Trains RecMG on half a synthetic trace, then serves a Poisson request
//! stream through a `ServingSession` at three offered loads: comfortable
//! (~50% of measured capacity), saturated (~95%), and overloaded (~200%).
//! The report shows what throughput numbers hide — per-request latency
//! percentiles, shed rate, and how the SLA machinery degrades guidance
//! (skip-ahead first, then prefetch-off) instead of letting the queue grow
//! without bound.
//!
//! Run with: `cargo run --release --example streaming_serving`

use std::time::Duration;

use recmg_repro::core::serving::WorkloadSpec;
use recmg_repro::core::{
    train_recmg, AdmissionPolicy, ArrivalProcess, BatchSource, GuidanceMode, RecMgConfig,
    SessionBuilder, SlaBudget, SyntheticSource, SystemBuilder, TrainOptions,
};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

fn main() {
    let cfg = RecMgConfig::default();
    let trace = SyntheticConfig::dataset_scaled(0, 0.01).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    println!(
        "trace: {} accesses, {} unique vectors, buffer capacity {capacity}",
        trace.len(),
        stats.unique
    );
    println!("training RecMG models on {half} accesses...");
    let trained = train_recmg(
        &trace.accesses()[..half],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );

    // Calibrate this machine's service rate with a batch-backed session
    // (the back-compat path: all requests arrive at once, nothing is shed)
    // in the same 4-shard/4-worker configuration the load runs use, so
    // "capacity" below means *this* serving configuration's capacity.
    let spec = WorkloadSpec::default();
    let requests = 300usize;
    let session = SessionBuilder::new()
        .workers(4)
        .guidance(GuidanceMode::Background {
            threads: 2,
            max_lag: 8,
            max_batch: 16,
        })
        .admission(AdmissionPolicy::unbounded())
        .build_system(
            SystemBuilder::from_trained(&trained)
                .shards(4)
                .capacity(capacity),
        );
    session.ingest(&mut BatchSource::from_vecs(
        spec.requests(requests, cfg.input_len),
    ));
    let (_sys, calib) = session.drain();
    let service_rate = calib.completed as f64 / calib.engine.elapsed_secs.max(1e-9);
    let sla = SlaBudget::new(Duration::from_secs_f64(5.0 / service_rate));
    println!(
        "calibration: {:.0} req/s batch-backed, SLA budget {:.2}ms\n",
        service_rate,
        sla.target.as_secs_f64() * 1e3
    );

    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9}",
        "offered load", "p50 ms", "p95 ms", "p99 ms", "shed", "SLA", "skip-ahd", "pf-off"
    );
    for (label, fraction) in [
        ("0.5x capacity", 0.5),
        ("0.95x capacity", 0.95),
        ("2x capacity", 2.0),
    ] {
        let session = SessionBuilder::new()
            .workers(4)
            .guidance(GuidanceMode::Background {
                threads: 2,
                max_lag: 8,
                max_batch: 16,
            })
            .admission(AdmissionPolicy {
                queue_depth: 32,
                ..AdmissionPolicy::default()
            })
            .sla(sla)
            .build_system(
                SystemBuilder::from_trained(&trained)
                    .shards(4)
                    .capacity(capacity),
            );
        let mut source = SyntheticSource::new(
            spec,
            cfg.input_len,
            requests,
            ArrivalProcess::Poisson {
                rate_hz: service_rate * fraction,
            },
            0xD1CE,
        )
        .with_deadline(sla.target * 4);
        session.ingest(&mut source);
        let (_sys, report) = session.drain();
        let s = report.sla.expect("sla configured");
        println!(
            "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>6.1}% {:>6.1}% {:>9} {:>9}",
            label,
            report.latency.p50.as_secs_f64() * 1e3,
            report.latency.p95.as_secs_f64() * 1e3,
            report.latency.p99.as_secs_f64() * 1e3,
            report.shed_rate() * 100.0,
            s.attainment() * 100.0,
            s.degraded_skip_ahead,
            s.degraded_prefetch_off,
        );
    }

    println!(
        "\nUnder pressure the session sheds what it cannot serve in time\n\
         (bounded queue + blown-deadline rejection) and degrades the rest:\n\
         requests whose queueing delay eats into the SLA budget run with\n\
         stale guidance (the paper's §VI-C skip-ahead), and past the budget\n\
         prefetch application is suppressed too. Latency percentiles stay\n\
         bounded instead of diverging with the queue."
    );
}
