//! Prefetcher shootout: every baseline prefetcher plus RecMG's prefetch
//! model co-simulated with a 32-way LRU buffer (paper Figs. 9/10/14 in one
//! table).
//!
//! Run with: `cargo run --release --example prefetcher_shootout`

use recmg_repro::cache::SetAssocLru;
use recmg_repro::core::{train_recmg, PmPrefetcher, RecMgConfig, TrainOptions};
use recmg_repro::prefetch::{
    cosimulate, Berti, BestOffset, Bingo, Domino, MicroArmedBandit, NextLine, Prefetcher, Stride,
    TransFetch, TransFetchConfig,
};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

fn main() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.05).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    let train = &trace.accesses()[..half];
    let eval = &trace.accesses()[half..];
    println!(
        "trace: {} accesses ({} eval), buffer {} vectors",
        stats.accesses,
        eval.len(),
        capacity
    );

    let cfg = RecMgConfig::default();
    println!("training RecMG models...");
    let trained = train_recmg(train, &cfg, capacity, &TrainOptions::default());
    println!("training TransFetch baseline...");
    let mut transfetch = TransFetch::new(TransFetchConfig {
        predict_every: 4,
        ..TransFetchConfig::default()
    });
    transfetch.train(train, 300, cfg.window_len());

    let mut contenders: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("next-line", Box::new(NextLine::new(2, 1_500))),
        ("stride", Box::new(Stride::new(2))),
        ("Bingo", Box::new(Bingo::new())),
        (
            "Domino",
            Box::new(Domino::with_unique_budget(stats.unique as usize, 5)),
        ),
        ("BOP", Box::new(BestOffset::with_degree(2))),
        ("Berti", Box::new(Berti::new(2))),
        ("MAB", Box::new(MicroArmedBandit::new(1_500))),
        ("TransFetch", Box::new(transfetch)),
        (
            "RecMG-PM",
            Box::new(PmPrefetcher::new(
                &trained.prefetch,
                &cfg,
                trained.codec.clone(),
            )),
        ),
    ];

    println!(
        "\n{:<12} {:>9} {:>14} {:>10} {:>10} {:>12}",
        "prefetcher", "hit rate", "prefetch hits", "issued", "accuracy", "metadata(B)"
    );
    for (name, prefetcher) in &mut contenders {
        let mut lru = SetAssocLru::new(capacity, 32);
        let r = cosimulate(&mut lru, prefetcher.as_mut(), eval);
        println!(
            "{:<12} {:>8.2}% {:>14} {:>10} {:>9.1}% {:>12}",
            name,
            r.hit_rate() * 100.0,
            r.prefetch_hits,
            r.issued,
            r.prefetch_accuracy() * 100.0,
            prefetcher.metadata_bytes()
        );
    }
    println!("\n(paper: spatial/delta prefetchers find almost nothing; RecMG's learned prefetcher leads on accuracy with few issues)");
}
