//! Zero-quiescence rebalancing: a serving session that re-places, resizes,
//! and replicates its shards *while requests are in flight*.
//!
//! An 8-shard system over a DRAM + CXL-like topology serves a phase-flip
//! workload: a skewed hot set (3:2:1 across three shards) that moves to
//! three different shards halfway through. Two sessions serve the exact
//! same stream:
//!
//! * `static` — placement frozen at its cold-start guess;
//! * `live`   — a [`LiveRebalancer`] watches the per-shard sketches and,
//!   on count/phase-trigger fires, double-buffers shards to better
//!   tiers/capacities behind an epoch-versioned routing table (readers
//!   never block) and replicates read-hot slow-tier shards into fast
//!   memory.
//!
//! Every copy the migrator makes is charged into the same hit-weighted
//! cost counters the serving path uses, so the comparison is honest: the
//! live session pays for its own migrations.
//!
//! Run with: `cargo run --release --example live_rebalance`

use std::time::Duration;

use recmg_repro::core::{
    AdmissionPolicy, BatchSource, CachingModel, CardinalityWorkingSet, ClosedLoopSource,
    FrequencyRankCodec, GuidanceMode, LiveRebalanceConfig, MemoryTier, RecMgConfig,
    ReplicationPolicy, SessionBuilder, ShardRouter, ShardedRecMgSystem, SketchConfig,
    SystemBuilder, TierCost, TierTopology,
};
use recmg_repro::trace::{RowId, TableId, VectorKey};

const SHARDS: usize = 8;
const BATCHES_PER_PHASE: usize = 100;
const EPOCH: u64 = 128;

/// Keys homed on one shard, found by walking row ids through the router.
fn keys_on_shard(router: &ShardRouter, shard: usize, n: usize, salt: u64) -> Vec<VectorKey> {
    (0..)
        .map(|i| VectorKey::new(TableId(1), RowId(salt + i as u64)))
        .filter(|&k| router.shard_of(k) == shard)
        .take(n)
        .collect()
}

/// One phase: 60-key batches, 2/3 cycling a skewed hot set homed on
/// `targets` (30/20/10 keys), 1/3 cycling a 100-key background tail.
fn phase(targets: [usize; 3], salt: u64) -> Vec<Vec<VectorKey>> {
    let router = ShardRouter::new(SHARDS);
    let hot: Vec<VectorKey> = targets
        .iter()
        .zip([30usize, 20, 10])
        .flat_map(|(&t, n)| keys_on_shard(&router, t, n, salt))
        .collect();
    let bg: Vec<VectorKey> = (0..100)
        .map(|i| VectorKey::new(TableId(2), RowId(i)))
        .collect();
    (0..BATCHES_PER_PHASE)
        .map(|round| {
            let mut keys = Vec::with_capacity(60);
            for i in 0..40 {
                keys.push(hot[(round * 40 + i) % hot.len()]);
            }
            for i in 0..20 {
                keys.push(bg[(round * 20 + i) % bg.len()]);
            }
            keys
        })
        .collect()
}

fn build_system(caching: &CachingModel, codec_keys: &[VectorKey]) -> ShardedRecMgSystem {
    let topology = TierTopology::new(vec![
        MemoryTier::dram(96),
        MemoryTier::new(
            "cxl",
            160,
            TierCost::cxl_like().with_penalty(Duration::from_nanos(400)),
        ),
    ]);
    SystemBuilder::new(caching, None, FrequencyRankCodec::from_accesses(codec_keys))
        .shards(SHARDS)
        .topology(topology)
        .placement(CardinalityWorkingSet::with_floor(20))
        .guidance(GuidanceMode::Inline)
        .sketch(SketchConfig {
            epoch_len: EPOCH,
            window_epochs: 4,
            ..SketchConfig::default()
        })
        .build()
}

fn main() {
    let phase_a = phase([0, 1, 2], 0);
    let phase_b = phase([5, 6, 7], 1_000_000);
    let stream: Vec<Vec<VectorKey>> = phase_a.iter().chain(phase_b.iter()).cloned().collect();
    let accesses_per_phase = (BATCHES_PER_PHASE * 60) as u64;

    let cfg = RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec_keys = phase_a.concat();

    println!(
        "phase-flip stream: {} batches x 60 keys, hot set flips shards {{0,1,2}} -> {{5,6,7}}\n",
        stream.len()
    );

    for live in [false, true] {
        let mut builder = SessionBuilder::new()
            .workers(2)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded());
        if live {
            builder = builder.live(
                LiveRebalanceConfig {
                    fill_pause: Duration::ZERO,
                    warm_fraction: 1.0,
                    ..LiveRebalanceConfig::default()
                }
                .with_min_new_accesses(accesses_per_phase / 2)
                .with_cooldown(2 * EPOCH)
                .with_replication(ReplicationPolicy {
                    unit: 64,
                    hot_share: 0.10,
                    read_dominance: 0.5,
                    ..ReplicationPolicy::default()
                }),
            );
        }
        let session = builder.build(build_system(&caching, &codec_keys));
        let mut source = ClosedLoopSource::new(
            BatchSource::from_vecs(stream.clone()),
            2,
            session.progress(),
        );
        session.ingest(&mut source);
        let (sys, report) = session.drain();

        let cost_ns: u64 = (0..sys.num_shards())
            .map(|i| sys.shard_traffic(i).cost_ns)
            .sum();
        let tag = if live { "live" } else { "static" };
        println!(
            "{tag:<8} cost {:.3}ms  p99 {:.3}ms  hit rate {:.2}%",
            cost_ns as f64 / 1e6,
            report.latency.p99.as_secs_f64() * 1e3,
            report.engine.stats.hit_rate() * 100.0,
        );
        if live {
            let m = &report.engine.migration;
            let r = &report.engine.replication;
            println!(
                "         {} migrations, {} resizes, route epoch {}, {:.3}ms charged fill cost",
                m.migrations,
                m.resizes,
                m.route_epoch,
                m.migration_cost_ns as f64 / 1e6,
            );
            println!(
                "         {} replica hits saved {:.3}ms ({} fills, {} invalidations)",
                r.replica_hits,
                r.saved_cost_ns as f64 / 1e6,
                r.replica_fills,
                r.invalidations,
            );
            for i in 0..sys.num_shards() {
                println!(
                    "         shard {i}: tier {} cap {:>3} ({} hits / {} misses)",
                    sys.shard_tier(i),
                    sys.shard_buffer(i).capacity(),
                    sys.shard_traffic(i).hits,
                    sys.shard_traffic(i).misses,
                );
            }
        }
    }

    println!(
        "\nThe live session never drains: triggers fire mid-stream, shards are\n\
         double-buffered into their new tier while the old buffer keeps serving,\n\
         and the routing table flips in one atomic epoch publish. The flip's new\n\
         hot shards get promoted (and the squeezed-out one replicated) within a\n\
         sketch epoch or two, which is where the cost gap comes from.\n\
         The serving bench's online_rebalance section runs this same scenario\n\
         against a drain-based reactive baseline: `cargo bench -p recmg-bench\n\
         --bench serving`."
    );
}
