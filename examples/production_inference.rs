//! Production-style end-to-end DLRM inference (paper §VII-F): batched
//! queries, tiered-memory timing, pipelined CPU model guidance, and the
//! per-batch time breakdown of Fig. 16.
//!
//! Run with: `cargo run --release --example production_inference`

use recmg_repro::cache::SetAssocLru;
use recmg_repro::core::{train_recmg, RecMgConfig, RecMgSystem, TrainOptions};
use recmg_repro::dlrm::{
    simulate_pipeline, BufferManager, DlrmConfig, DlrmModel, EmbeddingStore, InferenceEngine,
    PolicyBufferManager, TimingConfig,
};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

fn main() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.05).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(18.0);
    let half = trace.len() / 2;
    println!("training RecMG models on {half} accesses...");
    let trained = train_recmg(
        &trace.accesses()[..half],
        &RecMgConfig::default(),
        capacity,
        &TrainOptions::default(),
    );

    let engine = InferenceEngine::new(
        DlrmModel::new(DlrmConfig::small(), 7),
        EmbeddingStore::new(16),
        TimingConfig::default_scaled(),
    );
    let queries_per_batch = (6_000.0 / stats.mean_pooling.max(1.0)).round() as usize;

    let mut lru = PolicyBufferManager::new(SetAssocLru::new(capacity, 32));
    let mut cm = RecMgSystem::new(&trained.caching, None, trained.codec.clone(), capacity);
    let mut rec = RecMgSystem::from_trained(&trained, capacity);

    println!(
        "\n{:<8} {:>9} {:>8} {:>12} {:>13} {:>8} {:>10}",
        "strategy", "hit rate", "copy", "gpu compute", "buffer mgmt", "others", "total(ms)"
    );
    let mut lru_total = 0.0;
    for (name, mgr) in [
        ("LRU", &mut lru as &mut dyn BufferManager),
        ("CM", &mut cm),
        ("RecMG", &mut rec),
    ] {
        let r = engine.run(&trace, queries_per_batch, mgr);
        let b = r.mean_breakdown;
        if name == "LRU" {
            lru_total = b.total_ms();
        }
        println!(
            "{:<8} {:>8.2}% {:>8.1} {:>12.1} {:>13.1} {:>8.1} {:>10.1}",
            name,
            r.access.hit_rate() * 100.0,
            b.copy_ms,
            b.gpu_compute_ms,
            b.buffer_mgmt_ms,
            b.others_ms,
            b.total_ms()
        );
        if name == "RecMG" {
            println!(
                "\nRecMG end-to-end inference time reduction vs LRU: {:.1}% (paper: 31% avg, up to 43%)",
                (1.0 - b.total_ms() / lru_total) * 100.0
            );
        }
    }

    // Pipeline overlap (paper §VI-C): CPU guidance for batch i+1 overlaps
    // GPU batch i; the GPU never waits.
    let batches = 40;
    let gpu_ms = vec![150.0; batches];
    let cpu_ms = vec![35.0; batches];
    let p = simulate_pipeline(&cpu_ms, &gpu_ms);
    println!(
        "\npipeline: serial {:.0}ms vs overlapped {:.0}ms ({:.2}x), {:.0}% of batches freshly guided",
        p.serial_ms,
        p.pipelined_ms,
        p.speedup(),
        p.guided_fraction() * 100.0
    );
}
