//! Multi-tenant SLA serving under a Markov-modulated flash crowd.
//!
//! Two tenants share one live serving session: `budgeted` (dequeue
//! weight 3, a per-tenant SLA budget) offers a steady Poisson stream,
//! while `besteffort` (weight 1, a queue quota, deadline-carrying
//! requests) replays a Criteo-format trace. In the `steady` scenario
//! both tenants pace at a fraction of measured capacity; in
//! `flash_crowd` the best-effort tenant's arrivals come from a
//! two-state Markov chain whose spike state floods at many times the
//! steady rate. Admission control (quota + deadline shedding) makes the
//! best-effort tenant absorb its own burst, and weighted-fair dequeue
//! keeps the budgeted tenant's tail latency flat — the per-tenant
//! report rows below show exactly who paid for the overload.
//!
//! Run with: `cargo run --release --example multi_tenant`

use std::io::Cursor;
use std::time::Duration;

use recmg_repro::core::serving::WorkloadSpec;
use recmg_repro::core::{
    profile_trace, train_recmg, AdmissionPolicy, ArrivalProcess, BatchSource, FileTraceSource,
    GuidanceMode, RecMgConfig, SessionBuilder, SessionReport, SlaBudget, SyntheticSource,
    SystemBuilder, TenantSpec, TraceFormat, TrainOptions, CRITEO_TABLES,
};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

/// Synthesizes a Criteo-style TSV (label, 13 dense, 26 categorical hex
/// fields per line) with a skewed categorical distribution, standing in
/// for the real kaggle/terabyte dumps the loader streams.
fn synthetic_criteo_tsv(lines: usize) -> String {
    let mut out = String::new();
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..lines {
        out.push('1');
        for _ in 0..13 {
            out.push('\t');
            out.push('0');
        }
        for _ in 0..CRITEO_TABLES {
            out.push('\t');
            // Zipf-ish: most draws collapse onto a few hot values.
            let r = next();
            let v = if r % 10 < 7 { r % 8 } else { r % 4096 };
            out.push_str(&format!("{v:08x}"));
        }
        out.push('\n');
    }
    out
}

fn tenant_table(report: &SessionReport) {
    println!(
        "  {:<11} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9} {:>7}",
        "tenant", "subm", "done", "reject", "shed", "p50 ms", "p99 ms", "SLA"
    );
    for t in &report.tenants {
        println!(
            "  {:<11} {:>6} {:>6} {:>7} {:>7} {:>9.3} {:>9.3} {:>7}",
            t.name,
            t.submitted,
            t.completed,
            t.rejected_queue_full + t.rejected_deadline,
            t.shed_in_queue,
            t.latency.p50.as_secs_f64() * 1e3,
            t.latency.p99.as_secs_f64() * 1e3,
            t.sla
                .as_ref()
                .map(|s| format!("{:.0}%", s.attainment() * 100.0))
                .unwrap_or_else(|| "-".into()),
        );
        // Per-tenant conservation is exact, not approximate.
        assert_eq!(t.completed + t.unserved(), t.submitted);
    }
}

fn main() {
    let cfg = RecMgConfig::default();
    let trace = SyntheticConfig::dataset_scaled(0, 0.01).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    println!("training RecMG models on {half} accesses...");
    let trained = train_recmg(
        &trace.accesses()[..half],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );
    let build = || {
        SystemBuilder::from_trained(&trained)
            .shards(4)
            .capacity(capacity)
            .build()
    };

    // The best-effort tenant replays a real-format trace; profiling its
    // prefix calibrates the sketch epoch to the observed footprint.
    let tsv = synthetic_criteo_tsv(2_000);
    let profile = profile_trace(
        &mut Cursor::new(tsv.as_str()),
        TraceFormat::Criteo {
            rows_per_table: 4096,
        },
        500,
    );
    println!(
        "trace profile: {} queries, {} accesses, {} unique keys across {} tables \
         -> sketch epoch {}",
        profile.queries,
        profile.accesses,
        profile.unique_keys,
        profile.tables,
        profile.sketch_config().epoch_len,
    );

    // Calibrate this machine's service rate with a batch-backed session.
    let spec = WorkloadSpec::default();
    let session = SessionBuilder::new()
        .workers(2)
        .guidance(GuidanceMode::Inline)
        .admission(AdmissionPolicy::unbounded())
        .build(build());
    session.ingest(&mut BatchSource::from_vecs(
        spec.requests(300, cfg.input_len),
    ));
    let (_sys, calib) = session.drain();
    let service_rate = calib.completed as f64 / calib.engine.elapsed_secs.max(1e-9);
    let steady_hz = (service_rate * 0.15).max(50.0);
    let mean_service = Duration::from_secs_f64(1.0 / service_rate.max(1e-9));
    println!(
        "calibration: {service_rate:.0} req/s batch-backed; steady rate {steady_hz:.0} req/s per tenant\n",
    );

    for (scenario, besteffort_arrivals) in [
        ("steady", ArrivalProcess::Poisson { rate_hz: steady_hz }),
        (
            "flash_crowd",
            // Two-state chain: ~80-arrival steady dwells, then a spike
            // state offering 32x the steady rate for ~150 arrivals.
            ArrivalProcess::flash_crowd(steady_hz, 32.0, 80, 150),
        ),
    ] {
        let session = SessionBuilder::new()
            .workers(2)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy {
                queue_depth: 64,
                ..AdmissionPolicy::default()
            })
            .tenants(vec![
                TenantSpec::new("budgeted")
                    .with_weight(3.0)
                    .with_sla(SlaBudget::new(mean_service * 12)),
                TenantSpec::new("besteffort").with_quota(4),
            ])
            .build(build());
        let mut budgeted = SyntheticSource::new(
            spec,
            cfg.input_len,
            400,
            ArrivalProcess::Poisson { rate_hz: steady_hz },
            0xB0D6,
        );
        let mut besteffort = FileTraceSource::new(
            Cursor::new(tsv.as_str()),
            TraceFormat::Criteo {
                rows_per_table: 4096,
            },
            1,
            besteffort_arrivals,
            4,
        )
        .with_deadline(mean_service * 5)
        .for_tenant(1);
        session.ingest_multi(&mut [&mut budgeted, &mut besteffort]);
        let (_sys, report) = session.drain();
        println!("{scenario}:");
        tenant_table(&report);
        println!();
    }

    println!(
        "The flash crowd is mostly the best-effort tenant's problem: its\n\
         quota bounds how much queue it can occupy and its deadline sheds\n\
         what the spike makes stale, so the overload shows up as its own\n\
         rejects while the budgeted tenant completes everything and its\n\
         SLA attainment barely moves between the two scenarios."
    );
}
