//! Sharded concurrent serving versus the sequential reference system.
//!
//! Trains RecMG on half a synthetic trace, then serves the whole trace
//! three ways: the sequential `RecMgSystem` oracle, the sharded system with
//! inline guidance (bitwise-identical at one shard), and the concurrent
//! engine with the background guidance plane (the paper's §VI-C
//! non-blocking skip-ahead — serving never waits for the models).
//!
//! Run with: `cargo run --release --example sharded_serving`

use recmg_repro::core::{
    train_recmg, GuidanceMode, RecMgConfig, RecMgSystem, ServeOptions, SystemBuilder, TrainOptions,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

fn main() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.02).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    println!(
        "trace: {} accesses, {} unique vectors, buffer capacity {capacity}",
        trace.len(),
        stats.unique
    );
    println!("training RecMG models on {half} accesses...");
    let trained = train_recmg(
        &trace.accesses()[..half],
        &RecMgConfig::default(),
        capacity,
        &TrainOptions::tiny(),
    );
    let batches = trace.batches(20);

    // Sequential reference.
    let mut reference = RecMgSystem::from_trained(&trained, capacity);
    let start = std::time::Instant::now();
    let mut ref_stats = BatchAccessStats::default();
    for batch in &batches {
        ref_stats.accumulate(reference.process_batch(batch));
    }
    let ref_kps = trace.len() as f64 / start.elapsed().as_secs_f64();

    // One shard, inline guidance: must match the reference exactly.
    let mut one = SystemBuilder::from_trained(&trained)
        .capacity(capacity)
        .build();
    let one_report = one.serve(
        &batches,
        &ServeOptions {
            workers: 1,
            guidance: GuidanceMode::Inline,
        },
    );
    assert_eq!(
        one_report.stats, ref_stats,
        "1-shard parity with RecMgSystem"
    );

    println!(
        "\n{:<26} {:>9} {:>12} {:>9}",
        "engine", "hit rate", "keys/sec", "guided"
    );
    println!(
        "{:<26} {:>8.2}% {:>12.0} {:>8.0}%",
        "sequential RecMgSystem",
        ref_stats.hit_rate() * 100.0,
        ref_kps,
        100.0
    );
    println!(
        "{:<26} {:>8.2}% {:>12.0} {:>8.0}%  (bit-identical to reference)",
        "sharded x1 (inline)",
        one_report.stats.hit_rate() * 100.0,
        one_report.keys_per_sec(),
        one_report.guided_fraction() * 100.0
    );

    for shards in [2usize, 4, 8] {
        let mut sys = SystemBuilder::from_trained(&trained)
            .shards(shards)
            .capacity(capacity)
            .build();
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: shards,
                guidance: GuidanceMode::Background {
                    threads: 2,
                    max_lag: 8,
                    max_batch: 16,
                },
            },
        );
        println!(
            "{:<26} {:>8.2}% {:>12.0} {:>8.0}%  ({:.2}x vs sequential)",
            format!("sharded x{shards} (background)"),
            report.stats.hit_rate() * 100.0,
            report.keys_per_sec(),
            report.guided_fraction() * 100.0,
            report.keys_per_sec() / ref_kps
        );
    }

    println!(
        "\nThe background plane never blocks serving: when the CPU cannot keep\n\
         up, chunks run on stale guidance and are counted as unguided — the\n\
         paper's skip-ahead rule (§VI-C). Hit rate holds even as guidance\n\
         coverage drops. Wall-clock scaling depends on available cores and on\n\
         how much of the serving cost is model guidance; `cargo bench -p\n\
         recmg-bench --bench serving` sweeps that regime and writes\n\
         BENCH_serving.json."
    );
}
