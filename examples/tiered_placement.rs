//! Tiered-memory shard placement: even split vs working-set vs hot-first.
//!
//! Trains RecMG on half a synthetic trace, then serves the whole trace on
//! a 4-shard system over a two-tier topology (a small fast DRAM tier plus
//! a large, slower CXL-like tier with an injected per-miss bandwidth
//! penalty) under three placement policies:
//!
//! * `EvenSplit` — even capacity shares, tiers filled in shard-id order
//!   (the historical, placement-oblivious layout);
//! * `WorkingSet` — RecShard-style: capacity shares proportional to each
//!   shard's observed demand mass (with a floor), hottest shards into the
//!   fast tier;
//! * `HotFirst` — even shares, but the shards whose traffic benefits most
//!   from fast memory own the DRAM tier;
//! * `CardinalityWorkingSet` — capacity shares proportional to each
//!   shard's *sketched unique-key footprint* (a HyperLogLog working-set
//!   estimate maintained on the demand path), the signal RecShard-style
//!   placement actually wants: reuse footprint, not miss volume.
//!
//! Each run does a warm observation pass, a `Rebalancer` step (placement
//! reacts to the observed per-shard stats), then a measured pass whose
//! per-tier traffic deltas produce the hit-weighted access cost the
//! policies compete on.
//!
//! Run with: `cargo run --release --example tiered_placement`

use recmg_repro::core::{
    train_recmg, CardinalityWorkingSet, EvenSplit, GuidanceMode, HotFirst, MemoryTier, Rebalancer,
    RecMgConfig, ServeOptions, SystemBuilder, TierCost, TierTopology, TierUsage, TrainOptions,
    WorkingSet,
};
use recmg_repro::trace::{SyntheticConfig, TraceStats};
use std::time::Duration;

fn main() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.02).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    println!(
        "trace: {} accesses, {} unique vectors, buffer capacity {capacity}",
        trace.len(),
        stats.unique
    );
    println!("training RecMG models on {half} accesses...");
    let trained = train_recmg(
        &trace.accesses()[..half],
        &RecMgConfig::default(),
        capacity,
        &TrainOptions::tiny(),
    );
    let batches = trace.batches(20);

    // Half the budget in DRAM, half in a slow tier with an injected 400ns
    // per-miss/fill bandwidth penalty. The fast tier holds two of the four
    // even shard shares — with headroom, so a working-set-grown hot shard
    // still fits in DRAM instead of falling through to the slow tier
    // (shares are sized before tiers are assigned; see `WorkingSet` docs).
    let fast = capacity / 2;
    let slow = capacity.saturating_sub(fast).max(1);
    let topology = || {
        TierTopology::new(vec![
            MemoryTier::dram(fast),
            MemoryTier::new(
                "cxl",
                slow.max(1),
                TierCost::cxl_like().with_penalty(Duration::from_nanos(400)),
            ),
        ])
    };
    println!(
        "topology: dram {fast} vectors + cxl {slow} vectors (hit {}ns vs {}ns)\n",
        TierCost::dram().hit_ns,
        TierCost::cxl_like().hit_ns,
    );

    println!(
        "{:<24} {:>9} {:>12} {:>14} {:>10} {:>12}",
        "placement", "hit rate", "keys/sec", "cost (ms)", "dram hits", "rebalanced"
    );
    let mut even_cost = None;
    for policy in [
        "even_split",
        "working_set",
        "cardinality_working_set",
        "hot_first",
    ] {
        let builder = SystemBuilder::from_trained(&trained)
            .shards(4)
            .topology(topology())
            .guidance(GuidanceMode::Inline);
        let mut sys = match policy {
            "even_split" => builder.placement(EvenSplit).build(),
            "working_set" => builder.placement(WorkingSet::default()).build(),
            "cardinality_working_set" => {
                builder.placement(CardinalityWorkingSet::default()).build()
            }
            _ => builder.placement(HotFirst).build(),
        };
        // Observation pass, then let the rebalancer react to the stats.
        let opts = ServeOptions {
            workers: 1,
            guidance: GuidanceMode::Inline,
        };
        sys.serve(&batches, &opts);
        let mut rebalancer = Rebalancer::new(1);
        let moved = rebalancer.maybe_rebalance(&mut sys);
        // Measured pass: the report's tier section is the per-run delta.
        let report = sys.serve(&batches, &opts);
        let cost_ms = report.access_cost_ns() as f64 / 1e6;
        let dram_hits = report
            .tiers
            .iter()
            .find(|t| t.name == "dram")
            .map_or(0, |t| t.traffic.hits);
        println!(
            "{:<24} {:>8.2}% {:>12.0} {:>14.3} {:>10} {:>12}",
            sys.placement_name(),
            report.stats.hit_rate() * 100.0,
            report.keys_per_sec(),
            cost_ms,
            dram_hits,
            if moved { "yes" } else { "no" },
        );
        if policy == "even_split" {
            even_cost = Some(TierUsage::total_cost_ns(&report.tiers));
        } else if let Some(even) = even_cost {
            let saved = 100.0 * (1.0 - report.access_cost_ns() as f64 / even.max(1) as f64);
            println!("{:<24}   -> {saved:.1}% cheaper than even_split", "");
        }
        if policy == "cardinality_working_set" {
            println!(
                "{:<24}   -> sketched footprint {} unique keys across shards",
                "", report.unique_keys,
            );
        }
    }

    println!(
        "\nPlacement never changes what is served — only how big each shard's\n\
         buffer share is and which memory tier pays for its traffic. Working-set\n\
         sizing grows hot shards' buffers (more hits overall); hot-first routing\n\
         moves the most fast-tier-profitable shards into DRAM (same hits, cheaper).\n\
         On this trace the hash router spreads unique keys evenly, so footprint\n\
         (cardinality) shares stay near even — miss mass is the better signal for\n\
         a stationary skew. Footprint sizing earns its keep when footprints\n\
         genuinely differ and when the workload *changes phase*: the\n\
         working_set_estimation section of BENCH_serving.json pairs it with the\n\
         sketch phase trigger on a hot-set flip, where it beats miss-mass +\n\
         periodic rebalancing outright.\n\
         `cargo bench -p recmg-bench --bench serving` sweeps both sections."
    );
}
