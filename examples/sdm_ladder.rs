//! Software-defined memory: a three-rung DRAM → mapped-file → file ladder
//! serving an embedding store four times bigger than the fast tier.
//!
//! The ladder is the point: instead of pretending all of memory is RAM,
//! each tier's row bytes live on a real storage backend (heap, an
//! `mmap`'d temp file, a plain `pread`/`pwrite` file), and each tier's
//! access cost is *measured* by a bind-time calibration probe instead of
//! injected. Two sessions then serve the same skewed stream:
//!
//! * `blocking` — every slow-tier miss pays the full read-through cost
//!   inline;
//! * `async`   — misses enqueue onto a bounded, coalescing fill queue
//!   drained by background fill threads; the miss itself pays only the
//!   slow read, and the install cost lands when the fill promotes.
//!
//! Run with: `cargo run --release --example sdm_ladder`

use recmg_repro::core::{
    AdmissionPolicy, BatchSource, CachingModel, CalibrationReport, FillMode, FrequencyRankCodec,
    GuidanceMode, HotFirst, RecMgConfig, SessionBuilder, SessionReport, ShardedRecMgSystem,
    SystemBuilder, TierTopology,
};
use recmg_repro::trace::{RowId, TableId, VectorKey};

const SHARDS: usize = 4;
const FAST_ROWS: usize = 256;
const BATCHES: usize = 400;
const BATCH: usize = 48;

/// A skewed stream over a footprint 4× the fast tier: 2/3 of accesses
/// cycle a hot set that fits in DRAM, 1/3 walk the cold tail that only
/// the slow rungs can hold.
fn workload() -> Vec<Vec<VectorKey>> {
    let footprint = 4 * FAST_ROWS as u64;
    let hot = FAST_ROWS as u64 / 2;
    (0..BATCHES)
        .map(|b| {
            (0..BATCH)
                .map(|i| {
                    let n = (b * BATCH + i) as u64;
                    let row = if n % 3 < 2 {
                        (n * 17) % hot
                    } else {
                        hot + (n * 101) % (footprint - hot)
                    };
                    VectorKey::new(TableId(0), RowId(row))
                })
                .collect()
        })
        .collect()
}

fn ladder_system(
    caching: &CachingModel,
    topology: TierTopology,
    fill: FillMode,
) -> ShardedRecMgSystem {
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    SystemBuilder::new(caching, None, codec)
        .shards(SHARDS)
        .topology(topology)
        .placement(HotFirst)
        .guidance(GuidanceMode::Inline)
        .fill_mode(fill)
        .build()
}

fn serve(caching: &CachingModel, topology: TierTopology, fill: FillMode) -> SessionReport {
    let session = SessionBuilder::new()
        .workers(SHARDS)
        .admission(AdmissionPolicy::unbounded())
        .build(ladder_system(caching, topology, fill));
    let batches = workload();
    let refs: Vec<&[VectorKey]> = batches.iter().map(|b| b.as_slice()).collect();
    session.ingest(&mut BatchSource::new(&refs));
    let (_system, report) = session.drain();
    report
}

fn main() {
    let cfg = RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);

    // One bind-time probe prices the tiers for BOTH rows: re-probing per
    // system would make the blocking/async comparison measure probe
    // noise, not the fill plane.
    let mut topology = TierTopology::sdm_ladder(FAST_ROWS, FAST_ROWS, 2 * FAST_ROWS);
    let calibration: CalibrationReport = topology.calibrate();

    let blocking = serve(&caching, topology.clone(), FillMode::Blocking);
    let async_report = serve(
        &caching,
        topology,
        FillMode::Async {
            threads: 2,
            queue_depth: 256,
        },
    );

    println!("software-defined memory ladder ({SHARDS} shards, {FAST_ROWS} fast rows,");
    println!("footprint 4x the fast tier, measured costs)\n");

    println!("calibrated tier costs (bind-time probe, ns/op):");
    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>10}",
        "tier", "backend", "hit", "miss", "fill"
    );
    for cal in &calibration.tiers {
        println!(
            "{:<14} {:>12} {:>10} {:>10} {:>10}",
            cal.tier, cal.backend, cal.hit_ns, cal.miss_ns, cal.fill_ns
        );
    }

    for (label, report) in [("blocking", &blocking), ("async", &async_report)] {
        println!("\nper-tier traffic ({label} fills):");
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>14}",
            "tier", "hits", "misses", "fills", "cost_ns"
        );
        for usage in &report.engine.tiers {
            println!(
                "{:<14} {:>8} {:>8} {:>8} {:>14}",
                usage.name,
                usage.traffic.hits,
                usage.traffic.misses,
                usage.traffic.demand_fills,
                usage.traffic.cost_ns
            );
        }
    }

    let b_cost = blocking.engine.access_cost_ns();
    let a_cost = async_report.engine.access_cost_ns();
    let fills = &async_report.engine.fills;
    println!("\nfill plane:");
    println!(
        "  blocking: hit rate {:.3}, access cost {} ns",
        blocking.engine.stats.hit_rate(),
        b_cost
    );
    println!(
        "  async:    hit rate {:.3}, access cost {} ns ({:.2}x of blocking)",
        async_report.engine.stats.hit_rate(),
        a_cost,
        a_cost as f64 / b_cost.max(1) as f64
    );
    println!(
        "  async queue: {} queued, {} coalesced, {} dropped, {} promoted",
        fills.queued, fills.coalesced, fills.dropped, fills.promoted
    );
}
