//! Quickstart: train RecMG on a synthetic DLRM trace and compare its GPU
//! buffer hit rate against production-style LRU.
//!
//! Run with: `cargo run --release --example quickstart`

use recmg_repro::cache::{simulate, SetAssocLru};
use recmg_repro::core::{train_recmg, RecMgConfig, RecMgSystem, TrainOptions};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

fn main() {
    // 1. Generate a production-like embedding-access trace (power-law
    //    popularity, co-occurrence structure, long-reuse tail).
    let trace = SyntheticConfig::dataset_scaled(0, 0.05).generate();
    let stats = TraceStats::compute(&trace);
    println!(
        "trace: {} accesses, {} unique vectors, {} tables, mean pooling {:.1}",
        stats.accesses, stats.unique, stats.tables_touched, stats.mean_pooling
    );

    // 2. Size the GPU buffer at 20% of unique vectors (the paper's
    //    convention) and train both models on the first half of the trace.
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    println!("buffer: {capacity} vectors (20% of unique); training on {half} accesses...");
    let trained = train_recmg(
        &trace.accesses()[..half],
        &RecMgConfig::default(),
        capacity,
        &TrainOptions::default(),
    );
    println!(
        "caching model accuracy vs OPT labels: {:.1}% (OPT hit rate {:.1}%)",
        trained.caching_accuracy * 100.0,
        trained.opt_hit_rate * 100.0
    );

    // 3. Serve the held-out second half.
    let eval = &trace.accesses()[half..];
    let mut system = RecMgSystem::from_trained(&trained, capacity);
    let mut rec = BatchAccessStats::default();
    for chunk in eval.chunks(256) {
        rec.accumulate(system.process_batch(chunk));
    }

    let mut lru = SetAssocLru::new(capacity, 32);
    let lru_stats = simulate(&mut lru, eval);

    println!("\n                 hit rate   cache hits   prefetch hits   on-demand");
    println!(
        "32-way LRU        {:>6.2}%   {:>10}   {:>13}   {:>9}",
        lru_stats.hit_rate() * 100.0,
        lru_stats.hits,
        0,
        lru_stats.misses
    );
    println!(
        "RecMG             {:>6.2}%   {:>10}   {:>13}   {:>9}",
        rec.hit_rate() * 100.0,
        rec.cache_hits,
        rec.prefetch_hits,
        rec.misses
    );
    let reduction = 1.0 - rec.misses as f64 / lru_stats.misses.max(1) as f64;
    println!(
        "\nRecMG reduced on-demand fetches by {:.1}% vs LRU",
        reduction * 100.0
    );
}
