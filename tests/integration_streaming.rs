//! Streaming-session correctness: the session against its sequential
//! oracle, and admission-control safety.
//!
//! Extends the parity oracle of `integration_sharding.rs` to the streaming
//! path: a 1-shard batch-backed `ServingSession` (one worker, inline
//! guidance, unbounded queue) runs the exact control flow of the
//! sequential `RecMgSystem`, so its hit/miss/prefetch counts must match
//! *exactly*. The property test pins the admission-control guarantee the
//! SLA machinery rests on: a request whose deadline is satisfiable at zero
//! load is never rejected or shed.

use std::time::Duration;

use proptest::prelude::*;

use recmg_repro::core::{
    train_recmg, AdmissionPolicy, ArrivalProcess, BatchSource, GuidanceMode, GuidancePrecision,
    RecMgConfig, RecMgSystem, Request, RequestSource, SessionBuilder, ShardedRecMgSystem,
    SlaBudget, TenantSpec, TraceReplaySource, TrainOptions,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{RowId, SyntheticConfig, TableId, TraceStats, VectorKey};

fn trained_setup() -> (
    recmg_repro::trace::Trace,
    recmg_repro::core::TrainedRecMg,
    usize,
) {
    let cfg = RecMgConfig::tiny();
    let trace = SyntheticConfig::tiny(101).generate();
    let capacity = TraceStats::compute(&trace).buffer_capacity(20.0);
    let trained = train_recmg(
        &trace.accesses()[..trace.len() / 2],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );
    (trace, trained, capacity)
}

#[test]
fn one_shard_batch_backed_session_matches_recmg_system_exactly() {
    let (trace, trained, capacity) = trained_setup();
    let mut reference = RecMgSystem::from_trained(&trained, capacity);
    let mut ref_stats = BatchAccessStats::default();
    for batch in trace.batches(10) {
        ref_stats.accumulate(reference.process_batch(batch));
    }

    let session = SessionBuilder::new()
        .workers(1)
        .guidance(GuidanceMode::Inline)
        .admission(AdmissionPolicy::unbounded())
        .build(
            recmg_repro::core::SystemBuilder::from_trained(&trained)
                .capacity(capacity)
                .build(),
        );
    let batches = trace.batches(10);
    session.ingest(&mut BatchSource::new(&batches));
    let (sharded, report) = session.drain();

    // Exact parity, not approximate: same cache hits, same prefetch hits,
    // same misses, same prefetch volume — the streaming path serves the
    // identical control flow.
    assert_eq!(report.engine.stats, ref_stats);
    assert_eq!(reference.prefetches_issued(), sharded.prefetches_issued());
    assert_eq!(report.completed, batches.len() as u64);
    assert_eq!(report.submitted, batches.len() as u64);
    assert_eq!(report.shed_rate(), 0.0);
    assert_eq!(report.latency.count, batches.len());
}

/// The batched background guidance plane reproduces inline-guidance
/// hit/miss/prefetch counts on one shard when driven in lockstep.
///
/// Requests are exactly one chunk (`input_len` *keys* each — not
/// `Trace::batches`, which groups by query), and the driver waits for both
/// the worker and the plane to go quiescent between requests. Under that
/// schedule the background plane applies chunk k's guidance before any
/// access of chunk k+1 — the same effective ordering as inline guidance —
/// so every count must match *exactly*: the batched kernels are
/// lane-independent and bit-identical to the per-item path.
#[test]
fn batched_background_session_matches_inline_counts_on_one_shard() {
    let (trace, trained, capacity) = trained_setup();
    let input_len = trained.caching.config().input_len;

    let mut reference = recmg_repro::core::SystemBuilder::from_trained(&trained)
        .capacity(capacity)
        .build();
    let mut ref_stats = BatchAccessStats::default();
    for chunk in trace.accesses().chunks(input_len) {
        ref_stats.accumulate(reference.process_batch(chunk));
    }

    let session = SessionBuilder::new()
        .workers(1)
        .guidance(GuidanceMode::Background {
            threads: 1,
            max_lag: 64,
            max_batch: 16,
        })
        .admission(AdmissionPolicy::unbounded())
        .build(
            recmg_repro::core::SystemBuilder::from_trained(&trained)
                .capacity(capacity)
                .build(),
        );
    for (i, chunk) in trace.accesses().chunks(input_len).enumerate() {
        session
            .submit(Request {
                id: i as u64,
                keys: chunk.to_vec(),
                arrival: Duration::ZERO,
                deadline: None,
                tenant: 0,
            })
            .expect("unbounded admission");
        while session.completed_requests() < (i + 1) as u64 || session.plane_pending() > 0 {
            std::thread::yield_now();
        }
    }
    let (sys, report) = session.drain();

    assert_eq!(report.engine.stats, ref_stats);
    assert_eq!(sys.prefetches_issued(), reference.prefetches_issued());
    assert_eq!(report.engine.total_chunks, reference.total_chunks());
    // Every chunk went through the plane and was applied; only the final
    // chunk's guidance lands at drain (late), every other chunk was
    // guided before its successor's accesses.
    assert_eq!(report.engine.guided_chunks, report.engine.total_chunks);
    assert_eq!(report.engine.plane.chunks, report.engine.guided_chunks);
    assert!(report.engine.plane.late_chunks <= 1);
    assert!(report.engine.plane.model_forwards > 0);
}

/// An int8-quantized guidance plane drives the buffer within a small
/// tolerance of the f32 plane on the same trace.
///
/// Both sessions run the lockstep schedule of
/// `batched_background_session_matches_inline_counts_on_one_shard`, so the
/// only difference is the weight precision of the compiled models.
/// Quantization shifts keep/prefetch probabilities by at most the
/// per-matrix `quantization_error` bound, so only near-threshold decisions
/// can flip: totals must match exactly and hit/prefetch counts must stay
/// within a few percent of the f32 plane's.
#[test]
fn quantized_background_session_tracks_f32_counts() {
    let (trace, trained, capacity) = trained_setup();
    let input_len = trained.caching.config().input_len;

    let run = |precision: GuidancePrecision| {
        let session = SessionBuilder::new()
            .workers(1)
            .guidance(GuidanceMode::Background {
                threads: 1,
                max_lag: 64,
                max_batch: 16,
            })
            .admission(AdmissionPolicy::unbounded())
            .build(
                recmg_repro::core::SystemBuilder::from_trained(&trained)
                    .capacity(capacity)
                    .precision(precision)
                    .build(),
            );
        for (i, chunk) in trace.accesses().chunks(input_len).enumerate() {
            session
                .submit(Request {
                    id: i as u64,
                    keys: chunk.to_vec(),
                    arrival: Duration::ZERO,
                    deadline: None,
                    tenant: 0,
                })
                .expect("unbounded admission");
            while session.completed_requests() < (i + 1) as u64 || session.plane_pending() > 0 {
                std::thread::yield_now();
            }
        }
        session.drain()
    };
    let (fsys, f) = run(GuidancePrecision::F32);
    let (qsys, q) = run(GuidancePrecision::Int8);

    assert!(!fsys.guidance_models_quantized());
    assert!(qsys.guidance_models_quantized());
    assert!(
        !f.engine.plane.kernel_lane.ends_with("+int8"),
        "f32 lane: {}",
        f.engine.plane.kernel_lane
    );
    assert!(
        q.engine.plane.kernel_lane.ends_with("+int8"),
        "int8 lane: {}",
        q.engine.plane.kernel_lane
    );

    // Identical traffic and guidance coverage; only decision quality may
    // drift, and only by a little.
    assert_eq!(f.engine.stats.total(), q.engine.stats.total());
    assert_eq!(f.engine.guided_chunks, q.engine.guided_chunks);
    assert_eq!(f.engine.plane.chunks, q.engine.plane.chunks);
    let total = f.engine.stats.total() as f64;
    let hit_gap = (f.engine.stats.hits() as f64 - q.engine.stats.hits() as f64).abs();
    assert!(
        hit_gap <= (0.05 * total).max(8.0),
        "hit gap {hit_gap} over {total} keys (f32 {} vs int8 {})",
        f.engine.stats.hits(),
        q.engine.stats.hits()
    );
    let pf_gap = (fsys.prefetches_issued() as f64 - qsys.prefetches_issued() as f64).abs();
    let pf_base = fsys.prefetches_issued().max(1) as f64;
    assert!(
        pf_gap <= (0.10 * pf_base).max(8.0),
        "prefetch gap {pf_gap} (f32 {} vs int8 {})",
        fsys.prefetches_issued(),
        qsys.prefetches_issued()
    );
}

#[test]
fn trace_replay_session_covers_the_trace() {
    let (trace, trained, capacity) = trained_setup();
    let session = SessionBuilder::new()
        .workers(2)
        .guidance(GuidanceMode::Background {
            threads: 1,
            max_lag: 4,
            max_batch: 8,
        })
        .admission(AdmissionPolicy::unbounded())
        .sla(SlaBudget::new(Duration::from_secs(30)))
        .build(
            recmg_repro::core::SystemBuilder::from_trained(&trained)
                .shards(4)
                .capacity(capacity)
                .build(),
        );
    let mut source = TraceReplaySource::new(&trace, 10, ArrivalProcess::Immediate, 7);
    let pulled = session.ingest(&mut source);
    let (sys, report) = session.drain();
    assert_eq!(report.completed, pulled as u64);
    assert_eq!(report.engine.stats.total(), trace.len() as u64);
    assert!(sys.total_chunks() > 0);
    let sla = report.sla.expect("sla configured");
    // A 30s budget at zero offered-load pressure is always met.
    assert_eq!(sla.missed, 0);
    assert!((sla.attainment() - 1.0).abs() < 1e-9);
}

fn key_strategy() -> impl Strategy<Value = VectorKey> {
    (0u32..16, 0u64..512).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Admission control never drops a request whose deadline is
    /// satisfiable at zero load: with an empty queue, enough queue depth,
    /// and a deadline far beyond the service time, every request must be
    /// admitted, served, and completed within its deadline.
    #[test]
    fn zero_load_satisfiable_deadlines_are_never_dropped(
        requests in prop::collection::vec(
            prop::collection::vec(key_strategy(), 1..60),
            1..12,
        ),
        num_shards in 1usize..5,
    ) {
        let cfg = RecMgConfig::tiny();
        let caching = recmg_repro::core::CachingModel::new(&cfg);
        let codec = recmg_repro::core::FrequencyRankCodec::from_accesses(
            &[VectorKey::new(TableId(0), RowId(1))],
        );
        let system = ShardedRecMgSystem::builder(&caching, None, codec)
            .shards(num_shards)
            .capacity(64)
            .build();
        let session = SessionBuilder::new()
            .workers(1)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy {
                queue_depth: 64, // >= the request count: zero-load queue never fills
                ..AdmissionPolicy::default()
            })
            .build(system);
        let total_keys: usize = requests.iter().map(Vec::len).sum();
        for (i, keys) in requests.iter().enumerate() {
            let got = session.submit(Request {
                id: i as u64,
                keys: keys.clone(),
                arrival: Duration::ZERO,
                deadline: Some(Duration::from_secs(60)),
                tenant: 0,
            });
            prop_assert_eq!(got, Ok(()), "zero-load submit {} must be admitted", i);
        }
        let (_sys, report) = session.drain();
        prop_assert_eq!(report.submitted, requests.len() as u64);
        prop_assert_eq!(report.completed, requests.len() as u64);
        prop_assert_eq!(report.rejected_queue_full, 0);
        prop_assert_eq!(report.rejected_deadline, 0);
        prop_assert_eq!(report.shed_in_queue, 0);
        prop_assert_eq!(report.shed_rate(), 0.0);
        prop_assert_eq!(report.engine.stats.total(), total_keys as u64);
    }

    /// Per-tenant shed accounting keeps the conservation law exact under
    /// admission pressure: for every tenant, completed + rejected_queue +
    /// rejected_deadline + shed_in_queue == submitted, and the per-tenant
    /// counters sum to the global ones — no request is double-counted or
    /// lost, whatever mix of quotas, blown deadlines, and queue pressure
    /// the generator throws at the session.
    #[test]
    fn tenant_shed_accounting_is_exactly_conserved(
        per_tenant in prop::collection::vec(
            prop::collection::vec(
                (prop::collection::vec(key_strategy(), 1..20), 0u32..4),
                1..16,
            ),
            1..4,
        ),
        queue_depth in 1usize..8,
    ) {
        let cfg = RecMgConfig::tiny();
        let caching = recmg_repro::core::CachingModel::new(&cfg);
        let codec = recmg_repro::core::FrequencyRankCodec::from_accesses(
            &[VectorKey::new(TableId(0), RowId(1))],
        );
        let system = ShardedRecMgSystem::builder(&caching, None, codec)
            .shards(2)
            .capacity(64)
            .build();
        let tenants: Vec<TenantSpec> = per_tenant
            .iter()
            .enumerate()
            .map(|(t, _)| {
                let spec = TenantSpec::new(&format!("tenant-{t}")).with_weight(t as f64 + 1.0);
                // Odd tenants get a tight quota so some submits bounce off
                // the per-tenant cap rather than the global depth.
                if t % 2 == 1 { spec.with_quota(1) } else { spec }
            })
            .collect();
        let num_tenants = tenants.len();
        let session = SessionBuilder::new()
            .workers(1)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy {
                queue_depth,
                ..AdmissionPolicy::default()
            })
            .tenants(tenants)
            .build(system);
        let mut id = 0u64;
        for (t, requests) in per_tenant.iter().enumerate() {
            for (keys, blown) in requests {
                // blown == 0 submits an already-expired deadline (rejected
                // at submit or shed in queue); others are satisfiable.
                let deadline = if *blown == 0 {
                    Some(Duration::ZERO)
                } else {
                    Some(Duration::from_secs(60))
                };
                let _ = session.submit(Request {
                    id,
                    keys: keys.clone(),
                    arrival: Duration::ZERO,
                    deadline,
                    tenant: t,
                });
                id += 1;
            }
        }
        let (_sys, report) = session.drain();
        prop_assert_eq!(report.tenants.len(), num_tenants);
        let mut sums = [0u64; 5];
        for (t, tenant) in report.tenants.iter().enumerate() {
            prop_assert_eq!(tenant.submitted, per_tenant[t].len() as u64);
            prop_assert_eq!(
                tenant.completed
                    + tenant.rejected_queue_full
                    + tenant.rejected_deadline
                    + tenant.shed_in_queue,
                tenant.submitted,
                "tenant {} leaks requests", t
            );
            sums[0] += tenant.submitted;
            sums[1] += tenant.completed;
            sums[2] += tenant.rejected_queue_full;
            sums[3] += tenant.rejected_deadline;
            sums[4] += tenant.shed_in_queue;
        }
        prop_assert_eq!(sums[0], report.submitted);
        prop_assert_eq!(sums[1], report.completed);
        prop_assert_eq!(sums[2], report.rejected_queue_full);
        prop_assert_eq!(sums[3], report.rejected_deadline);
        prop_assert_eq!(sums[4], report.shed_in_queue);
        prop_assert_eq!(
            report.completed + report.rejected_queue_full + report.rejected_deadline
                + report.shed_in_queue,
            report.submitted
        );
    }

    /// The batch-backed source is lossless: every key of every batch comes
    /// back out, in order, with arrival offset zero.
    #[test]
    fn batch_source_is_lossless(
        batches in prop::collection::vec(
            prop::collection::vec(key_strategy(), 0..40),
            0..10,
        ),
    ) {
        let refs: Vec<&[VectorKey]> = batches.iter().map(Vec::as_slice).collect();
        let mut src = BatchSource::new(&refs);
        let mut seen = Vec::new();
        while let Some(req) = src.next_request() {
            prop_assert_eq!(req.arrival, Duration::ZERO);
            seen.push(req.keys);
        }
        prop_assert_eq!(seen, batches);
    }
}
