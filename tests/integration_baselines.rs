//! Cross-crate consistency checks among the baseline implementations.

use recmg_repro::cache::{
    belady, optgen, simulate, CachePolicy, Drrip, FullyAssocLfu, FullyAssocLru, Hawkeye,
    Mockingjay, SetAssocLfu, SetAssocLru, Srrip,
};
use recmg_repro::prefetch::{cosimulate, BestOffset, Bingo, Domino, NoPrefetcher};
use recmg_repro::trace::{lru_hit_rates, SyntheticConfig, TraceStats};

fn policies(capacity: usize) -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(FullyAssocLru::new(capacity)),
        Box::new(FullyAssocLfu::new(capacity)),
        Box::new(SetAssocLru::new(capacity, 32)),
        Box::new(SetAssocLfu::new(capacity, 32)),
        Box::new(Srrip::new(capacity, 32)),
        Box::new(Drrip::new(capacity, 32)),
        Box::new(Hawkeye::new(capacity, 32)),
        Box::new(Mockingjay::new(capacity, 32)),
    ]
}

#[test]
fn optimal_dominates_every_policy() {
    let trace = SyntheticConfig::dataset_scaled(1, 0.02).generate();
    let acc = trace.accesses();
    let capacity = TraceStats::compute(&trace).buffer_capacity(10.0);
    let opt = belady::belady_hit_stats(acc, capacity).hit_rate();
    for mut p in policies(capacity) {
        let rate = simulate(p.as_mut(), acc).hit_rate();
        assert!(
            opt >= rate - 1e-9,
            "{} ({rate:.4}) beat OPT ({opt:.4})",
            p.name()
        );
        assert!(p.len() <= p.capacity(), "{} overfilled", p.name());
    }
}

#[test]
fn optgen_and_belady_agree_across_datasets() {
    for ds in 0..3 {
        let trace = SyntheticConfig::dataset_scaled(ds, 0.01).generate();
        let acc = trace.accesses();
        for capacity in [64usize, 512] {
            let a = optgen(acc, capacity).stats.hits;
            let b = belady::belady_hit_stats(acc, capacity).hits;
            assert_eq!(a, b, "dataset {ds} capacity {capacity}");
        }
    }
}

#[test]
fn reuse_distance_rule_matches_lru_simulation() {
    let trace = SyntheticConfig::dataset_scaled(2, 0.02).generate();
    let acc = trace.accesses();
    for capacity in [32u64, 256, 2048] {
        let analytical = lru_hit_rates(acc, &[capacity])[0];
        let mut lru = FullyAssocLru::new(capacity as usize);
        let simulated = simulate(&mut lru, acc).hit_rate();
        assert!(
            (analytical - simulated).abs() < 1e-12,
            "capacity {capacity}: {analytical} vs {simulated}"
        );
    }
}

#[test]
fn cosim_with_no_prefetcher_equals_plain_simulation() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.02).generate();
    let acc = trace.accesses();
    let capacity = 512;
    for mut p in policies(capacity) {
        let direct = {
            let mut q = policies(capacity)
                .into_iter()
                .find(|q| q.name() == p.name())
                .expect("same policy");
            simulate(q.as_mut(), acc)
        };
        let co = cosimulate(p.as_mut(), &mut NoPrefetcher, acc);
        assert_eq!(co.cache_hits, direct.hits, "{}", p.name());
        assert_eq!(co.on_demand, direct.misses, "{}", p.name());
    }
}

#[test]
fn prefetchers_never_break_capacity_or_accounting() {
    let trace = SyntheticConfig::dataset_scaled(0, 0.02).generate();
    let acc = trace.accesses();
    let capacity = 512;
    let unique = TraceStats::compute(&trace).unique as usize;
    let mut lru = SetAssocLru::new(capacity, 32);
    let mut bingo = Bingo::new();
    let r1 = cosimulate(&mut lru, &mut bingo, acc);
    assert_eq!(r1.total(), acc.len() as u64);
    assert!(r1.useful <= r1.issued);

    let mut lru = SetAssocLru::new(capacity, 32);
    let mut domino = Domino::with_unique_budget(unique, 5);
    let r2 = cosimulate(&mut lru, &mut domino, acc);
    assert_eq!(r2.total(), acc.len() as u64);
    assert!(lru.len() <= lru.capacity());

    let mut lru = SetAssocLru::new(capacity, 32);
    let mut bop = BestOffset::with_degree(2);
    let r3 = cosimulate(&mut lru, &mut bop, acc);
    assert!(r3.prefetch_accuracy() <= 1.0);
}

#[test]
fn spatial_prefetcher_is_useless_on_embedding_traces() {
    // The §VII-B observation that motivates RecMG: Bingo's spatial
    // footprints find (almost) nothing in user-driven embedding accesses.
    let trace = SyntheticConfig::dataset_scaled(0, 0.03).generate();
    let acc = trace.accesses();
    let capacity = TraceStats::compute(&trace).buffer_capacity(20.0);
    let mut with = SetAssocLru::new(capacity, 32);
    let mut bingo = Bingo::new();
    let r = cosimulate(&mut with, &mut bingo, acc);
    let prefetch_share = r.prefetch_hits as f64 / r.total() as f64;
    assert!(
        prefetch_share < 0.05,
        "Bingo unexpectedly effective: {prefetch_share}"
    );
}
