//! Tiered-placement correctness: placement changes capacity shares and
//! tier routing — never serving results.
//!
//! The load-bearing property is **policy parity on one shard**: with a
//! single shard every [`PlacementPolicy`] hands the whole topology
//! capacity to that shard, so `EvenSplit`, `WorkingSet`, and `HotFirst`
//! must produce byte-identical hit/miss/prefetch counts on any access
//! stream — tier cost models only change the accounting, not the
//! decisions. The sizing tests then pin the working-set apportionment
//! invariants (exact sum, per-shard floor) and the end-to-end rebalance
//! loop on a skewed stream.

use proptest::prelude::*;

use recmg_repro::core::{
    train_recmg, CachingModel, EvenSplit, FrequencyRankCodec, GuidanceMode, HotFirst, MemoryTier,
    PlacementPolicy, Rebalancer, RecMgConfig, ShardedRecMgSystem, SystemBuilder, TierCost,
    TierTopology, TierTraffic, TierUsage, TrainOptions, WorkingSet,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{RowId, SyntheticConfig, TableId, TraceStats, VectorKey};

fn key_strategy() -> impl Strategy<Value = VectorKey> {
    (0u32..16, 0u64..512).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r)))
}

/// A 1-shard system over a 2-tier topology with the given placement.
fn one_shard_system(
    caching: &CachingModel,
    codec: FrequencyRankCodec,
    placement: impl PlacementPolicy + 'static,
) -> ShardedRecMgSystem {
    SystemBuilder::new(caching, None, codec)
        .shards(1)
        .topology(TierTopology::two_tier(16, 48))
        .placement(placement)
        .guidance(GuidanceMode::Inline)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any placement policy preserves exact serving results versus
    /// EvenSplit on one shard: placement moves capacity and tiers, never
    /// correctness.
    #[test]
    fn placement_policies_preserve_one_shard_serving(
        keys in prop::collection::vec(key_strategy(), 1..400),
        policy_idx in 0usize..3,
    ) {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(
            &[VectorKey::new(TableId(0), RowId(1))],
        );
        let mut even = one_shard_system(&caching, codec.clone(), EvenSplit);
        let mut other: ShardedRecMgSystem = match policy_idx {
            0 => one_shard_system(&caching, codec, EvenSplit),
            1 => one_shard_system(&caching, codec, WorkingSet::default()),
            _ => one_shard_system(&caching, codec, HotFirst),
        };
        let mut a = BatchAccessStats::default();
        let mut b = BatchAccessStats::default();
        for chunk in keys.chunks(25) {
            a.accumulate(even.process_batch(chunk));
            b.accumulate(other.process_batch(chunk));
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(even.guided_chunks(), other.guided_chunks());
        prop_assert_eq!(even.len(), other.len());
        // Rebalancing a 1-shard system is likewise a no-op for serving:
        // the single shard keeps the total capacity under every policy.
        let cap_before = other.capacity();
        other.rebalance();
        prop_assert_eq!(other.capacity(), cap_before);
    }

    /// WorkingSet shares always sum exactly to the topology capacity and
    /// never dip below the floor, for arbitrary mass vectors.
    #[test]
    fn working_set_apportionment_invariants(
        mass in prop::collection::vec(0u64..1_000_000, 1..17),
        floor in 1usize..8,
        fast in 8usize..64,
        slow in 8usize..192,
    ) {
        let n = mass.len();
        let topology = TierTopology::two_tier(fast, slow);
        let total = topology.total_capacity();
        let policy = WorkingSet::with_floor(floor);
        let stats: Vec<TierTraffic> = mass
            .iter()
            .map(|&hits| TierTraffic {
                hits,
                ..Default::default()
            })
            .collect();
        let placements = policy.place(n, &topology, &stats);
        prop_assert_eq!(placements.len(), n);
        let sum: usize = placements.iter().map(|p| p.capacity).sum();
        let total_mass: u64 = mass.iter().sum();
        if total_mass > 0 && total >= n * floor {
            prop_assert_eq!(sum, total, "shares sum exactly to total capacity");
            for p in &placements {
                prop_assert!(p.capacity >= floor, "floor violated: {:?}", placements);
            }
        } else {
            // Degenerate fallback: historical even split.
            for p in &placements {
                prop_assert_eq!(p.capacity, total.div_ceil(n).max(1));
            }
        }
        for p in &placements {
            prop_assert!(p.tier < topology.num_tiers());
        }
    }
}

#[test]
fn working_set_sizing_tracks_mass_and_floor() {
    let topology = TierTopology::uniform(120);
    let policy = WorkingSet::with_floor(6);
    let stats: Vec<TierTraffic> = [900u64, 90, 9, 1]
        .iter()
        .map(|&hits| TierTraffic {
            hits,
            ..Default::default()
        })
        .collect();
    let placements = policy.place(4, &topology, &stats);
    let caps: Vec<usize> = placements.iter().map(|p| p.capacity).collect();
    assert_eq!(caps.iter().sum::<usize>(), 120);
    // Shares are ordered like the mass, and the floor protects the
    // coldest shard.
    assert!(caps[0] > caps[1] && caps[1] > caps[2] && caps[2] >= caps[3]);
    // 90% of the apportionable 96 vectors (120 − 4×6 floor) plus its
    // floor lands the dominant shard at 92.
    assert!(caps[0] >= 90, "dominant shard takes the bulk: {caps:?}");
    assert_eq!(caps[3], 6, "coldest shard pinned at the floor: {caps:?}");
}

/// The two equal-share policies the end-to-end test compares.
enum EitherPolicy {
    Even,
    Hot,
}

/// End-to-end: a trained 4-shard system over a DRAM + slow tier, served on
/// a skewed stream, rebalanced between drains. Totals are conserved, the
/// per-tier report covers every access, and hot-first routing never costs
/// more than the id-order split on the same stream.
#[test]
fn tiered_serving_covers_stream_and_hot_first_is_no_worse() {
    let cfg = RecMgConfig::tiny();
    let trace = SyntheticConfig::tiny(203).generate();
    let capacity = TraceStats::compute(&trace).buffer_capacity(20.0);
    let trained = train_recmg(
        &trace.accesses()[..trace.len() / 2],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );
    let fast = (capacity / 4).max(1);
    let slow_cost = TierCost::cxl_like();
    let topology = || {
        TierTopology::new(vec![
            MemoryTier::dram(fast),
            MemoryTier::new("slow", capacity.saturating_sub(fast).max(1), slow_cost),
        ])
    };
    let batches = trace.batches(10);
    let build = |placement: EitherPolicy| {
        let b = SystemBuilder::from_trained(&trained)
            .shards(4)
            .topology(topology());
        match placement {
            EitherPolicy::Even => b.placement(EvenSplit).build(),
            EitherPolicy::Hot => b.placement(HotFirst).build(),
        }
    };
    let run = |mut sys: ShardedRecMgSystem| {
        // Warm pass (deterministic, inline) to observe per-shard mass.
        let mut warm = BatchAccessStats::default();
        for batch in &batches {
            warm.accumulate(sys.process_batch(batch));
        }
        assert_eq!(warm.total(), trace.len() as u64);
        let mut rebalancer = Rebalancer::new(1);
        rebalancer.maybe_rebalance(&mut sys);
        // Measured pass: cumulative tier usage delta = this pass.
        let before = sys.tier_usage();
        let mut measured = BatchAccessStats::default();
        for batch in &batches {
            measured.accumulate(sys.process_batch(batch));
        }
        let after = sys.tier_usage();
        let delta: Vec<TierUsage> = after
            .iter()
            .zip(&before)
            .map(|(now, b)| now.delta_since(b))
            .collect();
        let covered: u64 = delta.iter().map(|u| u.traffic.demand()).sum();
        assert_eq!(covered, trace.len() as u64, "tier stats cover every access");
        (measured, TierUsage::total_cost_ns(&delta))
    };
    let (even_stats, even_cost) = run(build(EitherPolicy::Even));
    let (hot_stats, hot_cost) = run(build(EitherPolicy::Hot));
    // HotFirst keeps even capacities: identical serving results…
    assert_eq!(even_stats, hot_stats);
    // …and hottest-into-fastest assignment can only lower the
    // hit-weighted cost versus id-order assignment of equal-size shards.
    assert!(
        hot_cost <= even_cost,
        "hot-first {hot_cost} vs even {even_cost}"
    );
}
