//! Tiered-placement correctness: placement changes capacity shares and
//! tier routing — never serving results.
//!
//! The load-bearing property is **policy parity on one shard**: with a
//! single shard every [`PlacementPolicy`] hands the whole topology
//! capacity to that shard, so `EvenSplit`, `WorkingSet`, and `HotFirst`
//! must produce byte-identical hit/miss/prefetch counts on any access
//! stream — tier cost models only change the accounting, not the
//! decisions. The sizing tests then pin the working-set apportionment
//! invariants (exact sum, per-shard floor) and the end-to-end rebalance
//! loop on a skewed stream.

use proptest::prelude::*;

use recmg_repro::core::{
    hot_boundary, train_recmg, CachingModel, CardinalitySketch, CardinalityWorkingSet, EvenSplit,
    FrequencyRankCodec, GuidanceMode, HotFirst, MemoryTier, PlacementPolicy, Rebalancer,
    RecMgConfig, ShardRouter, ShardedRecMgSystem, SketchConfig, StatisticalPlacement,
    SystemBuilder, TableProfile, TierCost, TierTopology, TierTraffic, TierUsage, TrainOptions,
    WorkingSet,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{RowId, SyntheticConfig, TableId, TraceStats, VectorKey};

fn key_strategy() -> impl Strategy<Value = VectorKey> {
    (0u32..16, 0u64..512).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r)))
}

/// A 1-shard system over a 2-tier topology with the given placement.
fn one_shard_system(
    caching: &CachingModel,
    codec: FrequencyRankCodec,
    placement: impl PlacementPolicy + 'static,
) -> ShardedRecMgSystem {
    SystemBuilder::new(caching, None, codec)
        .shards(1)
        .topology(TierTopology::two_tier(16, 48))
        .placement(placement)
        .guidance(GuidanceMode::Inline)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any placement policy preserves exact serving results versus
    /// EvenSplit on one shard: placement moves capacity and tiers, never
    /// correctness.
    #[test]
    fn placement_policies_preserve_one_shard_serving(
        keys in prop::collection::vec(key_strategy(), 1..400),
        policy_idx in 0usize..4,
    ) {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(
            &[VectorKey::new(TableId(0), RowId(1))],
        );
        let mut even = one_shard_system(&caching, codec.clone(), EvenSplit);
        let mut other: ShardedRecMgSystem = match policy_idx {
            0 => one_shard_system(&caching, codec, EvenSplit),
            1 => one_shard_system(&caching, codec, WorkingSet::default()),
            2 => one_shard_system(&caching, codec, CardinalityWorkingSet::default()),
            _ => one_shard_system(&caching, codec, HotFirst),
        };
        let mut a = BatchAccessStats::default();
        let mut b = BatchAccessStats::default();
        for chunk in keys.chunks(25) {
            a.accumulate(even.process_batch(chunk));
            b.accumulate(other.process_batch(chunk));
        }
        prop_assert_eq!(a, b);
        prop_assert_eq!(even.guided_chunks(), other.guided_chunks());
        prop_assert_eq!(even.len(), other.len());
        // Rebalancing a 1-shard system is likewise a no-op for serving:
        // the single shard keeps the total capacity under every policy.
        let cap_before = other.capacity();
        other.rebalance();
        prop_assert_eq!(other.capacity(), cap_before);
    }

    /// CardinalityWorkingSet mirrors the WorkingSet invariants with the
    /// sketched footprint as mass: shares sum *exactly* to the topology
    /// capacity, every shard keeps the floor, tier indices stay in range,
    /// and on one shard it degenerates to the same whole-capacity
    /// placement as EvenSplit (the policy-parity oracle).
    #[test]
    fn cardinality_working_set_apportionment_invariants(
        footprints in prop::collection::vec(0u64..1_000_000, 1..17),
        floor in 1usize..8,
        fast in 8usize..64,
        slow in 8usize..192,
    ) {
        let n = footprints.len();
        let topology = TierTopology::two_tier(fast, slow);
        let total = topology.total_capacity();
        let policy = CardinalityWorkingSet::with_floor(floor);
        let stats: Vec<TierTraffic> = footprints
            .iter()
            .map(|&unique_keys| TierTraffic {
                hits: unique_keys, // give hotness order something too
                unique_keys,
                ..Default::default()
            })
            .collect();
        let placements = policy.place(n, &topology, &stats);
        prop_assert_eq!(placements.len(), n);
        let sum: usize = placements.iter().map(|p| p.capacity).sum();
        let total_mass: u64 = footprints.iter().sum();
        if total_mass > 0 && total >= n * floor {
            prop_assert_eq!(sum, total, "shares sum exactly to total capacity");
            for p in &placements {
                prop_assert!(p.capacity >= floor, "floor violated: {:?}", placements);
            }
        } else {
            for p in &placements {
                prop_assert_eq!(p.capacity, total.div_ceil(n).max(1));
            }
        }
        for p in &placements {
            prop_assert!(p.tier < topology.num_tiers());
        }
        // 1-shard parity: whatever the footprint, a single shard owns the
        // whole topology capacity — exactly EvenSplit's placement.
        let single = policy.place(1, &topology, &stats[..1]);
        prop_assert_eq!(single, EvenSplit.place(1, &topology, &[]));
    }

    /// The HLL error bound at m=256 registers, end to end through the
    /// demand path: feed an arbitrary key stream through a RecMG buffer
    /// and compare its sketched footprint against the true distinct count
    /// (exact below the sketch threshold, within the estimator's hard
    /// error cap above it — the distributional ≤3σ assertion lives in the
    /// sketch's own unit suite, where the case count is controlled).
    #[test]
    fn sketched_footprint_tracks_true_distinct_count(
        keys in prop::collection::vec(key_strategy(), 1..600),
    ) {
        use recmg_repro::core::RecMgBuffer;
        let mut buffer = RecMgBuffer::new(32, 4);
        let mut truth = std::collections::HashSet::new();
        for &k in &keys {
            buffer.access(k);
            truth.insert(k);
        }
        let n = truth.len() as f64;
        let est = buffer.working_set().unique_keys as f64;
        if truth.len() <= 64 {
            prop_assert_eq!(est, n, "exact below the sketch threshold");
        } else {
            let cap = 4.5 * (1.04 / (256f64).sqrt()) * n;
            prop_assert!(
                (est - n).abs() <= cap,
                "footprint {est} vs true {n} (cap ±{cap:.0})"
            );
        }
        // The traffic snapshot carries the same footprint placement sees.
        prop_assert_eq!(buffer.traffic().unique_keys, est as u64);
    }

    /// Sketch merge laws hold for the sketches the shards actually build:
    /// merging per-shard sketches of a partitioned stream in any order
    /// equals sketching the whole stream.
    #[test]
    fn partitioned_sketches_merge_to_the_whole(
        keys in prop::collection::vec(key_strategy(), 1..500),
        shards in 2usize..5,
    ) {
        let router = ShardRouter::new(shards);
        let mut parts: Vec<CardinalitySketch> =
            (0..shards).map(|_| CardinalitySketch::new(256, 64)).collect();
        let mut whole = CardinalitySketch::new(256, 64);
        for &k in &keys {
            parts[router.shard_of(k)].insert(k.as_u64());
            whole.insert(k.as_u64());
        }
        // Left fold and right fold agree with each other and the whole.
        let mut left = CardinalitySketch::new(256, 64);
        for p in &parts {
            left.merge(p);
        }
        let mut right = CardinalitySketch::new(256, 64);
        for p in parts.iter().rev() {
            right.merge(p);
        }
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &whole);
    }

    /// RecShard-style statistical placement invariants, for arbitrary
    /// table populations: capacities sum exactly to the topology total,
    /// every shard keeps the base floor, pinned tables respect the pin
    /// threshold and their host's capacity covers the hosted pinned
    /// footprint (a pinned table is never resized below residency), and
    /// the cold-start placement is exactly EvenSplit's.
    #[test]
    fn statistical_placement_invariants(
        specs in prop::collection::vec(
            (1u64..1_000_000, 1u64..1_000, 0.0f64..4.0, 0.0f64..1.0),
            1..24,
        ),
        shards in 1usize..9,
        floor in 1usize..8,
        fast in 16usize..96,
        slow in 16usize..256,
    ) {
        let total_accesses: u64 = specs.iter().map(|&(_, a, _, _)| a).sum();
        let profiles: Vec<TableProfile> = specs
            .iter()
            .enumerate()
            .map(|(i, &(size, accesses, skew, unique_frac))| TableProfile {
                table: i as u32,
                size,
                accesses,
                demand_share: accesses as f64 / total_accesses as f64,
                skew,
                unique_rows: ((size as f64 * unique_frac) as u64).clamp(1, size),
            })
            .collect();
        let policy = StatisticalPlacement { floor, ..Default::default() };
        let topology = TierTopology::two_tier(fast, slow);
        let total = topology.total_capacity();
        let tp = policy.place_with_tables(shards, &topology, &[], &profiles);
        prop_assert_eq!(tp.placements.len(), shards);
        for p in &tp.placements {
            prop_assert!(p.tier < topology.num_tiers());
        }
        let sum: usize = tp.placements.iter().map(|p| p.capacity).sum();
        if total >= shards * floor {
            prop_assert_eq!(sum, total, "shares sum exactly to total capacity");
        }
        // Decisions are unique, sorted, and well-formed.
        let mut seen = std::collections::HashSet::new();
        let mut hosted = vec![0u64; shards];
        for pair in tp.tables.windows(2) {
            prop_assert!(pair[0].table < pair[1].table, "decisions sorted by table");
        }
        for d in &tp.tables {
            prop_assert!(seen.insert(d.table), "one decision per table");
            let profile = &profiles[d.table as usize];
            match d.pinned_shard {
                Some(host) => {
                    prop_assert!(host < shards);
                    prop_assert!(
                        profile.unique_rows <= policy.pin_threshold,
                        "pinned table exceeds the pin threshold"
                    );
                    prop_assert_eq!(d.hot_rows, 0, "pinned tables are never split");
                    hosted[host] += profile.unique_rows.max(1);
                }
                None => {
                    // Split decision: a learned, in-range boundary.
                    prop_assert!(d.hot_rows >= 1 && d.hot_rows <= profile.size);
                }
            }
        }
        if total >= shards * floor {
            for (host, p) in tp.placements.iter().enumerate() {
                prop_assert!(p.capacity >= floor, "base floor violated");
                prop_assert!(
                    p.capacity as u64 >= hosted[host],
                    "host capacity {} below hosted pinned footprint {}",
                    p.capacity,
                    hosted[host]
                );
            }
        }
        // Cold start (no profiles) is exactly the even split.
        prop_assert_eq!(
            policy.place(shards, &topology, &[]),
            EvenSplit.place(shards, &topology, &[])
        );
    }

    /// The learned hot/cold boundary is monotone non-increasing in the
    /// fitted skew — more skew means a smaller hot prefix — and always in
    /// `[1, rows]`.
    #[test]
    fn hot_boundary_monotone_in_skew_for_any_table(
        rows in 1u64..100_000_000,
        q in 0.05f64..1.0,
        steps in 2usize..24,
    ) {
        let mut prev = u64::MAX;
        for i in 0..steps {
            let alpha = i as f64 * 4.0 / steps as f64;
            let b = hot_boundary(rows, alpha, q);
            prop_assert!(b >= 1 && b <= rows);
            prop_assert!(b <= prev, "boundary grew at α={}: {} > {}", alpha, b, prev);
            prev = b;
        }
    }

    /// WorkingSet shares always sum exactly to the topology capacity and
    /// never dip below the floor, for arbitrary mass vectors.
    #[test]
    fn working_set_apportionment_invariants(
        mass in prop::collection::vec(0u64..1_000_000, 1..17),
        floor in 1usize..8,
        fast in 8usize..64,
        slow in 8usize..192,
    ) {
        let n = mass.len();
        let topology = TierTopology::two_tier(fast, slow);
        let total = topology.total_capacity();
        let policy = WorkingSet::with_floor(floor);
        let stats: Vec<TierTraffic> = mass
            .iter()
            .map(|&hits| TierTraffic {
                hits,
                ..Default::default()
            })
            .collect();
        let placements = policy.place(n, &topology, &stats);
        prop_assert_eq!(placements.len(), n);
        let sum: usize = placements.iter().map(|p| p.capacity).sum();
        let total_mass: u64 = mass.iter().sum();
        if total_mass > 0 && total >= n * floor {
            prop_assert_eq!(sum, total, "shares sum exactly to total capacity");
            for p in &placements {
                prop_assert!(p.capacity >= floor, "floor violated: {:?}", placements);
            }
        } else {
            // Degenerate fallback: historical even split.
            for p in &placements {
                prop_assert_eq!(p.capacity, total.div_ceil(n).max(1));
            }
        }
        for p in &placements {
            prop_assert!(p.tier < topology.num_tiers());
        }
    }
}

#[test]
fn working_set_sizing_tracks_mass_and_floor() {
    let topology = TierTopology::uniform(120);
    let policy = WorkingSet::with_floor(6);
    let stats: Vec<TierTraffic> = [900u64, 90, 9, 1]
        .iter()
        .map(|&hits| TierTraffic {
            hits,
            ..Default::default()
        })
        .collect();
    let placements = policy.place(4, &topology, &stats);
    let caps: Vec<usize> = placements.iter().map(|p| p.capacity).collect();
    assert_eq!(caps.iter().sum::<usize>(), 120);
    // Shares are ordered like the mass, and the floor protects the
    // coldest shard.
    assert!(caps[0] > caps[1] && caps[1] > caps[2] && caps[2] >= caps[3]);
    // 90% of the apportionable 96 vectors (120 − 4×6 floor) plus its
    // floor lands the dominant shard at 92.
    assert!(caps[0] >= 90, "dominant shard takes the bulk: {caps:?}");
    assert_eq!(caps[3], 6, "coldest shard pinned at the floor: {caps:?}");
}

/// Distinct keys routed to one shard: row ids walk upward from `salt`
/// until `n` keys of the right home shard are found (deterministic).
fn shard_keys(router: &ShardRouter, shard: usize, n: usize, salt: u64) -> Vec<VectorKey> {
    (0..)
        .map(|i| VectorKey::new(TableId(3), RowId(salt + i as u64)))
        .filter(|&k| router.shard_of(k) == shard)
        .take(n)
        .collect()
}

/// Deterministic phase-change reaction: a skewed stream flips its hot
/// shard mid-session; the phase-triggered rebalancer must fire within two
/// sketch epochs of the flip (the score can only update at the first
/// epoch rotation that *completes after* the flip, and the flip may land
/// mid-epoch — so "within one epoch of the flip becoming observable"),
/// and the post-rebalance fast-tier assignment must follow the new hot
/// shard. No wall-clock anywhere: sequential serving, access-counted
/// epochs, fixed key streams.
#[test]
fn phase_change_rebalances_within_one_epoch() {
    const EPOCH: u64 = 64;
    const BATCH: usize = 64;
    let cfg = RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    // Fast tier sized to hold a footprint-grown hot share (shares are
    // sized before tiers are assigned — see the WorkingSet docs).
    let mut sys = SystemBuilder::new(&caching, None, codec)
        .shards(2)
        .topology(TierTopology::two_tier(112, 16))
        .placement(CardinalityWorkingSet::with_floor(8))
        .guidance(GuidanceMode::Inline)
        .sketch(SketchConfig {
            epoch_len: EPOCH,
            window_epochs: 4,
            ..SketchConfig::default()
        })
        .build();
    let router = sys.router();
    // Hot sets: 40 distinct keys each, homed on opposite shards; each
    // shard also keeps a small stationary background set so its tracker
    // always has window history to score new epochs against.
    let hot_a = shard_keys(&router, 0, 40, 0);
    let hot_b = shard_keys(&router, 1, 40, 10_000);
    let bg_a = shard_keys(&router, 0, 10, 20_000);
    let bg_b = shard_keys(&router, 1, 10, 30_000);
    // One batch: 44 hot keys (cycling the hot set) + 10 background keys
    // for each shard.
    let batch = |hot: &[VectorKey], round: usize| -> Vec<VectorKey> {
        let mut keys = Vec::with_capacity(BATCH);
        for i in 0..44 {
            keys.push(hot[(round * 44 + i) % hot.len()]);
        }
        keys.extend_from_slice(&bg_a);
        keys.extend_from_slice(&bg_b);
        keys
    };
    // Count trigger sized so it fires during phase A (establishing the
    // pre-flip snapshot) but cannot beat the phase trigger after the
    // flip; phase trigger: score ≥ 0.5, at most once per epoch.
    let mut rb = Rebalancer::new(8 * EPOCH).with_phase_trigger(0.5, EPOCH);
    // Phase A: shard 0 hot, long enough for one count fire (8 epochs of
    // accesses = 8 batches) plus stationary follow-up.
    for round in 0..9 {
        sys.process_batch(&batch(&hot_a, round));
        rb.maybe_rebalance(&mut sys);
    }
    assert!(rb.fires() >= 1, "count trigger establishes the baseline");
    assert_eq!(rb.phase_fires(), 0, "stationary phase must not phase-fire");
    assert_eq!(
        sys.shard_tier(0),
        0,
        "phase A: hot shard 0 owns the fast tier"
    );
    let fires_before = rb.fires();
    // Flip: shard 1 becomes hot. The phase trigger must fire within two
    // epochs' worth of accesses (128 = 2 batches).
    let mut fired_after_batches = None;
    for round in 0..6 {
        sys.process_batch(&batch(&hot_b, round));
        if rb.maybe_rebalance(&mut sys) && fired_after_batches.is_none() {
            fired_after_batches = Some(round + 1);
            break;
        }
    }
    let fired_after = fired_after_batches.expect("phase trigger never fired after the flip");
    assert!(
        fired_after as u64 * (BATCH as u64) <= 2 * EPOCH,
        "fired only after {fired_after} batches (> 2 epochs of accesses)"
    );
    assert!(
        rb.phase_fires() >= 1,
        "the fire came from the phase trigger"
    );
    assert_eq!(rb.fires(), fires_before + 1);
    // Post-rebalance placement follows the new hot shard immediately:
    // shard 1 owns the fast tier within one epoch of the flip.
    assert_eq!(
        sys.shard_tier(1),
        0,
        "new hot shard routed to the fast tier"
    );
    assert_eq!(
        sys.shard_tier(0),
        1,
        "old hot shard demoted to the slow tier"
    );
    assert_eq!(sys.capacity(), 128, "shares still sum to the topology");
    // Keep serving the flipped workload: once the old hot set ages out of
    // shard 0's sketch window, the periodic fires hand the capacity share
    // to the new hot shard too (tier routing reacted within an epoch; the
    // sizing signal follows at window speed, by design).
    for round in 6..38 {
        sys.process_batch(&batch(&hot_b, round));
        rb.maybe_rebalance(&mut sys);
    }
    assert_eq!(sys.shard_tier(1), 0, "fast-tier routing is stable");
    assert!(
        sys.shard_buffer(1).capacity() > sys.shard_buffer(0).capacity(),
        "capacity follows the flip: {} vs {}",
        sys.shard_buffer(0).capacity(),
        sys.shard_buffer(1).capacity()
    );
    assert_eq!(sys.capacity(), 128, "shares still sum to the topology");
}

/// End-to-end statistical placement: serve a two-table workload (one tiny
/// hammered table, one large skewed one) on a 4-shard statistical system,
/// rebalance, and check the routing consequences — the tiny table is
/// pinned whole (direct-lookup routing), the large table carries a split
/// mark, serving stays total-conserving, and the table report surfaces
/// the decisions.
#[test]
fn statistical_rebalance_pins_and_splits_through_the_system() {
    use recmg_repro::core::TableArraySpec;
    let cfg = RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    let mut sys = SystemBuilder::new(&caching, None, codec)
        .shards(4)
        .topology(TierTopology::two_tier(128, 128))
        .placement(StatisticalPlacement::default())
        .guidance(GuidanceMode::Inline)
        .build();
    let spec = TableArraySpec {
        sizes: vec![4, 100_000],
        skews: vec![0.0, 2.0],
    };
    let batches = spec.requests(60, 64);
    let mut first = BatchAccessStats::default();
    for b in &batches {
        first.accumulate(sys.process_batch(b));
    }
    assert_eq!(first.total(), (60 * 64) as u64);
    assert!(sys.rebalance(), "pin install counts as a change");
    let router = sys.router();
    let host = router
        .pinned_shard(0)
        .expect("the 4-row table must be pinned");
    for r in 0..4u64 {
        assert_eq!(
            router.shard_of(VectorKey::new(TableId(0), RowId(r))),
            host,
            "pinned table routes whole to its host"
        );
    }
    let hot = router.hot_rows(1);
    assert!(
        hot > 0 && hot < 100_000,
        "large skewed table carries an interior split mark, got {hot}"
    );
    // The report joins profiles with the installed decisions.
    let tables = sys.table_report();
    assert_eq!(tables.len(), 2);
    assert_eq!(tables[0].pinned_shard, Some(host));
    assert_eq!(tables[0].profile.unique_rows, 4);
    assert_eq!(tables[1].pinned_shard, None);
    assert_eq!(tables[1].hot_rows, hot);
    assert!(tables[1].profile.skew > 0.0, "skew fit sees the power law");
    // Serving under the new routing still covers every key exactly once.
    let mut second = BatchAccessStats::default();
    for b in &batches {
        second.accumulate(sys.process_batch(b));
    }
    assert_eq!(second.total(), first.total());
    assert_eq!(sys.capacity(), 256, "capacities still sum to the topology");
}

/// The two equal-share policies the end-to-end test compares.
enum EitherPolicy {
    Even,
    Hot,
}

/// End-to-end: a trained 4-shard system over a DRAM + slow tier, served on
/// a skewed stream, rebalanced between drains. Totals are conserved, the
/// per-tier report covers every access, and hot-first routing never costs
/// more than the id-order split on the same stream.
#[test]
fn tiered_serving_covers_stream_and_hot_first_is_no_worse() {
    let cfg = RecMgConfig::tiny();
    let trace = SyntheticConfig::tiny(203).generate();
    let capacity = TraceStats::compute(&trace).buffer_capacity(20.0);
    let trained = train_recmg(
        &trace.accesses()[..trace.len() / 2],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );
    let fast = (capacity / 4).max(1);
    let slow_cost = TierCost::cxl_like();
    let topology = || {
        TierTopology::new(vec![
            MemoryTier::dram(fast),
            MemoryTier::new("slow", capacity.saturating_sub(fast).max(1), slow_cost),
        ])
    };
    let batches = trace.batches(10);
    let build = |placement: EitherPolicy| {
        let b = SystemBuilder::from_trained(&trained)
            .shards(4)
            .topology(topology());
        match placement {
            EitherPolicy::Even => b.placement(EvenSplit).build(),
            EitherPolicy::Hot => b.placement(HotFirst).build(),
        }
    };
    let run = |mut sys: ShardedRecMgSystem| {
        // Warm pass (deterministic, inline) to observe per-shard mass.
        let mut warm = BatchAccessStats::default();
        for batch in &batches {
            warm.accumulate(sys.process_batch(batch));
        }
        assert_eq!(warm.total(), trace.len() as u64);
        let mut rebalancer = Rebalancer::new(1);
        rebalancer.maybe_rebalance(&mut sys);
        // Measured pass: cumulative tier usage delta = this pass.
        let before = sys.tier_usage();
        let mut measured = BatchAccessStats::default();
        for batch in &batches {
            measured.accumulate(sys.process_batch(batch));
        }
        let after = sys.tier_usage();
        let delta: Vec<TierUsage> = after
            .iter()
            .zip(&before)
            .map(|(now, b)| now.delta_since(b))
            .collect();
        let covered: u64 = delta.iter().map(|u| u.traffic.demand()).sum();
        assert_eq!(covered, trace.len() as u64, "tier stats cover every access");
        (measured, TierUsage::total_cost_ns(&delta))
    };
    let (even_stats, even_cost) = run(build(EitherPolicy::Even));
    let (hot_stats, hot_cost) = run(build(EitherPolicy::Hot));
    // HotFirst keeps even capacities: identical serving results…
    assert_eq!(even_stats, hot_stats);
    // …and hottest-into-fastest assignment can only lower the
    // hit-weighted cost versus id-order assignment of equal-size shards.
    assert!(
        hot_cost <= even_cost,
        "hot-first {hot_cost} vs even {even_cost}"
    );
}
