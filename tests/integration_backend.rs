//! Software-defined memory backends: storage is swappable, serving is not.
//!
//! The load-bearing property is **backend parity on one shard**: the
//! [`TierBackend`] behind a buffer decides where row bytes live (heap,
//! `mmap`'d file, plain file) and how much an access costs — never which
//! keys hit, miss, or get prefetched, and never what bytes come back.
//! With identical injected [`TierCost::synthetic`] costs, the same
//! access stream through all three backends must produce identical
//! hit/miss/prefetch counts and bit-identical resident rows.
//!
//! The async-fill conservation suite then pins the fill plane's
//! accounting: every access is exactly one hit or one miss, every miss
//! is accounted to the queue (queued + coalesced + dropped), and every
//! promotion that landed is a demand fill some tier recorded.

use proptest::prelude::*;

use recmg_repro::core::{
    live_backend_files, AdmissionPolicy, BackendSpec, BatchSource, CachingModel, EvenSplit,
    FillMode, FrequencyRankCodec, GuidanceMode, MemoryTier, SessionBuilder, ShardedRecMgSystem,
    SystemBuilder, TierCost, TierTopology,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{RowId, SyntheticConfig, TableId, VectorKey};

fn key_strategy() -> impl Strategy<Value = VectorKey> {
    (0u32..8, 0u64..256).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r)))
}

/// Serializes the tests that create file-backed storage: the leak test
/// compares [`live_backend_files`] (a process-global counter) against a
/// baseline, so no other test may hold backing files concurrently.
static FILE_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn file_test_guard() -> std::sync::MutexGuard<'static, ()> {
    FILE_TESTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// A 1-shard system whose single tier stores rows on `backend`, with a
/// fixed injected cost (no calibration — decisions and accounting must be
/// deterministic across backends).
fn one_shard_on(
    caching: &CachingModel,
    codec: FrequencyRankCodec,
    backend: BackendSpec,
) -> ShardedRecMgSystem {
    let tier =
        MemoryTier::new("probe", 24, TierCost::synthetic(100, 900, 400)).with_backend(backend);
    SystemBuilder::new(caching, None, codec)
        .shards(1)
        .topology(TierTopology::new(vec![tier]))
        .placement(EvenSplit)
        .guidance(GuidanceMode::Inline)
        .build()
}

const ALL_BACKENDS: [BackendSpec; 3] = [
    BackendSpec::Dram,
    BackendSpec::MappedFile,
    BackendSpec::File,
];

/// The parity oracle: same stream, three backends, identical outcomes —
/// counts, cost accounting, and the actual row bytes.
#[test]
fn backends_are_bit_identical_under_the_same_stream() {
    let _files = file_test_guard();
    let cfg = recmg_repro::core::RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    let trace = SyntheticConfig::tiny(77).generate();

    let mut outcomes = Vec::new();
    for backend in ALL_BACKENDS {
        let mut sys = one_shard_on(&caching, codec.clone(), backend);
        assert_eq!(sys.shard_recmg_buffer(0).backend_spec(), backend);
        let mut stats = BatchAccessStats::default();
        for batch in trace.batches(16) {
            stats.accumulate(sys.process_batch(batch));
        }
        let usage = sys.tier_usage();
        let resident: Vec<(VectorKey, [u8; recmg_repro::core::ROW_BYTES])> = {
            let buffer = sys.shard_recmg_buffer(0);
            let mut keys: Vec<VectorKey> = buffer.buffer().keys().collect();
            keys.sort();
            keys.iter()
                .map(|&k| (k, buffer.read_row(k).expect("resident key has a row")))
                .collect()
        };
        outcomes.push((backend, stats, usage, resident));
    }

    let (_, ref_stats, ref_usage, ref_resident) = &outcomes[0];
    for (backend, stats, usage, resident) in &outcomes[1..] {
        let name = backend.name();
        assert_eq!(stats.hits(), ref_stats.hits(), "{name}: hits diverge");
        assert_eq!(stats.misses, ref_stats.misses, "{name}: misses diverge");
        assert_eq!(
            stats.prefetch_hits, ref_stats.prefetch_hits,
            "{name}: prefetch hits diverge"
        );
        assert_eq!(
            usage[0].traffic.cost_ns, ref_usage[0].traffic.cost_ns,
            "{name}: identical injected costs must give identical accounting"
        );
        assert_eq!(
            resident, ref_resident,
            "{name}: resident rows must be bit-identical"
        );
    }
}

/// Every row read back from any backend is the deterministic synthesis of
/// its key — the contract that makes rebuild-don't-copy migration sound.
#[test]
fn rows_match_their_synthesized_bytes_on_every_backend() {
    let _files = file_test_guard();
    let cfg = recmg_repro::core::RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    for backend in ALL_BACKENDS {
        let mut sys = one_shard_on(&caching, codec.clone(), backend);
        let keys: Vec<VectorKey> = (0..20)
            .map(|r| VectorKey::new(TableId(3), RowId(r)))
            .collect();
        sys.process_batch(&keys);
        let buffer = sys.shard_recmg_buffer(0);
        for key in buffer.buffer().keys() {
            let row = buffer.read_row(key).expect("resident");
            let mut expect = [0u8; recmg_repro::core::ROW_BYTES];
            recmg_repro::core::synth_row(key, &mut expect);
            assert_eq!(row, expect, "{}: stored row differs", backend.name());
        }
    }
}

/// File-backed systems clean up after themselves: dropping the system
/// returns the live backing-file count to its baseline.
#[test]
fn dropping_file_backed_systems_leaks_no_files() {
    let _files = file_test_guard();
    let cfg = recmg_repro::core::RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    let baseline = live_backend_files();
    {
        let mut sys = one_shard_on(&caching, codec.clone(), BackendSpec::MappedFile);
        let mut sys2 = one_shard_on(&caching, codec, BackendSpec::File);
        assert!(live_backend_files() >= baseline + 2);
        let keys: Vec<VectorKey> = (0..12)
            .map(|r| VectorKey::new(TableId(1), RowId(r)))
            .collect();
        sys.process_batch(&keys);
        sys2.process_batch(&keys);
    }
    assert_eq!(
        live_backend_files(),
        baseline,
        "backing files must die with their systems"
    );
}

/// Drives a full async-fill serving session and returns the report.
fn async_session_report(
    keys: &[VectorKey],
    queue_depth: usize,
) -> recmg_repro::core::SessionReport {
    let cfg = recmg_repro::core::RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    let system = SystemBuilder::new(&caching, None, codec)
        .shards(2)
        .topology(TierTopology::two_tier(8, 16))
        .fill_mode(FillMode::Async {
            threads: 2,
            queue_depth,
        })
        .guidance(GuidanceMode::Inline)
        .build();
    let session = SessionBuilder::new()
        .workers(2)
        .admission(AdmissionPolicy::unbounded())
        .build(system);
    let batches: Vec<&[VectorKey]> = keys.chunks(16).collect();
    session.ingest(&mut BatchSource::new(&batches));
    let (_system, report) = session.drain();
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Async-fill conservation: every access is exactly one hit or miss,
    /// every miss is accounted to the fill queue, and every landed
    /// promotion is a demand fill some tier recorded. Holds at any queue
    /// depth — a tiny queue just shifts weight from `queued` to `dropped`.
    #[test]
    fn async_fill_conserves_every_access(
        keys in prop::collection::vec(key_strategy(), 1..300),
        queue_depth in 1usize..64,
    ) {
        let report = async_session_report(&keys, queue_depth);
        let stats = &report.engine.stats;
        prop_assert_eq!(stats.total(), keys.len() as u64);
        prop_assert_eq!(stats.hits() + stats.misses, keys.len() as u64);

        let fills = &report.engine.fills;
        prop_assert_eq!(
            fills.queued + fills.coalesced + fills.dropped,
            stats.misses,
            "every miss routes through the fill queue exactly once"
        );
        let demand_fills: u64 = report.engine.tiers.iter().map(|t| t.traffic.demand_fills).sum();
        prop_assert_eq!(fills.promoted, demand_fills, "a promotion IS a demand fill");
        prop_assert!(fills.promoted <= fills.queued, "only queued fills can land");
        prop_assert!(demand_fills <= stats.misses);
    }
}
