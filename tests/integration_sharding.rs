//! Sharding correctness: the sharded system against its sequential oracle.
//!
//! The load-bearing guarantee is **1-shard parity**: `ShardedRecMgSystem`
//! with one shard must reproduce `RecMgSystem`'s hit/miss/prefetch counts
//! *exactly* on any access stream, because the single shard runs the same
//! control flow over the same (whole) stream. The property tests then pin
//! the two facts the multi-shard case rests on: routing is a partition, and
//! per-shard statistics merge losslessly.

use proptest::prelude::*;

use recmg_repro::core::{
    train_recmg, GuidanceMode, RecMgConfig, RecMgSystem, ServeOptions, ShardRouter,
    ShardedRecMgSystem, TrainOptions,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{RowId, SyntheticConfig, TableId, TraceStats, VectorKey};

fn trained_setup() -> (
    recmg_repro::trace::Trace,
    recmg_repro::core::TrainedRecMg,
    usize,
) {
    let cfg = RecMgConfig::tiny();
    let trace = SyntheticConfig::tiny(97).generate();
    let capacity = TraceStats::compute(&trace).buffer_capacity(20.0);
    let trained = train_recmg(
        &trace.accesses()[..trace.len() / 2],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );
    (trace, trained, capacity)
}

#[test]
fn one_shard_matches_recmg_system_exactly() {
    let (trace, trained, capacity) = trained_setup();
    let mut reference = RecMgSystem::from_trained(&trained, capacity);
    let mut sharded = recmg_repro::core::SystemBuilder::from_trained(&trained)
        .capacity(capacity)
        .build();
    assert_eq!(sharded.name(), reference.name());
    let mut a = BatchAccessStats::default();
    let mut b = BatchAccessStats::default();
    for batch in trace.batches(10) {
        a.accumulate(reference.process_batch(batch));
    }
    for batch in trace.batches(10) {
        b.accumulate(sharded.process_batch(batch));
    }
    // Exact parity, not approximate: same cache hits, same prefetch hits,
    // same misses, same prefetch volume.
    assert_eq!(a, b);
    assert_eq!(reference.prefetches_issued(), sharded.prefetches_issued());
}

#[test]
fn one_shard_cm_only_matches_reference() {
    let (trace, trained, capacity) = trained_setup();
    let mut reference = RecMgSystem::new(&trained.caching, None, trained.codec.clone(), capacity);
    let mut sharded = ShardedRecMgSystem::builder(&trained.caching, None, trained.codec.clone())
        .capacity(capacity)
        .build();
    let mut a = BatchAccessStats::default();
    let mut b = BatchAccessStats::default();
    for batch in trace.batches(10) {
        a.accumulate(reference.process_batch(batch));
    }
    for batch in trace.batches(10) {
        b.accumulate(sharded.process_batch(batch));
    }
    assert_eq!(a, b);
    assert_eq!(b.prefetch_hits, 0);
}

#[test]
fn multi_shard_covers_trace_and_stays_competitive() {
    let (trace, trained, capacity) = trained_setup();
    let mut single = recmg_repro::core::SystemBuilder::from_trained(&trained)
        .capacity(capacity)
        .build();
    let mut sharded = recmg_repro::core::SystemBuilder::from_trained(&trained)
        .shards(4)
        .capacity(capacity)
        .build();
    let mut s1 = BatchAccessStats::default();
    let mut s4 = BatchAccessStats::default();
    for batch in trace.batches(10) {
        s1.accumulate(single.process_batch(batch));
    }
    for batch in trace.batches(10) {
        s4.accumulate(sharded.process_batch(batch));
    }
    assert_eq!(s4.total(), trace.len() as u64);
    assert_eq!(s1.total(), s4.total());
    // Hash-partitioning a skewed key space costs some hit rate versus one
    // global buffer (per-shard capacities cannot rebalance); it must stay
    // in the same regime, not collapse.
    assert!(
        s4.hit_rate() > s1.hit_rate() - 0.15,
        "sharded {:.3} vs single {:.3}",
        s4.hit_rate(),
        s1.hit_rate()
    );
}

#[test]
fn concurrent_engine_matches_totals_and_reports_guidance() {
    let (trace, trained, capacity) = trained_setup();
    let batches = trace.batches(10);
    let mut sys = recmg_repro::core::SystemBuilder::from_trained(&trained)
        .shards(4)
        .capacity(capacity)
        .build();
    let report = sys.serve(
        &batches,
        &ServeOptions {
            workers: 4,
            guidance: GuidanceMode::Background {
                threads: 2,
                max_lag: 4,
                max_batch: 8,
            },
        },
    );
    assert_eq!(report.stats.total(), trace.len() as u64);
    assert_eq!(report.batches, batches.len());
    assert!(report.total_chunks > 0);
    assert!(report.guided_fraction() >= 0.0 && report.guided_fraction() <= 1.0);
    // Every chunk is guided, skipped, or (rarely) still in flight at the
    // end of the run — never double-counted.
    assert!(report.guided_chunks + sys.unguided_chunks() <= report.total_chunks);
}

fn key_strategy() -> impl Strategy<Value = VectorKey> {
    (0u32..16, 0u64..512).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routing_is_a_partition(
        keys in prop::collection::vec(key_strategy(), 1..400),
        num_shards in 1usize..9,
    ) {
        let router = ShardRouter::new(num_shards);
        let parts = router.split(&keys);
        prop_assert_eq!(parts.len(), num_shards);
        // Every key lands in exactly one shard, its own.
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, keys.len());
        for (sid, part) in parts.iter().enumerate() {
            for &k in part {
                prop_assert_eq!(router.shard_of(k), sid);
            }
        }
        // Per-shard order preserves stream order (stable partition).
        for (sid, part) in parts.iter().enumerate() {
            let filtered: Vec<VectorKey> = keys
                .iter()
                .copied()
                .filter(|&k| router.shard_of(k) == sid)
                .collect();
            prop_assert_eq!(part.clone(), filtered);
        }
    }

    #[test]
    fn stats_merge_is_lossless(
        counts in prop::collection::vec((0u64..1000, 0u64..1000, 0u64..1000), 1..9),
    ) {
        let parts: Vec<BatchAccessStats> = counts
            .iter()
            .map(|&(cache_hits, prefetch_hits, misses)| BatchAccessStats {
                cache_hits,
                prefetch_hits,
                misses,
            })
            .collect();
        let merged = BatchAccessStats::merged(&parts);
        let want_hits: u64 = counts.iter().map(|c| c.0 + c.1).sum();
        let want_total: u64 = counts.iter().map(|c| c.0 + c.1 + c.2).sum();
        prop_assert_eq!(merged.hits(), want_hits);
        prop_assert_eq!(merged.total(), want_total);
    }
}
