//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;

use recmg_repro::cache::{
    belady, optgen, simulate, CachePolicy, FullyAssocLru, GpuBuffer, SetAssocLru, Srrip,
};
use recmg_repro::core::{FrequencyRankCodec, GlobalIdCodec, IndexCodec};
use recmg_repro::dlrm::TimingConfig;
use recmg_repro::tensor::{chamfer_backward, chamfer_forward};
use recmg_repro::trace::{reuse_distances, ReuseDistance, RowId, TableId, VectorKey};

fn key_strategy() -> impl Strategy<Value = VectorKey> {
    (0u32..8, 0u64..64).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r)))
}

fn trace_strategy(max_len: usize) -> impl Strategy<Value = Vec<VectorKey>> {
    prop::collection::vec(key_strategy(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optgen_hits_match_belady_on_random_traces(
        acc in trace_strategy(300),
        capacity in 1usize..64,
    ) {
        let a = optgen(&acc, capacity).stats.hits;
        let b = belady::belady_hit_stats(&acc, capacity).hits;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn belady_dominates_lru_everywhere(
        acc in trace_strategy(300),
        capacity in 1usize..64,
    ) {
        let opt = belady::belady_hit_stats(&acc, capacity).hit_rate();
        let mut lru = FullyAssocLru::new(capacity);
        let lru_rate = simulate(&mut lru, &acc).hit_rate();
        prop_assert!(opt >= lru_rate - 1e-12);
    }

    #[test]
    fn policies_respect_capacity(
        acc in trace_strategy(400),
        capacity in 1usize..96,
    ) {
        let mut lru = SetAssocLru::new(capacity, 32);
        simulate(&mut lru, &acc);
        prop_assert!(lru.len() <= lru.capacity());
        let mut srrip = Srrip::new(capacity, 32);
        simulate(&mut srrip, &acc);
        prop_assert!(srrip.len() <= srrip.capacity());
    }

    #[test]
    fn reuse_distance_counts_are_consistent(acc in trace_strategy(200)) {
        let d = reuse_distances(&acc);
        prop_assert_eq!(d.len(), acc.len());
        // Cold count equals unique count.
        let unique: std::collections::HashSet<_> = acc.iter().collect();
        let cold = d.iter().filter(|x| matches!(x, ReuseDistance::Cold)).count();
        prop_assert_eq!(cold, unique.len());
        // Every finite distance is below the unique count.
        for x in &d {
            if let ReuseDistance::Finite(v) = x {
                prop_assert!((*v as usize) < unique.len());
            }
        }
    }

    #[test]
    fn gpu_buffer_never_overfills_and_populate_shrinks(
        acc in trace_strategy(200),
        capacity in 1usize..32,
        priority in 0u64..16,
    ) {
        let mut buf = GpuBuffer::new(capacity);
        for &k in &acc {
            if !buf.contains(k) {
                if buf.is_full() {
                    let before = buf.len();
                    prop_assert!(buf.populate().is_some());
                    prop_assert_eq!(buf.len(), before - 1);
                }
                buf.insert(k, priority, false);
            }
            prop_assert!(buf.len() <= capacity);
        }
    }

    #[test]
    fn codecs_roundtrip_their_vocabulary(acc in trace_strategy(200)) {
        let freq = FrequencyRankCodec::from_accesses(&acc);
        let gid = GlobalIdCodec::from_accesses(&acc);
        for &k in &acc {
            let c1 = freq.encode(k).expect("in vocab");
            prop_assert_eq!(freq.decode(c1), Some(k));
            let c2 = gid.encode(k).expect("in vocab");
            prop_assert_eq!(gid.decode(c2), Some(k));
            prop_assert!((0.0..=1.0).contains(&c1));
            prop_assert!((0.0..=1.0).contains(&c2));
        }
    }

    #[test]
    fn chamfer_is_nonnegative_symmetric_zero_and_grad_matches_fd(
        pred in prop::collection::vec(-5.0f32..5.0, 1..6),
        target in prop::collection::vec(-5.0f32..5.0, 1..8),
    ) {
        let loss = chamfer_forward(&pred, &target, 0.7);
        prop_assert!(loss >= 0.0);
        // Identical sets => zero loss.
        let self_loss = chamfer_forward(&pred, &pred, 0.7);
        prop_assert!(self_loss.abs() < 1e-6);
        // Gradient roughly matches central differences (away from the
        // non-differentiable ties, tolerate outliers via a loose bound).
        let grad = chamfer_backward(&pred, &target, 0.7, 1.0);
        let eps = 1e-3f32;
        let mut bad = 0;
        for i in 0..pred.len() {
            let mut p = pred.clone();
            p[i] += eps;
            let up = chamfer_forward(&p, &target, 0.7);
            p[i] -= 2.0 * eps;
            let dn = chamfer_forward(&p, &target, 0.7);
            let fd = (up - dn) / (2.0 * eps);
            if (grad[i] - fd).abs() > 0.15 {
                bad += 1;
            }
        }
        prop_assert!(bad <= pred.len() / 2, "{bad} of {} coords off", pred.len());
    }

    #[test]
    fn timing_model_is_monotone_in_misses(
        hits in 0u64..10_000,
        misses in 0u64..10_000,
    ) {
        let cfg = TimingConfig::default_scaled();
        let base = cfg.batch_breakdown(hits, misses).total_ms();
        let worse = cfg.batch_breakdown(hits, misses + 100).total_ms();
        prop_assert!(worse > base);
        prop_assert!(base > 0.0);
    }
}
