//! Live-migration correctness: zero-quiescence rebalancing is invisible
//! to serving results, and demand counts are conserved exactly while
//! routes flip under concurrent load.
//!
//! Three oracles pin the subsystem:
//!
//! * **1-shard parity**: a session that live-migrates its only shard
//!   between tiers after every batch (full double-buffered warm-up, route
//!   publish, storage swap) produces byte-identical hit/miss/prefetch
//!   counts to the sequential system — migration moves vectors, never
//!   results. The capacity is sized to the trace's unique-key footprint
//!   so residency membership (which the staged copy preserves exactly) is
//!   the only thing that matters, independent of eviction tie-breaking.
//! * **Conservation under concurrency**: workers hammer all shards while
//!   the main thread flips tiers and toggles replicas mid-flight; every
//!   submitted key is served exactly once (no lost or duplicated hits),
//!   pinned both as a stress test and as a property over random key
//!   streams.
//! * **Replica freshness**: a fast-tier replica re-prices hits of a
//!   slow-tier shard (cost refund, counts untouched), and its entries
//!   decay once the route-epoch clock outruns the TTL — decayed entries
//!   count as invalidations and must be re-filled before serving again.
//! * **Storage hygiene**: a migration stress over file-backed tiers swaps
//!   shard storage (`replace_storage`) on every route flip; once the
//!   session drains and the system drops, every `mmap`/file backing
//!   object must be gone — no leaked fds or temp files.

use std::time::Duration;

use proptest::prelude::*;

use recmg_repro::core::{
    live_backend_files, train_recmg, AdmissionPolicy, BackendSpec, CachingModel,
    FrequencyRankCodec, GuidanceMode, LiveRebalanceConfig, MemoryTier, RecMgConfig, Request,
    SessionBuilder, ShardPlacement, ShardedRecMgSystem, SystemBuilder, TierCost, TierTopology,
    TrainOptions,
};
use recmg_repro::dlrm::{BatchAccessStats, BufferManager};
use recmg_repro::trace::{RowId, SyntheticConfig, TableId, TraceStats, VectorKey};

/// A live config with every automatic trigger disabled: migrations and
/// replicas move only when a test says so, and warm-up copies the whole
/// resident set before committing.
fn manual_live() -> LiveRebalanceConfig {
    LiveRebalanceConfig {
        min_new_accesses: 0,
        phase_threshold: None,
        fill_batch: 4096,
        fill_pause: Duration::ZERO,
        warm_fraction: 1.0,
        ..LiveRebalanceConfig::default()
    }
}

fn untrained_system(shards: usize, fast: usize, slow: usize) -> ShardedRecMgSystem {
    let cfg = RecMgConfig::tiny();
    let caching = CachingModel::new(&cfg);
    let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
    SystemBuilder::new(&caching, None, codec)
        .shards(shards)
        .topology(TierTopology::two_tier(fast, slow))
        .guidance(GuidanceMode::Inline)
        .build()
}

fn request(id: u64, keys: Vec<VectorKey>) -> Request {
    Request {
        id,
        keys,
        arrival: Duration::ZERO,
        deadline: None,
        tenant: 0,
    }
}

/// Live tier migration after every batch is invisible to results: the
/// session matches the sequential system's counts exactly, while the
/// migration report proves the shard really moved.
#[test]
fn one_shard_live_migration_matches_sequential_results_exactly() {
    let cfg = RecMgConfig::tiny();
    let trace = SyntheticConfig::tiny(211).generate();
    // Capacity covers the whole key space: residency membership (which
    // the staged copy preserves exactly) fully determines hit/miss.
    let capacity = TraceStats::compute(&trace).buffer_capacity(100.0);
    let trained = train_recmg(
        &trace.accesses()[..trace.len() / 2],
        &cfg,
        capacity,
        &TrainOptions::tiny(),
    );
    let topology = TierTopology::two_tier(capacity, capacity);

    let mut reference = SystemBuilder::from_trained(&trained)
        .topology(topology.clone())
        .build();
    let mut ref_stats = BatchAccessStats::default();
    for batch in trace.batches(10) {
        ref_stats.accumulate(reference.process_batch(batch));
    }

    let subject = SystemBuilder::from_trained(&trained)
        .topology(topology)
        .build();
    let shard_capacity = subject.capacity();
    let session = SessionBuilder::new()
        .workers(1)
        .guidance(GuidanceMode::Inline)
        .admission(AdmissionPolicy::unbounded())
        .live(manual_live())
        .build(subject);

    let mut flips = 0u64;
    for (i, batch) in trace.batches(10).iter().enumerate() {
        session
            .submit(request(i as u64, batch.to_vec()))
            .expect("unbounded admission");
        while session.completed_requests() < (i + 1) as u64 {
            std::thread::yield_now();
        }
        // Quiesced between batches: bounce the shard to the other tier.
        let committed = session.migrate_shard(
            0,
            ShardPlacement {
                capacity: shard_capacity,
                tier: (flips as usize + 1) % 2,
            },
        );
        assert!(committed, "manual migration commits");
        flips += 1;
    }
    let (system, report) = session.drain();

    assert_eq!(report.engine.stats, ref_stats, "migration changed results");
    assert_eq!(system.prefetches_issued(), reference.prefetches_issued());
    assert_eq!(report.engine.migration.migrations, flips);
    assert!(report.engine.migration.route_epoch >= 2 * flips);
    assert!(report.engine.migration.background_fills > 0);
    assert!(report.engine.migration.migration_cost_ns > 0);
    // Odd number of batches left the shard wherever the last flip put it.
    assert_eq!(system.shard_tier(0), (flips as usize) % 2);
}

/// Workers hammer every shard while the main thread flips tiers and
/// toggles replicas mid-flight: every submitted key is served exactly
/// once — totals conserve with zero lost or duplicated hits.
#[test]
fn concurrent_migrations_and_replicas_conserve_every_access() {
    const REQUESTS: u64 = 200;
    const KEYS_PER_REQUEST: usize = 32;

    let system = untrained_system(4, 64, 192);
    let shard_caps: Vec<usize> = (0..4).map(|i| system.shard_buffer(i).capacity()).collect();
    let session = SessionBuilder::new()
        .workers(4)
        .guidance(GuidanceMode::Inline)
        .admission(AdmissionPolicy::unbounded())
        .live(manual_live())
        .build(system);

    for id in 0..REQUESTS {
        let keys = (0..KEYS_PER_REQUEST)
            .map(|i| {
                VectorKey::new(
                    TableId((id as u32 + i as u32) % 8),
                    RowId((id * 37 + i as u64 * 11) % 96),
                )
            })
            .collect();
        session
            .submit(request(id, keys))
            .expect("unbounded admission");
    }

    // Flip routes while the workers chew through the queue.
    let mut flips = 0u64;
    let mut replica_on = false;
    while session.completed_requests() < REQUESTS {
        let sid = (flips % 4) as usize;
        session.migrate_shard(
            sid,
            ShardPlacement {
                capacity: shard_caps[sid],
                tier: (flips / 4).is_multiple_of(2) as usize,
            },
        );
        session.replicate_shard(2, if replica_on { 0 } else { 16 });
        replica_on = !replica_on;
        flips += 1;
    }
    let (system, report) = session.drain();

    let total = REQUESTS * KEYS_PER_REQUEST as u64;
    assert_eq!(report.completed, REQUESTS);
    assert_eq!(
        report.engine.stats.total(),
        total,
        "lost or duplicated accesses under route flips"
    );
    assert_eq!(
        system.demand_accesses(),
        total,
        "shard demand counters drifted from served totals"
    );
    assert_eq!(report.engine.migration.migrations, flips);
    assert!(report.engine.migration.route_epoch > 0);
}

/// Migration stress over file-backed tiers: every route flip swaps the
/// shard's storage onto the destination tier's backend via
/// `replace_storage`. Conservation still holds, the surviving storage is
/// readable, and — once the session drains and the system drops — every
/// backing file is gone.
#[test]
fn file_backed_migration_stress_leaks_no_backing_files() {
    const REQUESTS: u64 = 120;
    const KEYS_PER_REQUEST: usize = 24;

    let baseline = live_backend_files();
    {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
        // DRAM + mapped-file + file rungs with injected costs (no
        // calibration: this test is about storage lifetime, not timing).
        let topology = TierTopology::new(vec![
            MemoryTier::dram(48),
            MemoryTier::new("mapped_file", 96, TierCost::cxl_like())
                .with_backend(BackendSpec::MappedFile),
            MemoryTier::new("file", 144, TierCost::synthetic(2_000, 12_000, 5_000))
                .with_backend(BackendSpec::File),
        ]);
        let system = SystemBuilder::new(&caching, None, codec)
            .shards(3)
            .topology(topology)
            .guidance(GuidanceMode::Inline)
            .build();
        let shard_caps: Vec<usize> = (0..3).map(|i| system.shard_buffer(i).capacity()).collect();
        let session = SessionBuilder::new()
            .workers(3)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .live(manual_live())
            .build(system);

        for id in 0..REQUESTS {
            let keys = (0..KEYS_PER_REQUEST)
                .map(|i| {
                    VectorKey::new(
                        TableId((id as u32 + i as u32) % 6),
                        RowId((id * 31 + i as u64 * 7) % 80),
                    )
                })
                .collect();
            session
                .submit(request(id, keys))
                .expect("unbounded admission");
        }

        // Walk every shard through every rung while workers serve.
        let mut flips = 0u64;
        while session.completed_requests() < REQUESTS {
            let sid = (flips % 3) as usize;
            session.migrate_shard(
                sid,
                ShardPlacement {
                    capacity: shard_caps[sid],
                    tier: ((flips / 3) % 3) as usize,
                },
            );
            flips += 1;
        }
        let (system, report) = session.drain();

        assert_eq!(report.completed, REQUESTS);
        assert_eq!(
            report.engine.stats.total(),
            REQUESTS * KEYS_PER_REQUEST as u64,
            "lost or duplicated accesses under file-backed route flips"
        );
        assert_eq!(report.engine.migration.migrations, flips);
        // Surviving storage is live and readable on whatever backend each
        // shard landed on.
        for sid in 0..3 {
            let buffer = system.shard_recmg_buffer(sid);
            for key in buffer.buffer().keys() {
                assert!(
                    buffer.read_row(key).is_some(),
                    "shard {sid}: resident key lost its row after migrations"
                );
            }
        }
    }
    assert_eq!(
        live_backend_files(),
        baseline,
        "migration storage swaps leaked backing files"
    );
}

/// A fast-tier replica on a slow-tier shard re-prices hits without
/// touching counts, and its entries decay once the route-epoch clock
/// outruns the TTL: decayed probes count as invalidations and force a
/// re-fill before the replica serves again.
#[test]
fn replica_hits_save_cost_and_decay_past_ttl() {
    let system = untrained_system(1, 16, 240);
    let shard_capacity = system.capacity();
    let session = SessionBuilder::new()
        .workers(1)
        .guidance(GuidanceMode::Inline)
        .admission(AdmissionPolicy::unbounded())
        .live(manual_live())
        .build(system);

    // Home the shard on the slow tier, then give it a small fast-tier
    // replica for its celebrity keys.
    assert!(session.migrate_shard(
        0,
        ShardPlacement {
            capacity: shard_capacity,
            tier: 1,
        }
    ));
    assert!(session.replicate_shard(0, 8));

    let hot: Vec<VectorKey> = (0..8)
        .map(|r| VectorKey::new(TableId(0), RowId(r)))
        .collect();
    let mut next_id = 0u64;
    let mut serve_hot = |rounds: u64| {
        for _ in 0..rounds {
            session
                .submit(request(next_id, hot.clone()))
                .expect("unbounded admission");
            next_id += 1;
            while session.completed_requests() < next_id {
                std::thread::yield_now();
            }
        }
    };

    // Round 1 faults the keys in (replica untouched); round 2 nominates
    // them (two-touch admission), round 3 fills, round 4 serves from the
    // replica.
    serve_hot(4);

    // Advance the epoch clock past the replica TTL (default policy: 8
    // epochs): every replica entry is now stale.
    for _ in 0..9 {
        session.refresh_routes();
    }
    // First post-decay round invalidates + re-nominates, the second
    // re-fills, the third hits again.
    serve_hot(3);

    let (_, report) = session.drain();
    let replication = report.engine.replication;
    assert_eq!(replication.replicated_shards, 1);
    assert!(
        replication.replica_fills >= 16,
        "initial fill + post-decay re-fill: {replication:?}"
    );
    assert!(
        replication.invalidations >= 8,
        "decayed entries must count as invalidations: {replication:?}"
    );
    assert!(replication.replica_hits > 0);
    assert!(replication.saved_cost_ns > 0, "fast-tier refund missing");
    assert!(replication.replica_cost_ns > 0, "fills are not free");
    // Counts stay canonical: every access of every round is accounted.
    assert_eq!(report.engine.stats.total(), next_id * hot.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Demand-count conservation is exact for any key stream and shard
    /// count, with tier migrations racing the serving workers.
    #[test]
    fn demand_counts_conserve_under_live_migration(
        keys in prop::collection::vec(
            (0u32..8, 0u64..256).prop_map(|(t, r)| VectorKey::new(TableId(t), RowId(r))),
            20..400,
        ),
        shards in 1usize..4,
    ) {
        let system = untrained_system(shards, 32, 96);
        let shard_caps: Vec<usize> =
            (0..shards).map(|i| system.shard_buffer(i).capacity()).collect();
        let session = SessionBuilder::new()
            .workers(2)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .live(manual_live())
            .build(system);

        let mut submitted = 0u64;
        let mut total_keys = 0u64;
        for chunk in keys.chunks(20) {
            session
                .submit(request(submitted, chunk.to_vec()))
                .expect("unbounded admission");
            submitted += 1;
            total_keys += chunk.len() as u64;
        }
        let mut flips = 0u64;
        loop {
            let done = session.completed_requests() >= submitted;
            let sid = (flips % shards as u64) as usize;
            session.migrate_shard(
                sid,
                ShardPlacement {
                    capacity: shard_caps[sid],
                    tier: (flips / shards as u64).is_multiple_of(2) as usize,
                },
            );
            flips += 1;
            if done {
                break;
            }
        }
        let (system, report) = session.drain();
        prop_assert_eq!(report.completed, submitted);
        prop_assert_eq!(report.engine.stats.total(), total_keys);
        prop_assert_eq!(system.demand_accesses(), total_keys);
        prop_assert_eq!(report.engine.migration.migrations, flips);
    }
}
