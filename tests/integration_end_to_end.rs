//! Integration test spanning every crate: trace generation → OPTgen
//! labeling → model training → online buffer management → end-to-end DLRM
//! inference timing.

use recmg_repro::cache::{simulate, SetAssocLru};
use recmg_repro::core::{train_recmg, RecMgConfig, RecMgSystem, TrainOptions};
use recmg_repro::dlrm::{
    BatchAccessStats, BufferManager, DlrmConfig, DlrmModel, EmbeddingStore, InferenceEngine,
    PolicyBufferManager, TimingConfig,
};
use recmg_repro::trace::{SyntheticConfig, TraceStats};

struct Setup {
    trace: recmg_repro::trace::Trace,
    trained: recmg_repro::core::TrainedRecMg,
    capacity: usize,
}

fn setup() -> Setup {
    let trace = SyntheticConfig::dataset_scaled(0, 0.02).generate();
    let stats = TraceStats::compute(&trace);
    let capacity = stats.buffer_capacity(20.0);
    let half = trace.len() / 2;
    let trained = train_recmg(
        &trace.accesses()[..half],
        &RecMgConfig::default(),
        capacity,
        &TrainOptions::tiny(),
    );
    Setup {
        trace,
        trained,
        capacity,
    }
}

#[test]
fn full_pipeline_beats_or_matches_lru_and_speeds_up_inference() {
    let s = setup();
    let eval = &s.trace.accesses()[s.trace.len() / 2..];

    // Buffer-level comparison.
    let mut system = RecMgSystem::from_trained(&s.trained, s.capacity);
    let mut rec = BatchAccessStats::default();
    for chunk in eval.chunks(256) {
        rec.accumulate(system.process_batch(chunk));
    }
    let mut lru = SetAssocLru::new(s.capacity, 32);
    let lru_stats = simulate(&mut lru, eval);
    assert!(
        rec.hit_rate() >= lru_stats.hit_rate() - 0.02,
        "RecMG {:.3} well below LRU {:.3}",
        rec.hit_rate(),
        lru_stats.hit_rate()
    );
    assert!(rec.prefetch_hits > 0, "prefetch model contributed nothing");

    // End-to-end timing via the inference engine.
    let engine = InferenceEngine::new(
        DlrmModel::new(DlrmConfig::small(), 1),
        EmbeddingStore::new(16),
        TimingConfig::default_scaled(),
    );
    let mut rec_mgr = RecMgSystem::from_trained(&s.trained, s.capacity);
    let mut lru_mgr = PolicyBufferManager::new(SetAssocLru::new(s.capacity, 32));
    let t_rec = engine.run(&s.trace, 16, &mut rec_mgr);
    let t_lru = engine.run(&s.trace, 16, &mut lru_mgr);
    assert!(
        t_rec.total_ms <= t_lru.total_ms * 1.05,
        "RecMG {:.1}ms much slower than LRU {:.1}ms",
        t_rec.total_ms,
        t_lru.total_ms
    );
    // The dense DLRM path really ran.
    assert!(t_rec.mean_ctr > 0.0 && t_rec.mean_ctr < 1.0);
}

#[test]
fn caching_model_tracks_optgen_labels_out_of_sample() {
    let s = setup();
    let cfg = RecMgConfig::default();
    let eval = &s.trace.accesses()[s.trace.len() / 2..];
    let held = recmg_repro::core::build_training_data(eval, &cfg, s.capacity);
    let acc = s.trained.caching.accuracy(&held.chunks);
    // Out-of-sample accuracy must clearly beat coin flipping (paper: 83%).
    assert!(acc > 0.6, "held-out caching accuracy {acc}");
}

#[test]
fn trained_prefetcher_has_nonzero_quality() {
    let s = setup();
    let cfg = RecMgConfig::default();
    let eval = &s.trace.accesses()[s.trace.len() / 2..];
    let held = recmg_repro::core::build_training_data(eval, &cfg, s.capacity);
    let sample = &held.prefetch[..held.prefetch.len().min(200)];
    let q = s.trained.prefetch.evaluate(sample, &s.trained.codec);
    assert!(q.accuracy > 0.0, "prefetch accuracy is zero");
    assert!(q.coverage > 0.0, "prefetch coverage is zero");
}

#[test]
fn cm_only_never_uses_prefetch_path() {
    let s = setup();
    let eval = &s.trace.accesses()[s.trace.len() / 2..];
    let mut cm = RecMgSystem::new(
        &s.trained.caching,
        None,
        s.trained.codec.clone(),
        s.capacity,
    );
    let mut stats = BatchAccessStats::default();
    for chunk in eval.chunks(256) {
        stats.accumulate(cm.process_batch(chunk));
    }
    assert_eq!(stats.prefetch_hits, 0);
    assert_eq!(cm.prefetches_issued(), 0);
    assert_eq!(stats.total(), eval.len() as u64);
}
