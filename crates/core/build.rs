//! Decides whether the hand-rolled mmap FFI in `src/backend.rs` is sound
//! on the compile target. The declarations there hardcode PROT/MAP/MADV
//! constants and a 64-bit `off_t`, which is only guaranteed on macOS (all
//! targets) and 64-bit Linux — not on every `cfg(unix)` platform (32-bit
//! glibc has a 32-bit `off_t`, and the BSDs number the constants
//! differently). Elsewhere the mapped-file spec degrades to heap storage.

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    println!("cargo:rustc-check-cfg=cfg(recmg_mmap)");
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    let width = std::env::var("CARGO_CFG_TARGET_POINTER_WIDTH").unwrap_or_default();
    if os == "macos" || (os == "linux" && width == "64") {
        println!("cargo:rustc-cfg=recmg_mmap");
    }
}
