//! Tiered-memory topology and working-set-driven shard placement.
//!
//! The paper's premise is DLRM inference on *tiered* memory, and the
//! RecShard line of work (Sethi et al., 2022) shows the big lever is
//! statistical, working-set-driven placement of embedding state across
//! tiers; Meta's Software Defined Memory work (Ardestani et al., 2021)
//! adds tier-cost-aware serving. This module makes the hierarchy explicit:
//!
//! * a [`MemoryTier`] describes one tier (name, capacity in vectors, and a
//!   [`TierCost`] access-latency model with an optional injected
//!   bandwidth penalty);
//! * a [`TierTopology`] is the ordered fast → slow tier list a system is
//!   built against;
//! * a [`PlacementPolicy`] maps shard count + topology + observed
//!   per-shard access mass to per-shard [`ShardPlacement`]s (capacity
//!   share and home tier): [`EvenSplit`] (the historical behaviour),
//!   [`WorkingSet`] (RecShard-style capacity shares proportional to
//!   observed mass, with a floor), and [`HotFirst`] (even capacities, but
//!   the hottest shards' buffers routed to the fastest tier);
//! * a [`Rebalancer`] re-places a live system between session drains from
//!   per-epoch traffic deltas (snapshot-and-delta, never cumulative
//!   history), on an access-count trigger and, optionally, a sketch-based
//!   phase-change trigger ([`crate::sketch`]).
//!
//! Placement changes capacity shares and tier routing — never the serving
//! *semantics*: with one shard every policy yields the identical system
//! (the parity property `tests/integration_tiering.rs` pins), and with
//! many shards the hash router still owns key → shard; placement only
//! decides how big each shard's buffer is and which tier pays for it.

use crate::backend::{calibrate, BackendSpec, CalibrationReport};
use crate::config::TierCost;
use crate::sharding::ShardedRecMgSystem;
use crate::table_profile::{TablePlacement, TableProfile};

use crate::buffer_mgmt::TierTraffic;

/// One memory tier: a name for reports, a capacity budget in embedding
/// vectors, the storage backend realizing it, and the access-cost model
/// buffers placed here account under (declared synthetic numbers, or
/// measured at build when [`MemoryTier::calibrated`] is set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryTier {
    /// Tier name as it appears in reports/bench JSON (e.g. `"dram"`).
    pub name: String,
    /// Capacity budget of this tier, in embedding vectors.
    pub capacity: usize,
    /// Access-latency cost model (and optional injected penalty).
    pub cost: TierCost,
    /// Storage medium backing buffers placed in this tier (default
    /// [`BackendSpec::Dram`] — the historical behaviour).
    pub backend: BackendSpec,
    /// When set, [`SystemBuilder::build`](crate::SystemBuilder::build)
    /// replaces `cost` with numbers measured against `backend`
    /// ([`crate::backend::calibrate`]).
    pub calibrate: bool,
}

impl MemoryTier {
    /// A tier with an explicit cost model (DRAM-backed, not calibrated).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize, cost: TierCost) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MemoryTier {
            name: name.into(),
            capacity,
            cost,
            backend: BackendSpec::Dram,
            calibrate: false,
        }
    }

    /// A local-DRAM-like fast tier.
    pub fn dram(capacity: usize) -> Self {
        Self::new("dram", capacity, TierCost::dram())
    }

    /// A CXL-/far-NUMA-like slow tier.
    pub fn cxl(capacity: usize) -> Self {
        Self::new("cxl", capacity, TierCost::cxl_like())
    }

    /// Routes buffers placed here onto `backend` storage.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Marks the tier's costs as measured-at-build: the declared `cost`
    /// becomes a placeholder the calibration probe overwrites.
    pub fn calibrated(mut self) -> Self {
        self.calibrate = true;
        self
    }
}

/// The ordered memory hierarchy a system is built against: index 0 is the
/// fastest tier, later indices slower (placement fills fast tiers first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierTopology {
    tiers: Vec<MemoryTier>,
}

impl TierTopology {
    /// Builds a topology from an ordered (fast → slow) tier list.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty.
    pub fn new(tiers: Vec<MemoryTier>) -> Self {
        assert!(!tiers.is_empty(), "topology needs at least one tier");
        TierTopology { tiers }
    }

    /// The single-tier topology every pre-topology constructor implied:
    /// one DRAM tier holding the whole capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn uniform(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self::new(vec![MemoryTier::dram(capacity)])
    }

    /// A DRAM + slow-tier topology with the given capacities.
    pub fn two_tier(fast_capacity: usize, slow_capacity: usize) -> Self {
        Self::new(vec![
            MemoryTier::dram(fast_capacity),
            MemoryTier::cxl(slow_capacity),
        ])
    }

    /// The software-defined-memory ladder (Meta SDM's device memory →
    /// cached host memory → cached SSD, realized here as heap → mapped
    /// file → plain file): all three tiers are
    /// [`calibrated`](MemoryTier::calibrated), so the declared costs are
    /// placeholders the build-time probe replaces with measured numbers.
    /// Embedding stores far larger than the fast-tier budget become
    /// expressible — the slow rungs are files, not RAM.
    pub fn sdm_ladder(fast: usize, mapped: usize, file: usize) -> Self {
        Self::new(vec![
            MemoryTier::dram(fast)
                .with_backend(BackendSpec::Dram)
                .calibrated(),
            MemoryTier::new("mapped_file", mapped, TierCost::cxl_like())
                .with_backend(BackendSpec::MappedFile)
                .calibrated(),
            MemoryTier::new("file", file, TierCost::synthetic(2_000, 12_000, 5_000))
                .with_backend(BackendSpec::File)
                .calibrated(),
        ])
    }

    /// The ordered tier list.
    pub fn tiers(&self) -> &[MemoryTier] {
        &self.tiers
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// Tier `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tier(&self, i: usize) -> &MemoryTier {
        &self.tiers[i]
    }

    /// Total capacity across tiers.
    pub fn total_capacity(&self) -> usize {
        self.tiers.iter().map(|t| t.capacity).sum()
    }

    /// Runs the bind-time probe on every tier marked
    /// [`MemoryTier::calibrated`], overwriting its declared cost with the
    /// measured numbers ([`SystemBuilder::build`](crate::SystemBuilder::build)
    /// calls this before placement, so policies compare measured costs).
    /// Returns one [`CalibrationReport`] entry per probed tier; empty
    /// when nothing was marked.
    pub fn calibrate(&mut self) -> CalibrationReport {
        let mut report = CalibrationReport::default();
        for tier in &mut self.tiers {
            if !tier.calibrate {
                continue;
            }
            let cal = calibrate(tier.backend, tier.capacity, &tier.name);
            tier.cost = cal.cost();
            tier.calibrate = false;
            report.tiers.push(cal);
        }
        report
    }
}

/// Where one shard's buffer lives: its capacity share and home tier index
/// into the [`TierTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlacement {
    /// Buffer capacity of the shard, in vectors.
    pub capacity: usize,
    /// Index of the tier backing the shard's buffer.
    pub tier: usize,
}

/// Maps shard count + topology + observed per-shard traffic to per-shard
/// placements.
///
/// `stats[i]` is shard `i`'s cumulative [`TierTraffic`] (hit/miss/fill
/// counts); an empty or all-zero slice means "no observations yet" and
/// every policy must degrade to a deterministic, observation-free
/// placement. Implementations must return exactly `num_shards` placements
/// with positive capacities and in-range tier indices — placement changes
/// capacity and tier routing, never correctness.
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// Short policy name for reports/bench JSON (e.g. `"working_set"`).
    fn name(&self) -> &'static str;

    /// Computes the placement.
    fn place(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        stats: &[TierTraffic],
    ) -> Vec<ShardPlacement>;

    /// Table-aware placement: like [`PlacementPolicy::place`], but the
    /// caller additionally hands over merged per-table profiles
    /// ([`TableProfile`]), and the policy may return per-table routing
    /// decisions (pins and hot/cold splits) alongside the per-shard
    /// placements. The default ignores the profiles — every existing
    /// policy is table-oblivious — so only statistical policies override
    /// this.
    fn place_with_tables(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        stats: &[TierTraffic],
        tables: &[TableProfile],
    ) -> TablePlacement {
        let _ = tables;
        TablePlacement {
            placements: self.place(num_shards, topology, stats),
            tables: Vec::new(),
        }
    }

    /// How many table ids this policy wants profiled and routable via the
    /// router's pin directory; 0 (the default) disables per-table
    /// profiling entirely, so table-oblivious systems pay nothing on the
    /// demand path.
    fn table_capacity(&self) -> usize {
        0
    }
}

/// Assigns shards (visited in `order`) to tiers greedily fast → slow:
/// each shard lands in the first tier whose remaining capacity fits its
/// buffer, and a shard that fits *no* tier spills into the last one (the
/// topology's backstop). The backstop means the last tier's allocated
/// capacity can exceed its declared budget — from ceil rounding (exactly
/// like the historical even split), or when shares don't bin-pack (a
/// single share larger than any tier, e.g. one shard over a multi-tier
/// topology). Capacity conservation is the invariant placement must keep
/// — shrinking a share to fit would change serving results — so the
/// over-commit is deliberate and visible in [`TierUsage::capacity`]
/// (reported allocation vs the topology's declared budget).
pub(crate) fn assign_tiers(
    capacities: &[usize],
    order: &[usize],
    topology: &TierTopology,
) -> Vec<ShardPlacement> {
    let mut remaining: Vec<isize> = topology
        .tiers()
        .iter()
        .map(|t| t.capacity as isize)
        .collect();
    let last = topology.num_tiers() - 1;
    let mut out = vec![
        ShardPlacement {
            capacity: 0,
            tier: last,
        };
        capacities.len()
    ];
    for &shard in order {
        let cap = capacities[shard];
        let tier = remaining
            .iter()
            .position(|&r| r >= cap as isize)
            .unwrap_or(last);
        remaining[tier] -= cap as isize;
        out[shard] = ShardPlacement {
            capacity: cap,
            tier,
        };
    }
    out
}

/// Even per-shard capacities: `ceil(total / n)` each, minimum 1 — exactly
/// the historical constructor split.
pub(crate) fn even_capacities(num_shards: usize, total: usize) -> Vec<usize> {
    vec![total.div_ceil(num_shards).max(1); num_shards]
}

/// How much cheaper a shard's observed traffic becomes when served from
/// the topology's fastest tier instead of its slowest: each event counts
/// the per-event cost difference, so shards are ranked by what fast-tier
/// residency actually saves — a miss-heavy shard outranks a hit-heavy one
/// of equal demand, because misses carry the larger tier penalty.
pub(crate) fn fast_tier_benefit(traffic: &TierTraffic, topology: &TierTopology) -> u128 {
    let fast = &topology.tiers()[0].cost;
    let slow = &topology.tiers()[topology.num_tiers() - 1].cost;
    traffic.hits as u128 * slow.hit_ns.saturating_sub(fast.hit_ns) as u128
        + traffic.misses as u128 * slow.miss_ns.saturating_sub(fast.miss_ns) as u128
        + traffic.prefetch_fills as u128 * slow.fill_ns.saturating_sub(fast.fill_ns) as u128
}

/// Shard ids sorted by descending fast-tier benefit (stable: ties keep id
/// order; with a one-tier topology or no observations this is the
/// identity order). For equal-size shards on a two-tier topology, filling
/// the fast tier in this order is the cost-minimizing assignment — the
/// property the `tier_placement` bench holds `HotFirst` to.
pub(crate) fn hotness_order(
    num_shards: usize,
    stats: &[TierTraffic],
    topology: &TierTopology,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..num_shards).collect();
    if stats.len() == num_shards && stats.iter().any(|t| t.demand() > 0) {
        order.sort_by_key(|&i| std::cmp::Reverse(fast_tier_benefit(&stats[i], topology)));
    }
    order
}

/// The historical placement: even capacity shares, tiers filled in shard-id
/// order. Mass-oblivious, so rebalancing under it is a no-op — this is the
/// [`SystemBuilder`](crate::SystemBuilder) default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvenSplit;

impl PlacementPolicy for EvenSplit {
    fn name(&self) -> &'static str {
        "even_split"
    }

    fn place(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        _stats: &[TierTraffic],
    ) -> Vec<ShardPlacement> {
        let caps = even_capacities(num_shards, topology.total_capacity());
        let order: Vec<usize> = (0..num_shards).collect();
        assign_tiers(&caps, &order, topology)
    }
}

/// RecShard-style working-set placement: each shard's capacity share is
/// apportioned from its observed *miss* mass (subject to a per-shard
/// `floor`), and tiers are then assigned first-fit in hotness order.
/// Shares sum *exactly* to the topology's total capacity
/// (largest-remainder apportionment). Without observations it degrades to
/// [`EvenSplit`] capacities in hotness order (= id order).
///
/// Because shares are sized before tiers are assigned, a hot shard whose
/// grown share exceeds the fast tier's capacity falls through to a slower
/// tier, and smaller (colder) shards take the fast tier instead — which
/// is the best assignment *given those shares* (an un-splittable buffer
/// bigger than the tier cannot live there, and leaving the fast tier
/// empty would be strictly worse), but it does mean capacity growth
/// trades against tier placement. Size the fast tier to hold at least one
/// grown share (e.g. the half-DRAM/half-CXL split the serving bench uses)
/// when both effects should cooperate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSet {
    /// Minimum capacity any shard keeps, however cold it looks — a shard
    /// sized to zero could never re-warm and its keys would miss forever.
    pub floor: usize,
}

impl WorkingSet {
    /// Working-set placement with the given per-shard floor (clamped to at
    /// least 1).
    pub fn with_floor(floor: usize) -> Self {
        WorkingSet {
            floor: floor.max(1),
        }
    }
}

impl Default for WorkingSet {
    /// Floor of 8 vectors: small enough to matter on toy buffers, large
    /// enough that a cold shard can still form a working set.
    fn default() -> Self {
        WorkingSet { floor: 8 }
    }
}

impl PlacementPolicy for WorkingSet {
    fn name(&self) -> &'static str {
        "working_set"
    }

    fn place(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        stats: &[TierTraffic],
    ) -> Vec<ShardPlacement> {
        // Capacity shares follow *miss* mass, not raw demand: misses are
        // the signal that a shard's working set exceeds its share (a
        // shard hammering three hot keys hits forever in three slots —
        // handing it capacity for its demand would starve the shards
        // whose working sets genuinely don't fit). Falling back to demand
        // keeps the policy defined on miss-free observations.
        let misses: u64 = stats.iter().map(|t| t.misses).sum();
        let mass: Vec<u64> = if misses > 0 {
            stats.iter().map(|t| t.misses).collect()
        } else {
            stats.iter().map(TierTraffic::demand).collect()
        };
        apportion_by_mass(num_shards, topology, stats, &mass, self.floor)
    }
}

/// Largest-remainder apportionment of the topology's capacity to per-shard
/// `mass`, with a per-shard `floor`, assigned to tiers in hotness order —
/// the sizing machinery shared by [`WorkingSet`] (miss mass) and
/// [`CardinalityWorkingSet`] (sketched footprint). Shares sum *exactly* to
/// the topology total; degenerate inputs (no mass, infeasible floor, wrong
/// stat arity) fall back to [`EvenSplit`] capacities in hotness order.
fn apportion_by_mass(
    num_shards: usize,
    topology: &TierTopology,
    stats: &[TierTraffic],
    mass: &[u64],
    floor: usize,
) -> Vec<ShardPlacement> {
    let total = topology.total_capacity();
    let floor = floor.max(1);
    let order = hotness_order(num_shards, stats, topology);
    let total_mass: u128 = mass.iter().map(|&m| m as u128).sum();
    // Degenerate cases fall back to even shares (still hottest-first
    // into the fast tier, which is the identity order here).
    if mass.len() != num_shards || total_mass == 0 || total < num_shards * floor {
        let caps = even_capacities(num_shards, total);
        return assign_tiers(&caps, &order, topology);
    }
    // Largest-remainder apportionment of (total - n×floor) by mass.
    let available = (total - num_shards * floor) as u128;
    let mut caps = vec![floor; num_shards];
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(num_shards);
    let mut assigned: u128 = 0;
    for i in 0..num_shards {
        let exact = available * mass[i] as u128;
        caps[i] += (exact / total_mass) as usize;
        assigned += exact / total_mass;
        remainders.push((exact % total_mass, i));
    }
    // Hand the rounding residue to the largest remainders (ties to the
    // lower shard id), so Σ capacity == total exactly.
    let mut residue = (available - assigned) as usize;
    remainders.sort_by_key(|&(rem, i)| (std::cmp::Reverse(rem), i));
    for &(_, i) in remainders.iter().take(residue.min(num_shards)) {
        caps[i] += 1;
        residue -= 1;
    }
    debug_assert_eq!(residue, 0, "largest-remainder residue fits one pass");
    debug_assert_eq!(caps.iter().sum::<usize>(), total);
    assign_tiers(&caps, &order, topology)
}

/// [`apportion_by_mass`] with *per-shard* floors instead of one uniform
/// floor, and an explicit tier-fill order instead of the traffic-derived
/// [`hotness_order`] — the variant [`crate::StatisticalPlacement`] needs:
/// a shard hosting pinned tables must keep at least its hosted pinned
/// footprint while its siblings only keep the base floor, and the policy
/// front-loads host shards in `order` so their whole pinned footprint
/// lands in the fastest tier (a host carries a non-host's hash traffic
/// *plus* its pinned tables' near-resident hit traffic, so hosts-first is
/// the cost-minimizing fill for any demand mix). Shares still sum exactly
/// to the topology total (largest-remainder over `total − Σ floors`);
/// zero floors are clamped to 1 so no shard is ever sized away entirely.
/// Degenerate inputs (floor arity mismatch, infeasible floor sum) fall
/// back to even shares; a missing/zero mass spreads the above-floor
/// remainder evenly.
pub(crate) fn apportion_with_floors_in_order(
    num_shards: usize,
    topology: &TierTopology,
    order: &[usize],
    mass: &[u64],
    floors: &[usize],
) -> Vec<ShardPlacement> {
    let total = topology.total_capacity();
    let floors: Vec<usize> = floors.iter().map(|&f| f.max(1)).collect();
    let floor_sum: usize = floors.iter().sum();
    if floors.len() != num_shards || total < floor_sum {
        let caps = even_capacities(num_shards, total);
        return assign_tiers(&caps, order, topology);
    }
    let available = total - floor_sum;
    let total_mass: u128 = mass.iter().map(|&m| m as u128).sum();
    let mut caps = floors;
    if mass.len() != num_shards || total_mass == 0 {
        // No sizing signal: spread the above-floor remainder evenly.
        for (i, c) in caps.iter_mut().enumerate() {
            *c += available / num_shards + usize::from(i < available % num_shards);
        }
        debug_assert_eq!(caps.iter().sum::<usize>(), total);
        return assign_tiers(&caps, order, topology);
    }
    let available = available as u128;
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(num_shards);
    let mut assigned: u128 = 0;
    for i in 0..num_shards {
        let exact = available * mass[i] as u128;
        caps[i] += (exact / total_mass) as usize;
        assigned += exact / total_mass;
        remainders.push((exact % total_mass, i));
    }
    let mut residue = (available - assigned) as usize;
    remainders.sort_by_key(|&(rem, i)| (std::cmp::Reverse(rem), i));
    for &(_, i) in remainders.iter().take(residue.min(num_shards)) {
        caps[i] += 1;
        residue -= 1;
    }
    debug_assert_eq!(residue, 0, "largest-remainder residue fits one pass");
    debug_assert_eq!(caps.iter().sum::<usize>(), total);
    assign_tiers(&caps, order, topology)
}

/// Footprint-driven working-set placement: capacity shares are apportioned
/// from each shard's *sketched unique-key cardinality*
/// ([`TierTraffic::unique_keys`], maintained by the per-buffer
/// [`WorkingSetTracker`](crate::sketch::WorkingSetTracker) over a sliding
/// epoch window) instead of miss counts. Misses conflate capacity pressure
/// with pure access volume — a shard thrashing three cold keys looks as
/// hungry as one whose reuse footprint genuinely exceeds its share; the
/// footprint measures what RecShard actually sizes placements from, the
/// number of distinct vectors a shard needs resident. Same invariants as
/// [`WorkingSet`]: shares sum exactly to the topology capacity
/// (largest-remainder), every shard keeps at least `floor`, tiers are
/// assigned first-fit in hotness order. Falls back to miss mass, then
/// demand, then even shares when footprint observations are missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardinalityWorkingSet {
    /// Minimum capacity any shard keeps, however small it sketches — a
    /// shard sized to zero could never re-warm.
    pub floor: usize,
}

impl CardinalityWorkingSet {
    /// Footprint placement with the given per-shard floor (clamped to at
    /// least 1).
    pub fn with_floor(floor: usize) -> Self {
        CardinalityWorkingSet {
            floor: floor.max(1),
        }
    }
}

impl Default for CardinalityWorkingSet {
    /// The same 8-vector floor as [`WorkingSet`], for like-for-like policy
    /// comparisons.
    fn default() -> Self {
        CardinalityWorkingSet { floor: 8 }
    }
}

impl PlacementPolicy for CardinalityWorkingSet {
    fn name(&self) -> &'static str {
        "cardinality_working_set"
    }

    fn place(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        stats: &[TierTraffic],
    ) -> Vec<ShardPlacement> {
        let footprint: u64 = stats.iter().map(|t| t.unique_keys).sum();
        let misses: u64 = stats.iter().map(|t| t.misses).sum();
        let mass: Vec<u64> = if footprint > 0 {
            stats.iter().map(|t| t.unique_keys).collect()
        } else if misses > 0 {
            stats.iter().map(|t| t.misses).collect()
        } else {
            stats.iter().map(TierTraffic::demand).collect()
        };
        apportion_by_mass(num_shards, topology, stats, &mass, self.floor)
    }
}

/// Hot-first tier routing: capacities stay even (identical hit/miss
/// behaviour to [`EvenSplit`] — only the cost accounting moves), but the
/// shards with the highest observed fast-tier benefit are routed to the
/// fastest tier. With equal-size shards on a two-tier topology, the
/// benefit-ordered greedy assignment minimizes total access cost *for
/// traffic distributed like the observations*: on a replayed or
/// stationary workload it never places worse than the id-order split.
/// (If the observation window's mix diverges from steady state — e.g. it
/// is dominated by one-time cold-start misses — the ranking can be off;
/// re-observe and rebalance again.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotFirst;

impl PlacementPolicy for HotFirst {
    fn name(&self) -> &'static str {
        "hot_first"
    }

    fn place(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        stats: &[TierTraffic],
    ) -> Vec<ShardPlacement> {
        let caps = even_capacities(num_shards, topology.total_capacity());
        assign_tiers(&caps, &hotness_order(num_shards, stats, topology), topology)
    }
}

/// Per-tier usage and traffic of one system (or the delta over one run):
/// which shards live where, how full the tier is, and what its traffic
/// cost under the tier's [`TierCost`] model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierUsage {
    /// Tier name (from [`MemoryTier::name`]).
    pub name: String,
    /// Shards whose buffers live in this tier.
    pub shards: usize,
    /// Capacity allocated to those shards, in vectors.
    pub capacity: usize,
    /// Vectors currently resident.
    pub resident: usize,
    /// Merged traffic of the tier's shard buffers.
    pub traffic: TierTraffic,
}

impl TierUsage {
    /// Hit-weighted access cost of this tier's traffic, in nanoseconds.
    pub fn access_cost_ns(&self) -> u64 {
        self.traffic.cost_ns
    }

    /// Machine-readable summary with fixed field names.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tier\": \"{}\", \"shards\": {}, \"capacity\": {}, ",
                "\"resident\": {}, \"hits\": {}, \"misses\": {}, ",
                "\"prefetch_fills\": {}, \"demand_fills\": {}, \"cost_ns\": {}, ",
                "\"unique_keys\": {}}}"
            ),
            self.name,
            self.shards,
            self.capacity,
            self.resident,
            self.traffic.hits,
            self.traffic.misses,
            self.traffic.prefetch_fills,
            self.traffic.demand_fills,
            self.traffic.cost_ns,
            self.traffic.unique_keys,
        )
    }

    /// Counter-wise traffic delta against an earlier snapshot of the same
    /// tier (occupancy fields stay point-in-time).
    pub fn delta_since(&self, before: &TierUsage) -> TierUsage {
        TierUsage {
            name: self.name.clone(),
            shards: self.shards,
            capacity: self.capacity,
            resident: self.resident,
            traffic: self.traffic.delta_since(&before.traffic),
        }
    }

    /// Total hit-weighted cost across a set of tier usages.
    pub fn total_cost_ns(usages: &[TierUsage]) -> u64 {
        usages.iter().map(TierUsage::access_cost_ns).sum()
    }
}

/// Re-places a live system from its per-shard demand stats — RecShard-style
/// capacity rebalancing driven by the same signals PR 3's plane
/// observability made trustworthy.
///
/// Call [`Rebalancer::maybe_rebalance`] between session drains (the system
/// must be quiescent: rebalancing resizes buffers in place). Two triggers:
///
/// * **Access count** — fires after at least `min_new_accesses` fresh
///   demand accesses since the last fire, so placement follows the
///   workload instead of chasing noise.
/// * **Phase change** (opt-in via
///   [`Rebalancer::with_phase_trigger`]) — fires as soon as any shard's
///   sketch [`phase score`](crate::sketch::WorkingSetStats::phase_score)
///   crosses a threshold, i.e. within one sketch epoch of a working-set
///   flip, without waiting out the access count. A cooldown (in fresh
///   accesses) bounds re-fire churn while the flip is still draining out
///   of the sketch window.
///
/// Placement always runs on **epoch deltas**, not cumulative history: the
/// rebalancer snapshots every shard's [`TierTraffic`] at each fire and
/// hands the policy only the traffic observed *since the previous fire*
/// (the point-in-time `unique_keys` footprint rides along unchanged).
/// Cumulative counters would let months of stale history outvote the
/// current phase — and, on a quiescent system, would re-trigger the count
/// condition forever off traffic that was already acted on.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    min_new_accesses: u64,
    /// Phase-change trigger: fire when any shard's phase score reaches
    /// `threshold`, at most once per `cooldown` fresh accesses.
    phase: Option<PhaseTrigger>,
    /// Per-shard hysteresis for the phase trigger: a shard fires once per
    /// excursion of its score above the threshold and re-arms only after
    /// the score falls back below it — one flip, one reactive
    /// re-placement, however many epochs the flip takes to drain out of
    /// the sketch window. Empty until the first phase-armed check.
    phase_armed: Vec<bool>,
    /// Per-shard traffic snapshots at the last fire (empty before the
    /// first fire).
    last_traffic: Vec<TierTraffic>,
    last_total: u64,
    fires: u64,
    rebalances: u64,
    phase_fires: u64,
    deferrals: u64,
}

/// Phase-change trigger configuration (see
/// [`Rebalancer::with_phase_trigger`]).
#[derive(Debug, Clone, Copy)]
struct PhaseTrigger {
    threshold: f64,
    cooldown: u64,
}

/// A rebalance trigger fired while the system was **not quiescent**
/// (nonzero serving queue depth), so acting would have resized buffers
/// under in-flight load. The fire is *not* consumed: trigger state is
/// untouched and the same fire re-raises on the next quiescent check.
/// Sessions that cannot drain should use the live subsystem
/// ([`SessionBuilder::live`](crate::SessionBuilder::live)) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceDeferred {
    /// The serving queue depth observed at the fire.
    pub queue_depth: usize,
}

impl std::fmt::Display for RebalanceDeferred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rebalance deferred: system not quiescent (queue depth {})",
            self.queue_depth
        )
    }
}

impl std::error::Error for RebalanceDeferred {}

impl Rebalancer {
    /// A rebalancer that re-places after every `min_new_accesses` observed
    /// demand accesses (count trigger only).
    ///
    /// # Panics
    ///
    /// Panics if `min_new_accesses` is zero.
    pub fn new(min_new_accesses: u64) -> Self {
        assert!(min_new_accesses > 0, "need a positive rebalance period");
        Rebalancer {
            min_new_accesses,
            phase: None,
            phase_armed: Vec::new(),
            last_traffic: Vec::new(),
            last_total: 0,
            fires: 0,
            rebalances: 0,
            phase_fires: 0,
            deferrals: 0,
        }
    }

    /// Adds the phase-change trigger: fire as soon as any
    /// significant-traffic shard's sketch phase score reaches `threshold`
    /// (a fraction in `(0, 1]`; scores near 1 mean the latest epoch's
    /// working set is almost entirely new), with at least `cooldown`
    /// fresh demand accesses between phase fires — one sketch epoch is a
    /// sensible floor. The trigger is edge-sensitive: each shard fires
    /// once per excursion of its score above the threshold and re-arms
    /// only after the score falls back below, so a single flip causes a
    /// single reactive re-placement even though the score stays elevated
    /// until the flip drains out of the sketch window (the count trigger
    /// owns steady-state follow-up).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]` or `cooldown` is zero.
    pub fn with_phase_trigger(mut self, threshold: f64, cooldown: u64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "phase threshold must be in (0, 1]"
        );
        assert!(cooldown > 0, "need a positive phase cooldown");
        self.phase = Some(PhaseTrigger {
            threshold,
            cooldown,
        });
        self
    }

    /// Re-places `system` if a trigger fired; returns whether anything
    /// actually moved. Placement sees only the per-shard traffic deltas
    /// since the previous fire.
    ///
    /// The no-fire path is cheap by construction — raw demand counters
    /// and cached phase scores only; the full per-shard traffic (whose
    /// `unique_keys` estimate merges each shard's sketch window) is
    /// materialized only when a trigger actually fires. This is what
    /// makes "call it after every batch" a reasonable contract.
    pub fn maybe_rebalance(&mut self, system: &mut ShardedRecMgSystem) -> bool {
        match self.try_rebalance(system, 0) {
            Ok(changed) => changed,
            Err(_) => unreachable!("zero queue depth never defers"),
        }
    }

    /// Quiescence-checked [`Rebalancer::maybe_rebalance`]: the caller
    /// passes the serving queue depth it observes (e.g.
    /// [`ServingSession::queue_len`](crate::ServingSession::queue_len)),
    /// and a trigger that fires while the depth is nonzero returns
    /// [`RebalanceDeferred`] instead of silently resizing a non-quiescent
    /// system. A deferred fire consumes **no** trigger state — snapshots,
    /// hysteresis, and counters are untouched, so the same fire re-raises
    /// as soon as the queue drains.
    pub fn try_rebalance(
        &mut self,
        system: &mut ShardedRecMgSystem,
        queue_depth: usize,
    ) -> Result<bool, RebalanceDeferred> {
        let demands = system.shard_demands();
        let total: u64 = demands.iter().sum();
        let fresh = total.saturating_sub(self.last_total);
        let count_fire = fresh >= self.min_new_accesses;
        // Hysteresis bookkeeping runs on *every* check (re-arm) and any
        // fire consumes the currently-flipped shards (disarm) — a flip
        // that happens to be handled by a count fire must not phase-fire
        // again one cooldown later.
        let qualified = self.phase_qualified(system, &demands, fresh);
        let phase_fire =
            !count_fire && !qualified.is_empty() && self.phase.is_some_and(|p| fresh >= p.cooldown);
        if !count_fire && !phase_fire {
            return Ok(false);
        }
        if queue_depth > 0 {
            self.deferrals += 1;
            return Err(RebalanceDeferred { queue_depth });
        }
        for &i in &qualified {
            self.phase_armed[i] = false;
        }
        // Snapshot-and-delta: the policy reacts to this epoch's traffic,
        // not to cumulative history (first fire: deltas == cumulative).
        let stats = system.shard_traffics();
        let deltas: Vec<TierTraffic> = if self.last_traffic.len() == stats.len() {
            stats
                .iter()
                .zip(&self.last_traffic)
                .map(|(now, before)| now.delta_since(before))
                .collect()
        } else {
            stats.clone()
        };
        self.last_traffic = stats;
        self.last_total = total;
        self.fires += 1;
        if phase_fire {
            self.phase_fires += 1;
        }
        let changed = system.rebalance_from(&deltas);
        if changed {
            self.rebalances += 1;
        }
        Ok(changed)
    }

    /// Shards whose phase event is live right now: armed, carrying a
    /// meaningful share of the fresh traffic, and scoring at or above the
    /// threshold. Also updates the hysteresis re-arm side.
    ///
    /// Significance: a shard's sketch score only counts while the shard
    /// carries at least half an even split of the fresh traffic. A
    /// near-idle shard rotates its sketch rarely, so a single tail-key
    /// epoch would otherwise pin a stale high score that re-fires the
    /// trigger on every cooldown (placement churn with no workload
    /// change). Hysteresis: a consumed (fired-on) shard stays disarmed
    /// until its score falls back below the threshold, so one flip is
    /// acted on once even though the score stays high for a full sketch
    /// window.
    fn phase_qualified(
        &mut self,
        system: &ShardedRecMgSystem,
        demands: &[u64],
        fresh: u64,
    ) -> Vec<usize> {
        let Some(p) = self.phase else {
            return Vec::new();
        };
        let scores = system.shard_phase_scores();
        self.phase_armed.resize(scores.len(), true);
        // Re-arm every shard whose score dropped back below the
        // threshold (cheap, runs on every check so re-arming is not
        // delayed until the next fire).
        for (armed, &score) in self.phase_armed.iter_mut().zip(&scores) {
            if score < p.threshold {
                *armed = true;
            }
        }
        let significant = (fresh / (2 * demands.len().max(1) as u64)).max(1);
        scores
            .iter()
            .enumerate()
            .filter(|&(i, &score)| {
                let delta = demands[i]
                    .saturating_sub(self.last_traffic.get(i).map_or(0, TierTraffic::demand));
                score >= p.threshold && delta >= significant && self.phase_armed[i]
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Trigger firings (whether or not placement moved anything).
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// Firings caused by the phase trigger rather than the access count.
    pub fn phase_fires(&self) -> u64 {
        self.phase_fires
    }

    /// Rebalances that moved at least one shard.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Fires deferred because the system was not quiescent
    /// ([`Rebalancer::try_rebalance`] with nonzero queue depth).
    pub fn deferrals(&self) -> u64 {
        self.deferrals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_2tier(fast: usize, slow: usize) -> TierTopology {
        TierTopology::two_tier(fast, slow)
    }

    /// Traffic with the given demand mass (all hits).
    fn mass(demands: &[u64]) -> Vec<TierTraffic> {
        demands
            .iter()
            .map(|&hits| TierTraffic {
                hits,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn uniform_topology_is_one_dram_tier() {
        let t = TierTopology::uniform(64);
        assert_eq!(t.num_tiers(), 1);
        assert_eq!(t.total_capacity(), 64);
        assert_eq!(t.tier(0).name, "dram");
        assert_eq!(t.tier(0).cost, TierCost::dram());
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_topology_panics() {
        let _ = TierTopology::new(vec![]);
    }

    #[test]
    fn even_split_matches_historical_shares() {
        let t = TierTopology::uniform(10);
        let p = EvenSplit.place(4, &t, &[]);
        assert_eq!(p.len(), 4);
        for s in &p {
            assert_eq!(s.capacity, 3); // ceil(10/4)
            assert_eq!(s.tier, 0);
        }
    }

    #[test]
    fn even_split_fills_tiers_in_id_order() {
        let t = topo_2tier(8, 24);
        let p = EvenSplit.place(4, &t, &[]);
        // 8 vectors each: shard 0 fits in the fast tier, 1–3 spill slow.
        assert_eq!(
            p[0],
            ShardPlacement {
                capacity: 8,
                tier: 0
            }
        );
        for s in &p[1..] {
            assert_eq!(s.tier, 1);
        }
    }

    #[test]
    fn hot_first_routes_hottest_to_fast_tier() {
        let t = topo_2tier(8, 24);
        let stats = mass(&[1, 100, 3, 7]);
        let p = HotFirst.place(4, &t, &stats);
        // Capacities identical to EvenSplit…
        for s in &p {
            assert_eq!(s.capacity, 8);
        }
        // …but the hottest shard (1) owns the fast tier.
        assert_eq!(p[1].tier, 0);
        assert_eq!(p[0].tier, 1);
        assert_eq!(p[2].tier, 1);
        assert_eq!(p[3].tier, 1);
    }

    #[test]
    fn hot_first_without_mass_equals_even_split() {
        let t = topo_2tier(16, 16);
        assert_eq!(HotFirst.place(4, &t, &[]), EvenSplit.place(4, &t, &[]));
        assert_eq!(
            HotFirst.place(4, &t, &mass(&[0, 0, 0, 0])),
            EvenSplit.place(4, &t, &[])
        );
    }

    #[test]
    fn working_set_sums_exactly_and_respects_floor() {
        let t = TierTopology::uniform(100);
        let policy = WorkingSet::with_floor(5);
        let stats = mass(&[1000, 10, 10, 1]);
        let p = policy.place(4, &t, &stats);
        let total: usize = p.iter().map(|s| s.capacity).sum();
        assert_eq!(total, 100, "shares must sum exactly to total capacity");
        for s in &p {
            assert!(s.capacity >= 5, "floor respected: {:?}", p);
        }
        // The dominant shard takes the lion's share.
        assert!(p[0].capacity > 80, "hot shard share: {:?}", p);
        assert!(p[3].capacity >= 5 && p[3].capacity < 10);
    }

    #[test]
    fn working_set_degrades_to_even_without_mass() {
        let t = TierTopology::uniform(64);
        let p = WorkingSet::default().place(4, &t, &[]);
        for s in &p {
            assert_eq!(s.capacity, 16);
            assert_eq!(s.tier, 0);
        }
    }

    #[test]
    fn working_set_infeasible_floor_falls_back_to_even() {
        let t = TierTopology::uniform(10);
        let p = WorkingSet::with_floor(100).place(4, &t, &mass(&[5, 5, 5, 5]));
        for s in &p {
            assert_eq!(s.capacity, 3);
        }
    }

    /// Traffic with the given sketched footprints (hits equal so hotness
    /// order alone cannot explain sizing differences).
    fn footprints(unique: &[u64]) -> Vec<TierTraffic> {
        unique
            .iter()
            .map(|&unique_keys| TierTraffic {
                hits: 10,
                unique_keys,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn cardinality_working_set_sizes_by_footprint_not_volume() {
        let t = TierTopology::uniform(100);
        // Shard 0 hammers few keys with huge volume; shard 1 touches many
        // distinct keys with modest volume. Miss-mass sizing would feed
        // shard 0; footprint sizing must feed shard 1.
        let stats = vec![
            TierTraffic {
                hits: 90_000,
                misses: 9_000,
                unique_keys: 10,
                ..Default::default()
            },
            TierTraffic {
                hits: 1_000,
                misses: 900,
                unique_keys: 90,
                ..Default::default()
            },
        ];
        let policy = CardinalityWorkingSet::with_floor(5);
        let p = policy.place(2, &t, &stats);
        assert_eq!(p.iter().map(|s| s.capacity).sum::<usize>(), 100);
        assert!(
            p[1].capacity > p[0].capacity,
            "footprint-heavy shard gets the larger share: {p:?}"
        );
        // Under miss mass the order flips — the two policies genuinely
        // disagree on this workload.
        let miss = WorkingSet::with_floor(5).place(2, &t, &stats);
        assert!(miss[0].capacity > miss[1].capacity);
    }

    #[test]
    fn cardinality_working_set_invariants_and_fallbacks() {
        let t = topo_2tier(32, 96);
        let policy = CardinalityWorkingSet::default();
        // With footprints: exact sum + floor.
        let p = policy.place(4, &t, &footprints(&[500, 50, 5, 0]));
        assert_eq!(p.iter().map(|s| s.capacity).sum::<usize>(), 128);
        for s in &p {
            assert!(s.capacity >= 8);
        }
        // No footprints: falls back to miss mass.
        let stats = mass(&[0, 0, 0, 0])
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                t.misses = [100, 10, 1, 1][i];
                t
            })
            .collect::<Vec<_>>();
        let p = policy.place(4, &t, &stats);
        assert!(p[0].capacity > p[1].capacity, "miss-mass fallback: {p:?}");
        // No observations at all: even shares.
        let p = policy.place(4, &t, &[]);
        for s in &p {
            assert_eq!(s.capacity, 32);
        }
        assert_eq!(policy.name(), "cardinality_working_set");
    }

    #[test]
    fn cardinality_working_set_one_shard_takes_everything() {
        let t = topo_2tier(16, 48);
        let p = CardinalityWorkingSet::default().place(1, &t, &footprints(&[123]));
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].capacity, 64);
    }

    #[test]
    #[should_panic(expected = "phase threshold must be in (0, 1]")]
    fn phase_trigger_threshold_validated() {
        let _ = Rebalancer::new(10).with_phase_trigger(1.5, 64);
    }

    #[test]
    #[should_panic(expected = "positive phase cooldown")]
    fn phase_trigger_cooldown_validated() {
        let _ = Rebalancer::new(10).with_phase_trigger(0.5, 0);
    }

    #[test]
    fn assign_tiers_overflow_lands_in_last_tier() {
        let t = topo_2tier(4, 4);
        // One shard bigger than any tier: backstopped by the last tier.
        let p = assign_tiers(&[16], &[0], &t);
        assert_eq!(p[0].tier, 1);
        assert_eq!(p[0].capacity, 16);
    }

    #[test]
    fn tier_usage_json_and_totals() {
        let u = TierUsage {
            name: "dram".into(),
            shards: 2,
            capacity: 32,
            resident: 10,
            traffic: TierTraffic {
                hits: 7,
                misses: 3,
                prefetch_fills: 1,
                demand_fills: 2,
                cost_ns: 1234,
                unique_keys: 5,
            },
        };
        let json = u.to_json();
        for field in [
            "\"tier\": \"dram\"",
            "\"shards\": 2",
            "\"hits\": 7",
            "\"demand_fills\": 2",
            "\"cost_ns\": 1234",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert_eq!(TierUsage::total_cost_ns(&[u.clone(), u.clone()]), 2468);
        let mut later = u.clone();
        later.traffic.hits += 5;
        later.traffic.cost_ns += 100;
        let d = later.delta_since(&u);
        assert_eq!(d.traffic.hits, 5);
        assert_eq!(d.traffic.cost_ns, 100);
        assert_eq!(d.capacity, 32);
    }

    #[test]
    fn sdm_ladder_builds_three_calibrated_rungs() {
        let t = TierTopology::sdm_ladder(16, 32, 64);
        assert_eq!(t.num_tiers(), 3);
        assert_eq!(t.total_capacity(), 112);
        let names: Vec<&str> = t.tiers().iter().map(|tier| tier.name.as_str()).collect();
        assert_eq!(names, ["dram", "mapped_file", "file"]);
        let backends: Vec<&str> = t.tiers().iter().map(|tier| tier.backend.name()).collect();
        assert_eq!(backends, ["dram", "mapped_file", "file"]);
        assert!(t.tiers().iter().all(|tier| tier.calibrate));
    }

    #[test]
    fn topology_calibrate_overwrites_marked_costs_only() {
        let injected = TierCost::synthetic(123, 456, 234);
        let mut t = TierTopology::new(vec![
            MemoryTier::new("fixed", 8, injected),
            MemoryTier::new("probed", 8, TierCost::FREE)
                .with_backend(BackendSpec::Dram)
                .calibrated(),
        ]);
        let report = t.calibrate();
        assert_eq!(report.tiers.len(), 1, "only the marked tier is probed");
        let cal = &report.tiers[0];
        assert_eq!(cal.tier, "probed");
        assert_eq!(cal.backend, "dram");
        assert!(cal.hit_ns > 0 && cal.miss_ns > 0 && cal.fill_ns > 0);
        assert_eq!(t.tier(0).cost, injected, "unmarked tier keeps its cost");
        assert_eq!(t.tier(1).cost, cal.cost());
        assert!(!t.tier(1).calibrate, "probe is once per bind");
        // A second pass finds nothing left to probe.
        assert!(t.calibrate().tiers.is_empty());
    }
}
