//! Per-table access statistics and RecShard-style statistical placement.
//!
//! Everything the placement layer sized until now was *per shard*:
//! hash-routed traffic, miss mass, sketched shard footprints. Real DLRM
//! table arrays are wildly heterogeneous — the libai config spans 3 to
//! 39.9M rows across 26 sparse features — and RecShard (Sethi et al.,
//! 2022) shows the big win comes from *per-table* statistics: tiny tables
//! whose whole footprint fits in fast memory should be pinned there
//! outright, while huge power-law tables should be split at a learned
//! hot/cold row boundary so only the hot prefix competes for fast-tier
//! capacity. This module supplies both halves:
//!
//! * [`TableProfiler`] — a per-shard, lock-free-by-ownership accumulator
//!   hooked into the demand path ([`Shard::record_access`]): per table it
//!   tracks total accesses, the maximum observed row (a size estimate), a
//!   bounded per-row frequency sample (for the skew fit), and a
//!   high-cardinality [`CardinalitySketch`] of the unique-row footprint
//!   ([`SketchConfig::high_cardinality`], ~1.6% σ — libai-scale tables
//!   have millions of unique rows, far past the default sketch shape).
//! * [`TableProfile`] — the cross-shard merge: per-table size, demand
//!   share, fitted power-law exponent (least squares on the log-log
//!   rank/frequency sample), and sketched footprint.
//! * [`StatisticalPlacement`] — a [`PlacementPolicy`] that pins tables
//!   whose sketched footprint fits a threshold into the fastest tier
//!   (routed by direct table-id lookup, no hashing — see
//!   [`ShardRouter`](crate::ShardRouter)), splits large skewed tables at
//!   the closed-form [`hot_boundary`], and apportions shard capacities
//!   from the resulting per-shard footprint mass with per-shard floors
//!   that keep every pinned table resident.
//!
//! Profiles are deterministic functions of the access stream (the sketch
//! is deterministic, the row sample is insertion-capped, the fit is least
//! squares), so placement decisions are reproducible run to run.

use std::collections::HashMap;

use recmg_trace::VectorKey;

use crate::buffer_mgmt::TierTraffic;
use crate::config::SketchConfig;
use crate::sketch::CardinalitySketch;
use crate::tier::{
    apportion_with_floors_in_order, even_capacities, fast_tier_benefit, PlacementPolicy,
    ShardPlacement,
};
use crate::tier::{assign_tiers, TierTopology};

/// Per-row frequency samples kept per table, per shard. At the cap only
/// already-sampled rows keep counting — under a power-law stream the hot
/// rows appear within the first few thousand draws with overwhelming
/// probability, so the cap biases the skew fit toward exactly the rows
/// the fit is about.
const ROW_SAMPLE_CAP: usize = 4096;

/// Merged per-table access profile — what [`StatisticalPlacement`] reads
/// and what [`EngineReport`](crate::EngineReport) surfaces per table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableProfile {
    /// Table id ([`VectorKey::table`]).
    pub table: u32,
    /// Size estimate in rows: maximum observed row id + 1. A lower bound
    /// on the true table size that converges quickly under any skew.
    pub size: u64,
    /// Demand accesses observed for this table.
    pub accesses: u64,
    /// This table's share of all profiled demand, in `[0, 1]`.
    pub demand_share: f64,
    /// Fitted power-law exponent α of the observed rank/frequency curve
    /// (least squares on log(freq) vs log(rank), clamped to `[0, 8]`);
    /// 0 means uniform or too few samples to fit.
    pub skew: f64,
    /// Sketched unique-row footprint
    /// ([`SketchConfig::high_cardinality`] shape, ~1.6% σ).
    pub unique_rows: u64,
}

/// One table's routing decision from a table-aware placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDecision {
    /// Table id the decision applies to.
    pub table: u32,
    /// Shard the whole table is pinned to (routed without hashing), or
    /// `None` for hash-routed tables.
    pub pinned_shard: Option<usize>,
    /// Learned hot/cold row boundary: rows below it are the hot prefix
    /// fast-tier capacity is sized for. 0 means unsplit.
    pub hot_rows: u64,
}

/// Result of [`PlacementPolicy::place_with_tables`]: per-shard placements
/// plus per-table routing decisions (empty for table-oblivious policies).
#[derive(Debug, Clone, PartialEq)]
pub struct TablePlacement {
    /// Per-shard capacity/tier placements (always `num_shards` long).
    pub placements: Vec<ShardPlacement>,
    /// Per-table pin/split decisions.
    pub tables: Vec<TableDecision>,
}

/// One table's entry in an [`EngineReport`](crate::EngineReport): the
/// merged demand profile plus the routing decision currently installed
/// for it.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Merged demand profile across shards.
    pub profile: TableProfile,
    /// Shard the table is pinned to (`None` = hash-routed).
    pub pinned_shard: Option<usize>,
    /// Installed hot/cold row boundary (0 = unsplit).
    pub hot_rows: u64,
}

impl TableReport {
    /// Fixed-field JSON row (`pinned_shard` is −1 for hash-routed tables,
    /// keeping the document free of nulls).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"table\": {}, \"size\": {}, \"accesses\": {}, ",
                "\"demand_share\": {:.4}, \"skew\": {:.3}, ",
                "\"unique_rows\": {}, \"pinned_shard\": {}, \"hot_rows\": {}}}"
            ),
            self.profile.table,
            self.profile.size,
            self.profile.accesses,
            self.profile.demand_share,
            self.profile.skew,
            self.profile.unique_rows,
            self.pinned_shard.map_or(-1, |s| s as i64),
            self.hot_rows,
        )
    }
}

/// Per-shard accumulator of per-table statistics. Owned by its shard (no
/// locking beyond the shard mutex the demand path already holds);
/// merged across shards on demand by [`TableProfiler::merge`].
#[derive(Debug, Clone)]
pub struct TableProfiler {
    /// Table ids at or above this are counted but not profiled (bounds
    /// memory against adversarial id spaces).
    capacity: usize,
    tables: HashMap<u32, TableStats>,
}

#[derive(Debug, Clone)]
struct TableStats {
    accesses: u64,
    max_row: u64,
    rows: HashMap<u64, u64>,
    sketch: CardinalitySketch,
}

impl TableStats {
    fn new() -> Self {
        TableStats {
            accesses: 0,
            max_row: 0,
            rows: HashMap::new(),
            sketch: CardinalitySketch::from_config(&SketchConfig::high_cardinality()),
        }
    }
}

impl TableProfiler {
    /// A profiler covering table ids `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "profiler needs a positive table capacity");
        TableProfiler {
            capacity,
            tables: HashMap::new(),
        }
    }

    /// Table-id capacity this profiler covers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Observes one demand access on this shard.
    #[inline]
    pub fn observe(&mut self, key: VectorKey) {
        let table = key.table().0;
        if table as usize >= self.capacity {
            return;
        }
        let row = key.row().0;
        let stats = self.tables.entry(table).or_insert_with(TableStats::new);
        stats.accesses += 1;
        stats.max_row = stats.max_row.max(row);
        stats.sketch.insert(row);
        if stats.rows.len() < ROW_SAMPLE_CAP {
            *stats.rows.entry(row).or_insert(0) += 1;
        } else if let Some(count) = stats.rows.get_mut(&row) {
            *count += 1;
        }
    }

    /// Whether any access was observed.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Clears all per-table state (shape preserved).
    pub fn reset(&mut self) {
        self.tables.clear();
    }

    /// Merges per-shard profilers into one profile per table, sorted by
    /// table id: accesses and row samples sum, sketches union, the skew
    /// is fitted on the merged rank/frequency sample, and demand shares
    /// are normalized over the merged total.
    pub fn merge<'a>(profilers: impl IntoIterator<Item = &'a TableProfiler>) -> Vec<TableProfile> {
        let mut merged: HashMap<u32, TableStats> = HashMap::new();
        for profiler in profilers {
            for (&table, stats) in &profiler.tables {
                match merged.entry(table) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(stats.clone());
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let acc = e.get_mut();
                        acc.accesses += stats.accesses;
                        acc.max_row = acc.max_row.max(stats.max_row);
                        acc.sketch.merge(&stats.sketch);
                        for (&row, &count) in &stats.rows {
                            // The merged sample may exceed the per-shard
                            // cap; it is still a sample, and a larger one
                            // only improves the fit.
                            *acc.rows.entry(row).or_insert(0) += count;
                        }
                    }
                }
            }
        }
        let total: u64 = merged.values().map(|s| s.accesses).sum();
        let mut profiles: Vec<TableProfile> = merged
            .into_iter()
            .map(|(table, stats)| TableProfile {
                table,
                size: stats.max_row + 1,
                accesses: stats.accesses,
                demand_share: if total > 0 {
                    stats.accesses as f64 / total as f64
                } else {
                    0.0
                },
                skew: fit_skew(&stats.rows),
                unique_rows: stats.sketch.estimate_u64(),
            })
            .collect();
        profiles.sort_by_key(|p| p.table);
        profiles
    }
}

/// Per-shard pinned-table lists from a placement's table decisions: entry
/// `s` holds the table ids pinned to shard `s` (empty for non-hosts), the
/// shape [`crate::RecMgBuffer::set_pinned_tables`] consumes. Decisions
/// pointing at out-of-range shards are dropped, mirroring
/// [`ShardRouter::install`](crate::ShardRouter)'s bounds discipline.
pub(crate) fn pinned_tables_per_shard(
    decisions: &[TableDecision],
    num_shards: usize,
) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); num_shards];
    for d in decisions {
        if let Some(host) = d.pinned_shard {
            if host < num_shards {
                out[host].push(d.table);
            }
        }
    }
    out
}

/// Least-squares fit of the power-law exponent α from a per-row frequency
/// sample: counts are sorted descending, and the slope of
/// `log(freq) ~ log(rank)` (ranks from 1) is negated and clamped to
/// `[0, 8]`. Fewer than three sampled rows — or a degenerate spread —
/// fit as 0 (uniform).
fn fit_skew(rows: &HashMap<u64, u64>) -> f64 {
    let mut counts: Vec<u64> = rows.values().copied().filter(|&c| c > 0).collect();
    if counts.len() < 3 {
        return 0.0;
    }
    counts.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
    let n = counts.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (i, &c) in counts.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (c as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom <= 0.0 {
        return 0.0;
    }
    let slope = (n * sxy - sx * sy) / denom;
    (-slope).clamp(0.0, 8.0)
}

/// Closed-form hot/cold row boundary: the smallest prefix of a
/// `rows`-row Zipf-α table that captures demand share `q`, from the
/// continuous approximation `Σ_{r≤b} r^(−α) / Σ_{r≤R} r^(−α) ≈
/// (b^(1−α) − 1) / (R^(1−α) − 1)`:
///
/// ```text
/// b = (1 + q · (R^(1−α) − 1))^(1/(1−α))      (α ≠ 1)
/// b = R^q                                     (α → 1)
/// ```
///
/// Monotone non-increasing in α (steeper skew ⇒ smaller hot prefix — the
/// invariant the placement proptests pin) and clamped to `[1, R]`.
///
/// # Panics
///
/// Panics if `rows` is zero, `alpha` is negative/non-finite, or `q` is
/// outside `(0, 1]`.
pub fn hot_boundary(rows: u64, alpha: f64, q: f64) -> u64 {
    assert!(rows > 0, "need at least one row");
    assert!(
        alpha >= 0.0 && alpha.is_finite(),
        "alpha must be finite ≥ 0"
    );
    assert!(q > 0.0 && q <= 1.0, "q must be in (0, 1]");
    let r = rows as f64;
    let b = if (1.0 - alpha).abs() < 1e-9 {
        r.powf(q)
    } else {
        let e = 1.0 - alpha;
        (1.0 + q * (r.powf(e) - 1.0)).powf(1.0 / e)
    };
    (b.ceil() as u64).clamp(1, rows)
}

/// RecShard-style statistical placement over merged [`TableProfile`]s.
///
/// * **Pinning** — tables whose sketched footprint fits `pin_threshold`
///   are pin candidates; smallest-footprint first, they are pinned while
///   the cumulative pinned footprint fits the pin budget
///   (`fast_pin_budget` of the fastest tier, and never more than the
///   capacity left above the base floors). Pinned tables route to their
///   host shard by direct table-id lookup (no hashing) and the host's
///   capacity floor covers the full pinned footprint, so a pinned table
///   is never resized below residency.
/// * **Splitting** — unpinned tables with a fitted skew are split at
///   [`hot_boundary`] for demand share `hot_share`: only the hot prefix
///   contributes to the footprint mass that sizes shard capacities, so
///   the cold tail stops inflating fast-tier demand.
/// * **Sizing** — shard capacities are apportioned from the per-shard
///   footprint mass (pinned footprints on their hosts, capped hot
///   footprints of hash-routed tables spread evenly) by largest-remainder
///   with per-shard floors ([`apportion_with_floors_in_order`]): capacities sum
///   exactly to the topology total, every shard keeps at least `floor`.
///
/// Without profiles ([`PlacementPolicy::place`], or an empty profile
/// slice) it degrades to the even split, so cold starts are identical to
/// [`EvenSplit`](crate::EvenSplit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatisticalPlacement {
    /// Sketched-footprint threshold (rows) below which a table is a pin
    /// candidate.
    pub pin_threshold: u64,
    /// Fraction of the fastest tier's capacity the pinned footprints may
    /// occupy, in `(0, 1]`.
    pub fast_pin_budget: f64,
    /// Base per-shard capacity floor (hosts of pinned tables get this
    /// plus their hosted pinned footprint, since pinned rows are
    /// permanently resident and would otherwise squeeze out hash
    /// traffic).
    pub floor: usize,
    /// Router pin-directory size: only table ids below this can be
    /// pinned or carry a split mark (also the profiler's table-id
    /// capacity via [`PlacementPolicy::table_capacity`]).
    pub max_tables: usize,
    /// Demand share the hot prefix of a split table must capture, in
    /// `(0, 1]`.
    pub hot_share: f64,
}

impl Default for StatisticalPlacement {
    /// Pin tables sketching ≤ 128 rows, half the fast tier for pins,
    /// 8-vector base floor, 64 routable tables, hot prefix sized for 80%
    /// of demand.
    fn default() -> Self {
        StatisticalPlacement {
            pin_threshold: 128,
            fast_pin_budget: 0.5,
            floor: 8,
            max_tables: 64,
            hot_share: 0.8,
        }
    }
}

impl StatisticalPlacement {
    /// Validates the knobs.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `(0, 1]`, the pin threshold is
    /// zero, or `max_tables` is zero.
    pub fn validate(&self) {
        assert!(self.pin_threshold > 0, "pin_threshold must be positive");
        assert!(
            self.fast_pin_budget > 0.0 && self.fast_pin_budget <= 1.0,
            "fast_pin_budget must be in (0, 1]"
        );
        assert!(
            self.hot_share > 0.0 && self.hot_share <= 1.0,
            "hot_share must be in (0, 1]"
        );
        assert!(self.max_tables > 0, "max_tables must be positive");
    }
}

impl PlacementPolicy for StatisticalPlacement {
    fn name(&self) -> &'static str {
        "statistical"
    }

    /// Cold start (no profiles yet): the even split, so a freshly built
    /// system behaves exactly like the default policy until the first
    /// table-aware rebalance.
    fn place(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        _stats: &[TierTraffic],
    ) -> Vec<ShardPlacement> {
        let caps = even_capacities(num_shards, topology.total_capacity());
        let order: Vec<usize> = (0..num_shards).collect();
        assign_tiers(&caps, &order, topology)
    }

    fn table_capacity(&self) -> usize {
        self.max_tables
    }

    fn place_with_tables(
        &self,
        num_shards: usize,
        topology: &TierTopology,
        stats: &[TierTraffic],
        tables: &[TableProfile],
    ) -> TablePlacement {
        self.validate();
        let observed: Vec<&TableProfile> = tables.iter().filter(|p| p.accesses > 0).collect();
        if observed.is_empty() {
            return TablePlacement {
                placements: self.place(num_shards, topology, stats),
                tables: Vec::new(),
            };
        }
        let total = topology.total_capacity();
        let base_floor = self.floor.max(1);
        // Pin budget: a fraction of the fastest tier, and never more than
        // what remains above every shard's base floor — which is what
        // guarantees Σ floors ≤ total below.
        let fast_cap = topology.tier(0).capacity;
        let above_floors = total.saturating_sub(num_shards * base_floor) as u64;
        let budget = (((fast_cap as f64) * self.fast_pin_budget) as u64).min(above_floors);

        // Pin candidates smallest-footprint first (ties to the lower id):
        // pinning k tiny tables beats pinning one table of their combined
        // footprint, because each pin removes a whole table's hashing and
        // slow-tier exposure.
        let mut candidates: Vec<&TableProfile> = observed
            .iter()
            .copied()
            .filter(|p| p.unique_rows <= self.pin_threshold && (p.table as usize) < self.max_tables)
            .collect();
        candidates.sort_by_key(|p| (p.unique_rows, p.table));
        let mut pinned: Vec<&TableProfile> = Vec::new();
        let mut pinned_footprint = 0u64;
        for p in candidates {
            let fp = p.unique_rows.max(1);
            if pinned_footprint + fp > budget {
                break;
            }
            pinned_footprint += fp;
            pinned.push(p);
        }

        // Hosts round-robin over shards, largest pinned footprint first,
        // so hosted floors stay balanced.
        pinned.sort_by_key(|p| (std::cmp::Reverse(p.unique_rows), p.table));
        let mut decisions: Vec<TableDecision> = Vec::new();
        let mut floors = vec![base_floor; num_shards];
        let mut mass = vec![0u64; num_shards];
        let mut hosted = vec![0usize; num_shards];
        let mut hosted_demand = vec![0u64; num_shards];
        for (i, p) in pinned.iter().enumerate() {
            let host = i % num_shards;
            let fp = p.unique_rows.max(1);
            hosted[host] += fp as usize;
            mass[host] += fp;
            hosted_demand[host] += p.accesses;
            decisions.push(TableDecision {
                table: p.table,
                pinned_shard: Some(host),
                hot_rows: 0,
            });
        }
        // Hosts keep the base floor *plus* their hosted footprint: the
        // pinned rows are permanently resident (exempt from eviction), so
        // without the additive headroom the host's hash-routed traffic
        // would thrash in whatever sliver the pins leave over. Σ floors =
        // n·base + Σ hosted ≤ n·base + budget ≤ total, by the budget cap
        // above.
        for (f, &h) in floors.iter_mut().zip(&hosted) {
            *f += h;
        }

        // Hash-routed tables: the capacity-worthy footprint is the hot
        // prefix (the whole footprint when unsplit), spread evenly — the
        // router distributes each table's rows uniformly over shards.
        let pinned_ids: Vec<u32> = pinned.iter().map(|p| p.table).collect();
        for p in &observed {
            if pinned_ids.contains(&p.table) {
                continue;
            }
            let split = p.skew > 0.0 && p.size > self.pin_threshold;
            let hot_rows = if split {
                hot_boundary(p.size, p.skew, self.hot_share)
            } else {
                0
            };
            if split && (p.table as usize) < self.max_tables {
                decisions.push(TableDecision {
                    table: p.table,
                    pinned_shard: None,
                    hot_rows,
                });
            }
            let worthy = if split {
                p.unique_rows.min(hot_rows)
            } else {
                p.unique_rows
            }
            .max(1);
            let per_shard = worthy / num_shards as u64;
            let extra = (worthy % num_shards as u64) as usize;
            for (s, m) in mass.iter_mut().enumerate() {
                *m += per_shard + u64::from(s < extra);
            }
        }
        decisions.sort_by_key(|d| d.table);
        // Tier-fill order: the observed per-shard benefit ranks shards by
        // *pre-pin* traffic, but installing the pins moves every pinned
        // table's (near-resident, hence hit-dominated) traffic off its
        // hash spread and onto its host — so adjust each shard's benefit
        // by exactly that flow before ordering. A host whose pinned
        // demand doesn't beat the displaced shard's margin simply stays
        // where the traffic ranking put it.
        let fast = &topology.tier(0).cost;
        let slow = &topology.tier(topology.num_tiers() - 1).cost;
        let hit_save = slow.hit_ns.saturating_sub(fast.hit_ns) as u128;
        let mut benefit: Vec<u128> = if stats.len() == num_shards {
            stats
                .iter()
                .map(|t| fast_tier_benefit(t, topology))
                .collect()
        } else {
            vec![0; num_shards]
        };
        let pinned_demand: u128 = pinned.iter().map(|p| p.accesses as u128).sum();
        let hash_share = pinned_demand * hit_save / num_shards as u128;
        for (b, &gained) in benefit.iter_mut().zip(&hosted_demand) {
            *b = (*b + gained as u128 * hit_save).saturating_sub(hash_share);
        }
        let mut order: Vec<usize> = (0..num_shards).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(benefit[s]), s));
        TablePlacement {
            placements: apportion_with_floors_in_order(
                num_shards, topology, &order, &mass, &floors,
            ),
            tables: decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(table: u32, row: u64) -> VectorKey {
        VectorKey::new(TableId(table), RowId(row))
    }

    #[test]
    fn profiler_tracks_size_share_and_footprint() {
        let mut p = TableProfiler::new(16);
        // Table 0: 10 distinct rows × 3 passes = 30 accesses. Table 1:
        // 3 distinct rows × 10 passes = 30 accesses. Equal demand shares,
        // very different footprints.
        for _ in 0..3 {
            for row in 0..10u64 {
                p.observe(key(0, row));
            }
        }
        for _ in 0..10 {
            for row in 0..3u64 {
                p.observe(key(1, row));
            }
        }
        // Table ids beyond the profiler capacity are dropped.
        p.observe(key(99, 5));
        let profiles = TableProfiler::merge([&p]);
        assert_eq!(profiles.len(), 2);
        let t0 = &profiles[0];
        assert_eq!(t0.table, 0);
        assert_eq!(t0.size, 10);
        assert_eq!(t0.accesses, 30);
        assert_eq!(t0.unique_rows, 10);
        assert!((t0.demand_share - 0.5).abs() < 1e-9);
        let t1 = &profiles[1];
        assert_eq!(t1.size, 3);
        assert_eq!(t1.unique_rows, 3);
    }

    #[test]
    fn merge_unions_across_shards() {
        let mut a = TableProfiler::new(8);
        let mut b = TableProfiler::new(8);
        for row in 0..20u64 {
            a.observe(key(2, row));
        }
        for row in 10..40u64 {
            b.observe(key(2, row));
        }
        let profiles = TableProfiler::merge([&a, &b]);
        assert_eq!(profiles.len(), 1);
        let t = &profiles[0];
        assert_eq!(t.accesses, 50);
        assert_eq!(t.size, 40);
        assert_eq!(t.unique_rows, 40, "sketch union, not sum");
        assert!((t.demand_share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_fit_separates_uniform_from_power_law() {
        let mut uniform = TableProfiler::new(4);
        let mut skewed = TableProfiler::new(4);
        for i in 0..20_000u64 {
            uniform.observe(key(0, i % 500));
            // Zipf-ish: row r drawn with frequency ∝ 1/(r+1).
            let mut r = 0u64;
            let mut acc = 0.0f64;
            let target =
                ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64) * 6.79; // ≈ H_500
            while acc + 1.0 / (r + 1) as f64 <= target && r < 499 {
                acc += 1.0 / (r + 1) as f64;
                r += 1;
            }
            skewed.observe(key(0, r));
        }
        let u = &TableProfiler::merge([&uniform])[0];
        let s = &TableProfiler::merge([&skewed])[0];
        assert!(u.skew < 0.3, "uniform table fits flat: {}", u.skew);
        assert!(s.skew > 0.6, "zipf table fits steep: {}", s.skew);
    }

    #[test]
    fn hot_boundary_shapes() {
        // Uniform: the hot prefix is just q of the table.
        let b0 = hot_boundary(1_000_000, 0.0, 0.8);
        assert!((b0 as f64 - 800_000.0).abs() < 2.0);
        // Strong skew: tiny prefix.
        let b2 = hot_boundary(1_000_000, 2.0, 0.8);
        assert!(b2 < 100, "α=2 hot prefix is tiny: {b2}");
        // α = 1 branch: R^q.
        let b1 = hot_boundary(1_000_000, 1.0, 0.5);
        assert!((b1 as f64 - 1_000.0).abs() < 2.0);
        // Clamped to [1, rows].
        assert_eq!(hot_boundary(1, 3.0, 0.5), 1);
        assert!(hot_boundary(100, 0.0, 1.0) <= 100);
    }

    #[test]
    fn hot_boundary_monotone_in_skew() {
        let mut last = u64::MAX;
        for step in 0..40 {
            let alpha = step as f64 * 0.1;
            let b = hot_boundary(10_000_000, alpha, 0.8);
            assert!(b <= last, "boundary must not grow with skew");
            last = b;
        }
    }

    fn profile(table: u32, size: u64, accesses: u64, skew: f64, unique: u64) -> TableProfile {
        TableProfile {
            table,
            size,
            accesses,
            demand_share: 0.0,
            skew,
            unique_rows: unique,
        }
    }

    #[test]
    fn statistical_pins_tiny_tables_and_splits_big_ones() {
        let policy = StatisticalPlacement::default();
        let topo = TierTopology::two_tier(256, 256);
        let tables = vec![
            profile(0, 4, 1000, 0.0, 4),
            profile(1, 50, 1000, 0.0, 50),
            profile(2, 1_000_000, 1000, 1.5, 400_000),
        ];
        let tp = policy.place_with_tables(4, &topo, &[], &tables);
        assert_eq!(tp.placements.len(), 4);
        assert_eq!(tp.placements.iter().map(|p| p.capacity).sum::<usize>(), 512);
        let pins: Vec<&TableDecision> = tp
            .tables
            .iter()
            .filter(|d| d.pinned_shard.is_some())
            .collect();
        assert_eq!(pins.len(), 2, "both tiny tables pinned: {:?}", tp.tables);
        let split = tp
            .tables
            .iter()
            .find(|d| d.table == 2)
            .expect("big table split");
        assert_eq!(split.pinned_shard, None);
        assert!(split.hot_rows > 0 && split.hot_rows < 1_000_000);
        // Host shards keep at least the hosted pinned footprint.
        for d in &pins {
            let host = d.pinned_shard.unwrap();
            let fp = tables
                .iter()
                .find(|p| p.table == d.table)
                .unwrap()
                .unique_rows;
            assert!(tp.placements[host].capacity as u64 >= fp);
        }
    }

    #[test]
    fn statistical_without_profiles_is_even_split() {
        let policy = StatisticalPlacement::default();
        let topo = TierTopology::uniform(64);
        let p = policy.place(4, &topo, &[]);
        for s in &p {
            assert_eq!(s.capacity, 16);
            assert_eq!(s.tier, 0);
        }
        let tp = policy.place_with_tables(4, &topo, &[], &[]);
        assert_eq!(tp.placements, p);
        assert!(tp.tables.is_empty());
        assert_eq!(policy.name(), "statistical");
        assert_eq!(policy.table_capacity(), 64);
    }

    #[test]
    fn pin_budget_bounds_pins() {
        // Fast tier of 64, budget 0.5 → 32 rows of pins; three 20-row
        // tables: only one fits.
        let policy = StatisticalPlacement {
            pin_threshold: 30,
            fast_pin_budget: 0.5,
            ..StatisticalPlacement::default()
        };
        let topo = TierTopology::two_tier(64, 512);
        let tables = vec![
            profile(0, 20, 100, 0.0, 20),
            profile(1, 20, 100, 0.0, 20),
            profile(2, 20, 100, 0.0, 20),
        ];
        let tp = policy.place_with_tables(2, &topo, &[], &tables);
        let pins = tp
            .tables
            .iter()
            .filter(|d| d.pinned_shard.is_some())
            .count();
        assert_eq!(pins, 1, "32-row budget fits one 20-row table");
    }
}
