//! Index codecs: mapping embedding-vector keys to a continuous code space.
//!
//! The prefetch model's head emits *continuous* values so that the Chamfer
//! loss (Eq. 5) is differentiable; a codec defines the correspondence
//! between those values and concrete vector indices. Encoding compresses
//! billions of discrete indices into `[0, 1]`; decoding snaps a predicted
//! code to the nearest known vector.
//!
//! Two codecs are provided, ablated by `exp_ablate_codec`:
//!
//! * [`FrequencyRankCodec`] (default) — orders vectors by access frequency,
//!   so popular vectors occupy the low end of the code space. Nearby codes
//!   then mean "similar popularity", which concentrates model mass and is
//!   the search-space-reduction device that makes prediction tractable.
//! * [`GlobalIdCodec`] — orders vectors by `(table, row)`; nearby codes
//!   mean "same table, nearby rows".

use std::collections::HashMap;

use recmg_trace::{TraceStats, VectorKey};

/// Encodes keys to `[0, 1]` codes and decodes codes back to keys.
pub trait IndexCodec {
    /// The code of `key`, if the key is in the codec's vocabulary.
    fn encode(&self, key: VectorKey) -> Option<f32>;

    /// The known key nearest to `code`.
    fn decode(&self, code: f32) -> Option<VectorKey>;

    /// Vocabulary size.
    fn len(&self) -> usize;

    /// Whether the vocabulary is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn code_of(rank: usize, n: usize) -> f32 {
    if n <= 1 {
        0.0
    } else {
        rank as f32 / (n - 1) as f32
    }
}

fn rank_of_code(code: f32, n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        ((code.clamp(0.0, 1.0) * (n - 1) as f32).round()) as usize
    }
}

/// Frequency-ordered codec (rank 0 = most accessed vector).
#[derive(Debug, Clone)]
pub struct FrequencyRankCodec {
    by_rank: Vec<VectorKey>,
    rank: HashMap<VectorKey, usize>,
}

impl FrequencyRankCodec {
    /// Builds the codec from trace statistics (vocabulary = every vector
    /// the training trace touched, ordered by popularity).
    pub fn from_stats(stats: &TraceStats) -> Self {
        let by_rank: Vec<VectorKey> = stats.by_popularity().iter().map(|&(k, _)| k).collect();
        let rank = by_rank.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        FrequencyRankCodec { by_rank, rank }
    }

    /// Builds directly from an access slice.
    pub fn from_accesses(accesses: &[VectorKey]) -> Self {
        let trace = recmg_trace::Trace::from_parts(
            accesses.to_vec(),
            vec![accesses.len()],
            u16::MAX as u32,
        );
        Self::from_stats(&TraceStats::compute(&trace))
    }
}

impl IndexCodec for FrequencyRankCodec {
    fn encode(&self, key: VectorKey) -> Option<f32> {
        self.rank.get(&key).map(|&r| code_of(r, self.by_rank.len()))
    }

    fn decode(&self, code: f32) -> Option<VectorKey> {
        if self.by_rank.is_empty() {
            return None;
        }
        Some(self.by_rank[rank_of_code(code, self.by_rank.len())])
    }

    fn len(&self) -> usize {
        self.by_rank.len()
    }
}

/// Key-ordered codec (rank = position in sorted `(table, row)` order).
#[derive(Debug, Clone)]
pub struct GlobalIdCodec {
    sorted: Vec<VectorKey>,
    rank: HashMap<VectorKey, usize>,
}

impl GlobalIdCodec {
    /// Builds the codec from the unique keys of an access slice.
    pub fn from_accesses(accesses: &[VectorKey]) -> Self {
        let mut sorted: Vec<VectorKey> = accesses.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let rank = sorted.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        GlobalIdCodec { sorted, rank }
    }
}

impl IndexCodec for GlobalIdCodec {
    fn encode(&self, key: VectorKey) -> Option<f32> {
        self.rank.get(&key).map(|&r| code_of(r, self.sorted.len()))
    }

    fn decode(&self, code: f32) -> Option<VectorKey> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(self.sorted[rank_of_code(code, self.sorted.len())])
    }

    fn len(&self) -> usize {
        self.sorted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(t: u32, r: u64) -> VectorKey {
        VectorKey::new(TableId(t), RowId(r))
    }

    fn sample_accesses() -> Vec<VectorKey> {
        // key(0,1) ×3, key(1,5) ×2, key(0,9) ×1
        vec![
            key(0, 1),
            key(1, 5),
            key(0, 1),
            key(0, 9),
            key(1, 5),
            key(0, 1),
        ]
    }

    #[test]
    fn frequency_codec_roundtrip() {
        let c = FrequencyRankCodec::from_accesses(&sample_accesses());
        assert_eq!(c.len(), 3);
        for k in [key(0, 1), key(1, 5), key(0, 9)] {
            let code = c.encode(k).expect("in vocab");
            assert_eq!(c.decode(code), Some(k));
        }
    }

    #[test]
    fn frequency_codec_orders_by_popularity() {
        let c = FrequencyRankCodec::from_accesses(&sample_accesses());
        let hot = c.encode(key(0, 1)).expect("hot");
        let cold = c.encode(key(0, 9)).expect("cold");
        assert!(hot < cold, "hot {hot} should precede cold {cold}");
        assert_eq!(hot, 0.0);
        assert_eq!(cold, 1.0);
    }

    #[test]
    fn decode_snaps_to_nearest() {
        let c = FrequencyRankCodec::from_accesses(&sample_accesses());
        // ranks: 0, 0.5, 1.0 → 0.3 snaps to rank ~0.6 → rank 1
        assert_eq!(c.decode(0.3), Some(key(1, 5)));
        assert_eq!(c.decode(-5.0), c.decode(0.0)); // clamped
        assert_eq!(c.decode(9.0), c.decode(1.0));
    }

    #[test]
    fn global_codec_orders_by_key() {
        let c = GlobalIdCodec::from_accesses(&sample_accesses());
        let a = c.encode(key(0, 1)).expect("present");
        let b = c.encode(key(0, 9)).expect("present");
        let d = c.encode(key(1, 5)).expect("present");
        assert!(a < b && b < d);
    }

    #[test]
    fn unknown_key_encodes_none() {
        let c = FrequencyRankCodec::from_accesses(&sample_accesses());
        assert_eq!(c.encode(key(7, 7)), None);
    }

    #[test]
    fn single_key_codec() {
        let c = GlobalIdCodec::from_accesses(&[key(0, 1)]);
        assert_eq!(c.encode(key(0, 1)), Some(0.0));
        assert_eq!(c.decode(0.7), Some(key(0, 1)));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
