//! Multi-threaded CPU model serving (paper §VI-C, Fig. 7).
//!
//! The paper maximizes thread-level parallelism by "wrapping up a batch of
//! DLRM inference requests into n inference requests, and sending them to
//! CPU (where n is the number of idle CPU cores). Each request is served by
//! one thread" — one thread per request, not many threads per request.
//! Fig. 7 shows near-linear throughput scaling, which is what justifies
//! that choice; [`measure_throughput`] reproduces that measurement with
//! compiled (tape-free) model snapshots shared read-only across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use recmg_trace::{RowId, TableId, VectorKey};

use crate::caching_model::FastCachingModel;
use crate::prefetch_model::FastPrefetchModel;

/// One point of the Fig. 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Model-inference throughput in indices (input tokens) per second.
    pub indices_per_sec: f64,
    /// Requests served.
    pub requests: usize,
}

/// Shape of the synthetic request stream used by the throughput
/// measurements (previously hard-coded to 13 tables × 997 rows).
///
/// `skew` concentrates rows toward low row-ids: `0.0` keeps the uniform
/// stride pattern, larger values map the row space through `x^(1+skew)`,
/// approximating the paper's power-law access popularity so sweeps can vary
/// both table count and key skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of embedding tables keys are drawn from.
    pub num_tables: u32,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Row-popularity skew exponent (`>= 0`).
    pub skew: f64,
}

impl Default for WorkloadSpec {
    /// The historical workload: 13 tables, 997 rows, no skew.
    fn default() -> Self {
        WorkloadSpec {
            num_tables: 13,
            rows_per_table: 997,
            skew: 0.0,
        }
    }
}

impl WorkloadSpec {
    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `skew` is negative/non-finite.
    pub fn validate(&self) {
        assert!(self.num_tables > 0, "need at least one table");
        assert!(self.rows_per_table > 0, "need at least one row");
        assert!(
            self.skew >= 0.0 && self.skew.is_finite(),
            "skew must be non-negative and finite"
        );
    }

    /// Deterministic key for position `i` of request `r`.
    pub fn key(&self, r: usize, i: usize) -> VectorKey {
        let table = TableId((r % self.num_tables as usize) as u32);
        let raw = ((r as u64) * 31 + (i as u64) * 7) % self.rows_per_table;
        let row = if self.skew == 0.0 {
            raw
        } else {
            // Power-map the unit interval: mass concentrates at low rows.
            let u = raw as f64 / self.rows_per_table as f64;
            let mapped = u.powf(1.0 + self.skew);
            ((mapped * self.rows_per_table as f64) as u64).min(self.rows_per_table - 1)
        };
        VectorKey::new(table, RowId(row))
    }

    /// Pre-generates `requests` request inputs of `input_len` keys each.
    pub fn requests(&self, requests: usize, input_len: usize) -> Vec<Vec<VectorKey>> {
        (0..requests)
            .map(|r| (0..input_len).map(|i| self.key(r, i)).collect())
            .collect()
    }

    /// Cartesian sweep grid over table counts × skews (at a fixed
    /// `rows_per_table`) — the workload matrix the serving bench records
    /// instead of a single point.
    pub fn grid(table_counts: &[u32], skews: &[f64], rows_per_table: u64) -> Vec<WorkloadSpec> {
        table_counts
            .iter()
            .flat_map(|&num_tables| {
                skews.iter().map(move |&skew| WorkloadSpec {
                    num_tables,
                    rows_per_table,
                    skew,
                })
            })
            .collect()
    }
}

/// Measures joint caching+prefetch model serving throughput with
/// `threads` workers, each serving whole requests (chunks) from a shared
/// queue, over the default [`WorkloadSpec`].
///
/// # Panics
///
/// Panics if `threads` or `requests` is zero or `input_len` is zero.
pub fn measure_throughput(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    threads: usize,
    requests: usize,
) -> ThroughputPoint {
    measure_throughput_with(
        caching,
        prefetch,
        input_len,
        threads,
        requests,
        &WorkloadSpec::default(),
    )
}

/// [`measure_throughput`] over an explicit [`WorkloadSpec`].
///
/// # Panics
///
/// Panics if `threads` or `requests` is zero, `input_len` is zero, or the
/// spec is invalid.
pub fn measure_throughput_with(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    threads: usize,
    requests: usize,
    workload: &WorkloadSpec,
) -> ThroughputPoint {
    assert!(threads > 0, "need at least one thread");
    assert!(requests > 0, "need at least one request");
    assert!(input_len > 0, "input_len must be positive");
    workload.validate();
    // Pre-generate request inputs (excluded from timing).
    let inputs = workload.requests(requests, input_len);
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let keys = &inputs[i];
                let bits = caching.predict(keys);
                let codes = prefetch.codes(keys);
                // Keep results observable so the work cannot be elided.
                std::hint::black_box((bits, codes));
            });
        }
    })
    .expect("serving threads do not panic");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    ThroughputPoint {
        threads,
        indices_per_sec: (requests * input_len) as f64 / secs,
        requests,
    }
}

/// Sweeps thread counts, producing the Fig. 7 series.
pub fn throughput_sweep(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    thread_counts: &[usize],
    requests_per_point: usize,
) -> Vec<ThroughputPoint> {
    thread_counts
        .iter()
        .map(|&t| measure_throughput(caching, prefetch, input_len, t, requests_per_point))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;

    fn compiled() -> (FastCachingModel, FastPrefetchModel) {
        let cfg = RecMgConfig::tiny();
        (
            CachingModel::new(&cfg).compile(),
            PrefetchModel::new(&cfg).compile(),
        )
    }

    #[test]
    fn throughput_is_positive() {
        let (cm, pm) = compiled();
        let p = measure_throughput(&cm, &pm, 8, 1, 50);
        assert!(p.indices_per_sec > 0.0);
        assert_eq!(p.requests, 50);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn more_threads_not_catastrophically_slower() {
        // CI machines vary; we only assert that 4 threads achieve at least
        // the single-thread throughput (Fig. 7 shows ~linear gains).
        let (cm, pm) = compiled();
        let one = measure_throughput(&cm, &pm, 15, 1, 1500);
        let four = measure_throughput(&cm, &pm, 15, 4, 1500);
        assert!(
            four.indices_per_sec > one.indices_per_sec * 0.7,
            "1t {} vs 4t {}",
            one.indices_per_sec,
            four.indices_per_sec
        );
    }

    #[test]
    fn sweep_covers_requested_counts() {
        let (cm, pm) = compiled();
        let pts = throughput_sweep(&cm, &pm, 8, &[1, 2], 40);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].threads, 1);
        assert_eq!(pts[1].threads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (cm, pm) = compiled();
        let _ = measure_throughput(&cm, &pm, 8, 0, 1);
    }

    #[test]
    fn workload_spec_respects_dimensions() {
        let spec = WorkloadSpec {
            num_tables: 3,
            rows_per_table: 50,
            skew: 0.0,
        };
        for r in 0..40 {
            for i in 0..8 {
                let k = spec.key(r, i);
                assert!(k.table().0 < 3);
                assert!(k.row().0 < 50);
            }
        }
    }

    #[test]
    fn workload_skew_concentrates_rows() {
        let flat = WorkloadSpec {
            num_tables: 2,
            rows_per_table: 1000,
            skew: 0.0,
        };
        let skewed = WorkloadSpec { skew: 2.0, ..flat };
        let mean = |s: &WorkloadSpec| {
            let ks = s.requests(200, 10);
            let (sum, n) = ks
                .iter()
                .flatten()
                .fold((0u64, 0u64), |(s, n), k| (s + k.row().0, n + 1));
            sum as f64 / n as f64
        };
        assert!(
            mean(&skewed) < mean(&flat),
            "skew should lower the mean row id"
        );
    }

    #[test]
    fn custom_workload_throughput_runs() {
        let (cm, pm) = compiled();
        let spec = WorkloadSpec {
            num_tables: 4,
            rows_per_table: 64,
            skew: 1.0,
        };
        let p = measure_throughput_with(&cm, &pm, 8, 1, 30, &spec);
        assert!(p.indices_per_sec > 0.0);
        assert_eq!(p.requests, 30);
    }

    #[test]
    fn grid_is_a_cartesian_product() {
        let grid = WorkloadSpec::grid(&[4, 13], &[0.0, 2.0], 997);
        assert_eq!(grid.len(), 4);
        for spec in &grid {
            spec.validate();
            assert_eq!(spec.rows_per_table, 997);
        }
        assert!(grid.iter().any(|s| s.num_tables == 4 && s.skew == 0.0));
        assert!(grid.iter().any(|s| s.num_tables == 13 && s.skew == 2.0));
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn zero_tables_panics() {
        let spec = WorkloadSpec {
            num_tables: 0,
            rows_per_table: 1,
            skew: 0.0,
        };
        spec.validate();
    }
}
