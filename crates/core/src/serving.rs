//! Multi-threaded CPU model serving (paper §VI-C, Fig. 7).
//!
//! The paper maximizes thread-level parallelism by "wrapping up a batch of
//! DLRM inference requests into n inference requests, and sending them to
//! CPU (where n is the number of idle CPU cores). Each request is served by
//! one thread" — one thread per request, not many threads per request.
//! Fig. 7 shows near-linear throughput scaling, which is what justifies
//! that choice; [`measure_throughput`] reproduces that measurement with
//! compiled (tape-free) model snapshots shared read-only across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use recmg_trace::{RowId, TableId, VectorKey};

use crate::caching_model::FastCachingModel;
use crate::prefetch_model::FastPrefetchModel;

/// One point of the Fig. 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Model-inference throughput in indices (input tokens) per second.
    pub indices_per_sec: f64,
    /// Requests served.
    pub requests: usize,
}

/// Measures joint caching+prefetch model serving throughput with
/// `threads` workers, each serving whole requests (chunks) from a shared
/// queue.
///
/// # Panics
///
/// Panics if `threads` or `requests` is zero or `input_len` is zero.
pub fn measure_throughput(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    threads: usize,
    requests: usize,
) -> ThroughputPoint {
    assert!(threads > 0, "need at least one thread");
    assert!(requests > 0, "need at least one request");
    assert!(input_len > 0, "input_len must be positive");
    // Pre-generate request inputs (excluded from timing).
    let inputs: Vec<Vec<VectorKey>> = (0..requests)
        .map(|r| {
            (0..input_len)
                .map(|i| {
                    VectorKey::new(
                        TableId((r % 13) as u32),
                        RowId(((r * 31 + i * 7) % 997) as u64),
                    )
                })
                .collect()
        })
        .collect();
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let keys = &inputs[i];
                let bits = caching.predict(keys);
                let codes = prefetch.codes(keys);
                // Keep results observable so the work cannot be elided.
                std::hint::black_box((bits, codes));
            });
        }
    })
    .expect("serving threads do not panic");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    ThroughputPoint {
        threads,
        indices_per_sec: (requests * input_len) as f64 / secs,
        requests,
    }
}

/// Sweeps thread counts, producing the Fig. 7 series.
pub fn throughput_sweep(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    thread_counts: &[usize],
    requests_per_point: usize,
) -> Vec<ThroughputPoint> {
    thread_counts
        .iter()
        .map(|&t| measure_throughput(caching, prefetch, input_len, t, requests_per_point))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;

    fn compiled() -> (FastCachingModel, FastPrefetchModel) {
        let cfg = RecMgConfig::tiny();
        (
            CachingModel::new(&cfg).compile(),
            PrefetchModel::new(&cfg).compile(),
        )
    }

    #[test]
    fn throughput_is_positive() {
        let (cm, pm) = compiled();
        let p = measure_throughput(&cm, &pm, 8, 1, 50);
        assert!(p.indices_per_sec > 0.0);
        assert_eq!(p.requests, 50);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn more_threads_not_catastrophically_slower() {
        // CI machines vary; we only assert that 4 threads achieve at least
        // the single-thread throughput (Fig. 7 shows ~linear gains).
        let (cm, pm) = compiled();
        let one = measure_throughput(&cm, &pm, 15, 1, 1500);
        let four = measure_throughput(&cm, &pm, 15, 4, 1500);
        assert!(
            four.indices_per_sec > one.indices_per_sec * 0.7,
            "1t {} vs 4t {}",
            one.indices_per_sec,
            four.indices_per_sec
        );
    }

    #[test]
    fn sweep_covers_requested_counts() {
        let (cm, pm) = compiled();
        let pts = throughput_sweep(&cm, &pm, 8, &[1, 2], 40);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].threads, 1);
        assert_eq!(pts[1].threads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (cm, pm) = compiled();
        let _ = measure_throughput(&cm, &pm, 8, 0, 1);
    }
}
