//! Multi-threaded CPU model serving (paper §VI-C, Fig. 7).
//!
//! The paper maximizes thread-level parallelism by "wrapping up a batch of
//! DLRM inference requests into n inference requests, and sending them to
//! CPU (where n is the number of idle CPU cores). Each request is served by
//! one thread" — one thread per request, not many threads per request.
//! Fig. 7 shows near-linear throughput scaling, which is what justifies
//! that choice; [`measure_throughput`] reproduces that measurement with
//! compiled (tape-free) model snapshots shared read-only across threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use recmg_trace::{RowId, TableId, VectorKey};

use crate::caching_model::FastCachingModel;
use crate::prefetch_model::FastPrefetchModel;

/// One point of the Fig. 7 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Model-inference throughput in indices (input tokens) per second.
    pub indices_per_sec: f64,
    /// Requests served.
    pub requests: usize,
}

/// Shape of the synthetic request stream used by the throughput
/// measurements (previously hard-coded to 13 tables × 997 rows).
///
/// `skew` concentrates rows toward low row-ids: `0.0` keeps the uniform
/// stride pattern, larger values map the row space through `x^(1+skew)`,
/// approximating the paper's power-law access popularity so sweeps can vary
/// both table count and key skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of embedding tables keys are drawn from.
    pub num_tables: u32,
    /// Rows per table.
    pub rows_per_table: u64,
    /// Row-popularity skew exponent (`>= 0`).
    pub skew: f64,
}

impl Default for WorkloadSpec {
    /// The historical workload: 13 tables, 997 rows, no skew.
    fn default() -> Self {
        WorkloadSpec {
            num_tables: 13,
            rows_per_table: 997,
            skew: 0.0,
        }
    }
}

impl WorkloadSpec {
    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `skew` is negative/non-finite.
    pub fn validate(&self) {
        assert!(self.num_tables > 0, "need at least one table");
        assert!(self.rows_per_table > 0, "need at least one row");
        assert!(
            self.skew >= 0.0 && self.skew.is_finite(),
            "skew must be non-negative and finite"
        );
    }

    /// Deterministic key for position `i` of request `r`.
    pub fn key(&self, r: usize, i: usize) -> VectorKey {
        let table = TableId((r % self.num_tables as usize) as u32);
        let raw = ((r as u64) * 31 + (i as u64) * 7) % self.rows_per_table;
        let row = if self.skew == 0.0 {
            raw
        } else {
            // Power-map the unit interval: mass concentrates at low rows.
            let u = raw as f64 / self.rows_per_table as f64;
            let mapped = u.powf(1.0 + self.skew);
            ((mapped * self.rows_per_table as f64) as u64).min(self.rows_per_table - 1)
        };
        VectorKey::new(table, RowId(row))
    }

    /// Pre-generates `requests` request inputs of `input_len` keys each.
    pub fn requests(&self, requests: usize, input_len: usize) -> Vec<Vec<VectorKey>> {
        (0..requests)
            .map(|r| (0..input_len).map(|i| self.key(r, i)).collect())
            .collect()
    }

    /// Cartesian sweep grid over table counts × skews (at a fixed
    /// `rows_per_table`) — the workload matrix the serving bench records
    /// instead of a single point.
    pub fn grid(table_counts: &[u32], skews: &[f64], rows_per_table: u64) -> Vec<WorkloadSpec> {
        table_counts
            .iter()
            .flat_map(|&num_tables| {
                skews.iter().map(move |&skew| WorkloadSpec {
                    num_tables,
                    rows_per_table,
                    skew,
                })
            })
            .collect()
    }
}

/// Heterogeneous-table workload: per-table sizes and per-table Zipf-style
/// skews, the `table_size_array` shape real DLRM configs use (the libai
/// config spans 3 to 39.9M rows across 26 sparse features).
///
/// Unlike [`WorkloadSpec`] (uniform tables, one global skew), every table
/// here has its own row count and its own popularity exponent, which is
/// what makes statistical placement pay: a 3-row table and a 39.9M-row
/// table receive the same demand share, so the tiny table's per-row heat
/// is ~7 orders of magnitude higher — exactly the signal
/// [`crate::StatisticalPlacement`] pins on.
#[derive(Debug, Clone, PartialEq)]
pub struct TableArraySpec {
    /// Rows per table (`sizes.len()` tables; table `t` has `sizes[t]`
    /// rows).
    pub sizes: Vec<u64>,
    /// Per-table row-popularity skew exponents (same length as `sizes`).
    pub skews: Vec<f64>,
}

impl TableArraySpec {
    /// The libai production table-size array: 26 sparse features spanning
    /// 3 to 39,979,771 rows (~7 orders of magnitude). Skews follow the
    /// DLRM pattern that large id-spaces are strongly power-law while
    /// tiny categorical tables are near-uniform: each table's exponent
    /// grows with its size decade.
    pub fn libai() -> Self {
        let sizes: Vec<u64> = vec![
            39_884_406, 39_043, 17_289, 7_420, 20_263, 3, 7_120, 1_543, 63, 38_532_951, 2_953_546,
            403_346, 10, 2_208, 11_938, 155, 4, 976, 14, 39_979_771, 25_641_295, 39_664_984,
            585_935, 12_972, 108, 36,
        ];
        let skews = sizes.iter().map(|&s| Self::skew_for_size(s)).collect();
        TableArraySpec { sizes, skews }
    }

    /// Log-spaced synthetic array: `num_tables` tables with sizes running
    /// geometrically from `min_rows` to `max_rows`, skews assigned by
    /// size decade as in [`TableArraySpec::libai`]. Varying the
    /// `min_rows..max_rows` span varies the table-size skew of the whole
    /// array — the knob the `statistical_placement` bench sweeps.
    pub fn geometric(num_tables: u32, min_rows: u64, max_rows: u64) -> Self {
        assert!(num_tables > 0, "need at least one table");
        assert!(min_rows > 0 && max_rows >= min_rows, "bad size range");
        let n = num_tables as usize;
        let (lo, hi) = ((min_rows as f64).ln(), (max_rows as f64).ln());
        let sizes: Vec<u64> = (0..n)
            .map(|t| {
                let frac = if n == 1 {
                    0.0
                } else {
                    t as f64 / (n - 1) as f64
                };
                (lo + frac * (hi - lo)).exp().round().max(1.0) as u64
            })
            .collect();
        let skews = sizes.iter().map(|&s| Self::skew_for_size(s)).collect();
        TableArraySpec { sizes, skews }
    }

    /// Default skew exponent for a table of `rows` rows: near-uniform for
    /// tiny categorical tables, strongly power-law for huge id tables
    /// (about half the size's decade count, capped at 3).
    fn skew_for_size(rows: u64) -> f64 {
        (0.5 * (rows as f64).log10()).clamp(0.0, 3.0)
    }

    /// Number of tables.
    pub fn num_tables(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are empty or length-mismatched, a size is
    /// zero, or a skew is negative/non-finite.
    pub fn validate(&self) {
        assert!(!self.sizes.is_empty(), "need at least one table");
        assert_eq!(
            self.sizes.len(),
            self.skews.len(),
            "sizes and skews must align"
        );
        assert!(self.sizes.iter().all(|&s| s > 0), "table sizes must be > 0");
        assert!(
            self.skews.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "skews must be non-negative and finite"
        );
    }

    /// Deterministic key for position `i` of request `r`: position `i`
    /// draws from table `(r + i) mod T` (every table receives an equal
    /// demand share, so per-row heat scales inversely with table size),
    /// with the row drawn from that table's own power-law.
    pub fn key(&self, r: usize, i: usize) -> VectorKey {
        let n = self.sizes.len();
        let t = (r + i) % n;
        let rows = self.sizes[t];
        let skew = self.skews[t];
        // Avalanche the (request, position) pair so row draws are
        // uniform before the power-map, independent across tables.
        let mut h = (r as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((i as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let raw = h % rows;
        let row = if skew == 0.0 {
            raw
        } else {
            let u = raw as f64 / rows as f64;
            ((u.powf(1.0 + skew) * rows as f64) as u64).min(rows - 1)
        };
        VectorKey::new(TableId(t as u32), RowId(row))
    }

    /// Pre-generates `requests` request inputs of `input_len` keys each.
    pub fn requests(&self, requests: usize, input_len: usize) -> Vec<Vec<VectorKey>> {
        (0..requests)
            .map(|r| (0..input_len).map(|i| self.key(r, i)).collect())
            .collect()
    }
}

/// Measures joint caching+prefetch model serving throughput with
/// `threads` workers, each serving whole requests (chunks) from a shared
/// queue, over the default [`WorkloadSpec`].
///
/// # Panics
///
/// Panics if `threads` or `requests` is zero or `input_len` is zero.
pub fn measure_throughput(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    threads: usize,
    requests: usize,
) -> ThroughputPoint {
    measure_throughput_with(
        caching,
        prefetch,
        input_len,
        threads,
        requests,
        &WorkloadSpec::default(),
    )
}

/// [`measure_throughput`] over an explicit [`WorkloadSpec`].
///
/// # Panics
///
/// Panics if `threads` or `requests` is zero, `input_len` is zero, or the
/// spec is invalid.
pub fn measure_throughput_with(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    threads: usize,
    requests: usize,
    workload: &WorkloadSpec,
) -> ThroughputPoint {
    assert!(threads > 0, "need at least one thread");
    assert!(requests > 0, "need at least one request");
    assert!(input_len > 0, "input_len must be positive");
    workload.validate();
    // Pre-generate request inputs (excluded from timing).
    let inputs = workload.requests(requests, input_len);
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let keys = &inputs[i];
                let bits = caching.predict(keys);
                let codes = prefetch.codes(keys);
                // Keep results observable so the work cannot be elided.
                std::hint::black_box((bits, codes));
            });
        }
    })
    .expect("serving threads do not panic");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    ThroughputPoint {
        threads,
        indices_per_sec: (requests * input_len) as f64 / secs,
        requests,
    }
}

/// Sweeps thread counts, producing the Fig. 7 series.
pub fn throughput_sweep(
    caching: &FastCachingModel,
    prefetch: &FastPrefetchModel,
    input_len: usize,
    thread_counts: &[usize],
    requests_per_point: usize,
) -> Vec<ThroughputPoint> {
    thread_counts
        .iter()
        .map(|&t| measure_throughput(caching, prefetch, input_len, t, requests_per_point))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;

    fn compiled() -> (FastCachingModel, FastPrefetchModel) {
        let cfg = RecMgConfig::tiny();
        (
            CachingModel::new(&cfg).compile(),
            PrefetchModel::new(&cfg).compile(),
        )
    }

    #[test]
    fn throughput_is_positive() {
        let (cm, pm) = compiled();
        let p = measure_throughput(&cm, &pm, 8, 1, 50);
        assert!(p.indices_per_sec > 0.0);
        assert_eq!(p.requests, 50);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn more_threads_not_catastrophically_slower() {
        // CI machines vary; we only assert that 4 threads achieve at least
        // the single-thread throughput (Fig. 7 shows ~linear gains).
        let (cm, pm) = compiled();
        let one = measure_throughput(&cm, &pm, 15, 1, 1500);
        let four = measure_throughput(&cm, &pm, 15, 4, 1500);
        assert!(
            four.indices_per_sec > one.indices_per_sec * 0.7,
            "1t {} vs 4t {}",
            one.indices_per_sec,
            four.indices_per_sec
        );
    }

    #[test]
    fn sweep_covers_requested_counts() {
        let (cm, pm) = compiled();
        let pts = throughput_sweep(&cm, &pm, 8, &[1, 2], 40);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].threads, 1);
        assert_eq!(pts[1].threads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let (cm, pm) = compiled();
        let _ = measure_throughput(&cm, &pm, 8, 0, 1);
    }

    #[test]
    fn workload_spec_respects_dimensions() {
        let spec = WorkloadSpec {
            num_tables: 3,
            rows_per_table: 50,
            skew: 0.0,
        };
        for r in 0..40 {
            for i in 0..8 {
                let k = spec.key(r, i);
                assert!(k.table().0 < 3);
                assert!(k.row().0 < 50);
            }
        }
    }

    #[test]
    fn workload_skew_concentrates_rows() {
        let flat = WorkloadSpec {
            num_tables: 2,
            rows_per_table: 1000,
            skew: 0.0,
        };
        let skewed = WorkloadSpec { skew: 2.0, ..flat };
        let mean = |s: &WorkloadSpec| {
            let ks = s.requests(200, 10);
            let (sum, n) = ks
                .iter()
                .flatten()
                .fold((0u64, 0u64), |(s, n), k| (s + k.row().0, n + 1));
            sum as f64 / n as f64
        };
        assert!(
            mean(&skewed) < mean(&flat),
            "skew should lower the mean row id"
        );
    }

    #[test]
    fn custom_workload_throughput_runs() {
        let (cm, pm) = compiled();
        let spec = WorkloadSpec {
            num_tables: 4,
            rows_per_table: 64,
            skew: 1.0,
        };
        let p = measure_throughput_with(&cm, &pm, 8, 1, 30, &spec);
        assert!(p.indices_per_sec > 0.0);
        assert_eq!(p.requests, 30);
    }

    #[test]
    fn grid_is_a_cartesian_product() {
        let grid = WorkloadSpec::grid(&[4, 13], &[0.0, 2.0], 997);
        assert_eq!(grid.len(), 4);
        for spec in &grid {
            spec.validate();
            assert_eq!(spec.rows_per_table, 997);
        }
        assert!(grid.iter().any(|s| s.num_tables == 4 && s.skew == 0.0));
        assert!(grid.iter().any(|s| s.num_tables == 13 && s.skew == 2.0));
    }

    #[test]
    fn libai_array_spans_seven_orders() {
        let spec = TableArraySpec::libai();
        spec.validate();
        assert_eq!(spec.num_tables(), 26);
        let min = *spec.sizes.iter().min().unwrap();
        let max = *spec.sizes.iter().max().unwrap();
        assert_eq!(min, 3);
        assert_eq!(max, 39_979_771);
        assert!((max as f64 / min as f64).log10() >= 6.0, "≥7 size decades");
        // Tiny tables near-uniform, huge tables strongly skewed.
        let tiny = spec.sizes.iter().position(|&s| s == 3).unwrap();
        let huge = spec.sizes.iter().position(|&s| s == 39_979_771).unwrap();
        assert!(spec.skews[tiny] < 0.5);
        assert!(spec.skews[huge] > 2.0);
    }

    #[test]
    fn table_array_keys_respect_dimensions_and_cover_tables() {
        let spec = TableArraySpec::libai();
        let mut seen = vec![false; spec.sizes.len()];
        for r in 0..100 {
            for i in 0..16 {
                let k = spec.key(r, i);
                let t = k.table().0 as usize;
                assert!(t < spec.sizes.len());
                assert!(k.row().0 < spec.sizes[t]);
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every table receives demand");
    }

    #[test]
    fn table_array_skew_concentrates_rows_per_table() {
        // One big table with skew 2 vs the same table with skew 0: the
        // skewed draw must lower the mean row id.
        let flat = TableArraySpec {
            sizes: vec![100_000],
            skews: vec![0.0],
        };
        let skewed = TableArraySpec {
            sizes: vec![100_000],
            skews: vec![2.0],
        };
        let mean = |s: &TableArraySpec| {
            let ks = s.requests(300, 8);
            let (sum, n) = ks
                .iter()
                .flatten()
                .fold((0u64, 0u64), |(acc, n), k| (acc + k.row().0, n + 1));
            sum as f64 / n as f64
        };
        assert!(mean(&skewed) < mean(&flat) * 0.6);
    }

    #[test]
    fn geometric_array_is_log_spaced_and_valid() {
        let spec = TableArraySpec::geometric(20, 100, 1_000_000);
        spec.validate();
        assert_eq!(spec.num_tables(), 20);
        assert_eq!(spec.sizes[0], 100);
        assert_eq!(spec.sizes[19], 1_000_000);
        assert!(spec.sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "sizes and skews must align")]
    fn mismatched_table_array_panics() {
        let spec = TableArraySpec {
            sizes: vec![10, 20],
            skews: vec![0.0],
        };
        spec.validate();
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn zero_tables_panics() {
        let spec = WorkloadSpec {
            num_tables: 0,
            rows_per_table: 1,
            skew: 0.0,
        };
        spec.validate();
    }
}
