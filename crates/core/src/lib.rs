//! # recmg-core
//!
//! RecMG: machine-learning-guided caching and prefetching of DLRM embedding
//! vectors on tiered memory — the primary contribution of "Machine
//! Learning-Guided Memory Optimization for DLRM Inference on Tiered Memory"
//! (HPCA 2025), reproduced in Rust.
//!
//! The system (paper Fig. 4):
//!
//! 1. **Offline** ([`labeling`], [`train_recmg`]): DLRM access traces are
//!    labeled by OPTgen (Belady-optimal decisions); the caching trace
//!    trains the [`CachingModel`], and the OPT-miss subsequence trains the
//!    [`PrefetchModel`] under the symmetric Chamfer loss (Eq. 5) with a
//!    decoupled evaluation window.
//! 2. **Online** ([`RecMgSystem`]): the GPU buffer is co-managed by both
//!    models via Algorithms 1–2 ([`RecMgBuffer`]): the caching model emits
//!    a 1-bit priority per accessed vector, the prefetch model fetches
//!    predicted vectors, and eviction decays priorities and removes the
//!    minimum.
//! 3. **Serving** ([`serving`], [`FastCachingModel`],
//!    [`FastPrefetchModel`]): compiled, tape-free model snapshots run on
//!    CPU threads with near-linear scaling (Fig. 7).
//! 4. **Scale-out** ([`ShardedRecMgSystem`], [`engine`]): the buffer is
//!    partitioned into hash-routed shards served by concurrent workers,
//!    with model guidance on a non-blocking background plane implementing
//!    the paper's §VI-C skip-ahead rule (one shard reproduces
//!    [`RecMgSystem`] exactly).
//! 5. **Streaming** ([`session`]): a [`RequestSource`] (batches, Poisson /
//!    uniform synthetic arrivals, trace replay, or a closed loop over any
//!    of them) feeds a [`ServingSession`] with admission control,
//!    per-request latency percentiles, and SLA-pressure degradation
//!    (skip-ahead first, then prefetch-off). The batch `serve()` above is
//!    a thin wrapper over a batch-backed session.
//! 6. **Tiered memory** ([`tier`], [`SystemBuilder`]): systems are built
//!    against an explicit [`TierTopology`] (fast → slow [`MemoryTier`]s
//!    with access-cost models); a [`PlacementPolicy`] ([`EvenSplit`],
//!    RecShard-style [`WorkingSet`], [`HotFirst`]) sizes per-shard buffer
//!    shares and routes them to tiers, a [`Rebalancer`] re-places live
//!    systems from observed per-shard mass, and per-tier occupancy /
//!    traffic / hit-weighted cost surfaces in every report.
//! 7. **Working-set sketches** ([`sketch`]): every shard buffer keeps an
//!    allocation-light HyperLogLog working-set tracker on its demand path
//!    (windowed epochs, exact small-set mode), reporting a unique-key
//!    footprint alongside its tier traffic; [`CardinalityWorkingSet`]
//!    apportions capacity by that sketched footprint instead of miss
//!    mass, and the [`Rebalancer`]'s phase-change trigger re-places a
//!    live system within one sketch epoch of a skew flip (placement runs
//!    on per-epoch traffic deltas, never cumulative history).
//! 8. **Live migration** ([`migrate`]): sessions built with
//!    [`SessionBuilder::live`] re-place shards with zero quiescence — an
//!    epoch-versioned [`RouteTable`] routes every request wait-free, a
//!    background rebalancer double-buffers the affected shard (copy-on-
//!    access plus a paced fill) and commits with one route publish, and a
//!    sketch-driven [`ReplicationPolicy`] gives read-hot slow-tier shards
//!    fast-tier replicas that invalidate through the same epoch fence.
//! 9. **Statistical per-table placement** ([`table_profile`]): a
//!    [`TableProfiler`] on the demand path builds per-table
//!    [`TableProfile`]s (size, demand share, fitted power-law skew,
//!    high-cardinality-sketched unique-row footprint);
//!    [`StatisticalPlacement`] pins tiny tables whole in the fastest
//!    tier — direct-routed, eviction-exempt, floors and tier-fill order
//!    pin-adjusted — and splits big skewed tables at the closed-form
//!    [`hot_boundary`] so only the hot prefix earns buffer capacity.
//!    [`TableArraySpec`] generates the heterogeneous libai-style
//!    table-size-array workloads this placement is built for.
//! 10. **Software-defined memory** ([`backend`]): every buffer's row
//!     bytes live on a real storage backend behind the [`TierBackend`]
//!     trait — heap ([`DramBackend`]), an `mmap`'d temp file, or a
//!     `pread`/`pwrite` file — so [`TierTopology::sdm_ladder`] builds a
//!     three-rung DRAM → mapped-file → file stack whose costs are
//!     *measured* by a bind-time calibration probe
//!     ([`CalibrationReport`]) instead of injected, and an async fill
//!     plane ([`FillMode::Async`]) turns slow-tier misses into queued,
//!     coalesced background fills that promote when they land.
//!
//! # Examples
//!
//! Train RecMG on a trace prefix and serve the rest:
//!
//! ```
//! use recmg_core::{train_recmg, RecMgConfig, RecMgSystem, TrainOptions};
//! use recmg_dlrm::{BatchAccessStats, BufferManager};
//! use recmg_trace::{SyntheticConfig, TraceStats};
//!
//! let cfg = RecMgConfig::tiny();
//! let trace = SyntheticConfig::tiny(1).generate();
//! let capacity = TraceStats::compute(&trace).buffer_capacity(20.0);
//! let trained = train_recmg(&trace.accesses()[..2000], &cfg, capacity, &TrainOptions::tiny());
//! let mut system = RecMgSystem::from_trained(&trained, capacity);
//! let mut stats = BatchAccessStats::default();
//! for batch in trace.batches(20) {
//!     stats.accumulate(system.process_batch(batch));
//! }
//! assert!(stats.hits() > 0);
//! ```

pub mod backend;
mod buffer_mgmt;
mod builder;
mod caching_model;
mod codec;
mod config;
pub mod engine;
mod fast;
pub mod labeling;
pub mod migrate;
mod prefetch_model;
pub mod serving;
pub mod session;
mod sharding;
pub mod sketch;
mod system;
pub mod table_profile;
pub mod tier;
pub mod trace;

#[cfg(unix)]
pub use backend::FileBackend;
#[cfg(recmg_mmap)]
pub use backend::MappedFileBackend;
pub use backend::{
    calibrate, live_backend_files, synth_row, BackendAdvice, BackendSpec, CalibrationReport,
    DramBackend, FillMode, FillPlaneReport, TierBackend, TierCalibration, ROW_BYTES,
};
pub use buffer_mgmt::{RecMgBuffer, TierTraffic};
pub use builder::SystemBuilder;
pub use caching_model::{CachingModel, FastCachingModel, TrainingReport};
pub use codec::{FrequencyRankCodec, GlobalIdCodec, IndexCodec};
pub use config::{
    AdmissionPolicy, DegradeLevel, GuidancePrecision, RecMgConfig, SketchConfig, SlaBudget,
    TenantSpec, TierCost,
};
pub use engine::{EngineReport, GuidanceMode, GuidancePlaneReport, ServeOptions};
pub use fast::{active_lane, FastScratch, KernelLane};
pub use labeling::{build_training_data, Chunk, PrefetchExample, TrainingData};
pub use migrate::{
    LiveRebalanceConfig, MigrationReport, ReplicationPolicy, ReplicationReport, RouteEpoch,
    RouteTable, ShardRoute,
};
pub use prefetch_model::{
    FastPrefetchModel, PrefetchEval, PrefetchLoss, PrefetchModel, PrefetchTrainingReport,
};
pub use serving::{TableArraySpec, WorkloadSpec};
pub use session::{
    ArrivalProcess, BatchSource, ClosedLoopSource, LatencySummary, MarkovArrivals, Rejection,
    Request, RequestSample, RequestSource, ServingSession, SessionBuilder, SessionProgress,
    SessionReport, SlaOutcome, SyntheticSource, TenantReport, TraceReplaySource,
};
pub use sharding::{ShardRouter, ShardedRecMgSystem};
pub use sketch::{CardinalitySketch, WorkingSetStats, WorkingSetTracker};
pub use system::{train_recmg, CmPolicy, PmPrefetcher, RecMgSystem, TrainOptions, TrainedRecMg};
pub use table_profile::{
    hot_boundary, StatisticalPlacement, TableDecision, TablePlacement, TableProfile, TableProfiler,
    TableReport,
};
pub use tier::{
    CardinalityWorkingSet, EvenSplit, HotFirst, MemoryTier, PlacementPolicy, RebalanceDeferred,
    Rebalancer, ShardPlacement, TierTopology, TierUsage, WorkingSet,
};
pub use trace::{
    parse_criteo_line, parse_indices_line, profile_trace, read_trace, FileTraceSource, TraceFormat,
    TraceProfile, CRITEO_TABLES,
};
