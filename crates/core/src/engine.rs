//! Batch-mode serving API over the streaming session.
//!
//! The paper's deployment overlaps CPU model inference with GPU batch
//! execution and never blocks the GPU: "the DLRM inference does not wait
//! for the CPU completion. Instead, GPU moves on to the next DLRM inference
//! batch, and CPU moves on to infer for the future batch". That
//! non-blocking skip-ahead rule (§VI-C) is implemented by the streaming
//! [`ServingSession`](crate::session::ServingSession); this module keeps
//! the batch-shaped entry point: [`ShardedRecMgSystem::serve`] wraps the
//! given batches in a [`BatchSource`](crate::session::BatchSource), runs
//! them through a session with an unbounded queue (nothing is shed — every
//! batch is served), and returns the session's [`EngineReport`]. There is
//! exactly one serving path; the batch API is a thin adapter over it.
//!
//! [`EngineReport::guided_fraction`] reports the fraction of chunks that
//! received model guidance, matching
//! [`recmg_dlrm::PipelineReport::guided_fraction`] semantics.

use recmg_dlrm::BatchAccessStats;
use recmg_trace::VectorKey;

use crate::backend::{CalibrationReport, FillPlaneReport};
use crate::config::AdmissionPolicy;
use crate::migrate::{MigrationReport, ReplicationReport};
use crate::session::{BatchSource, SessionBuilder};
use crate::sharding::ShardedRecMgSystem;
use crate::table_profile::TableReport;
use crate::tier::TierUsage;

/// How model guidance is scheduled during serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuidanceMode {
    /// Guidance runs synchronously on the serving worker at every chunk
    /// boundary (the sequential system's behaviour; fully deterministic
    /// with one worker).
    Inline,
    /// Guidance runs on a background thread pool; serving never waits *on
    /// a guidance result* — demand accesses always proceed on whatever
    /// priorities the buffer currently holds. A shard with `max_lag` or
    /// more chunks already in flight skips fresh guidance for the
    /// arriving chunk (the paper's non-blocking skip-ahead rule), so
    /// `max_lag: 0` disables guidance entirely; after such a skip the
    /// producing worker pauses briefly (bounded, ~tens of ms worst case,
    /// while holding that shard's lock) so the plane can drain the
    /// backlog as one coalesced batch instead of every following chunk
    /// skipping too. Each plane thread drains up to `max_batch` pending
    /// chunks per wakeup and runs them as *one* batched model forward per
    /// model, amortizing weight traffic across shards — which is why
    /// `max_lag` tolerates a deeper backlog than the pre-batching plane
    /// did: a backlog of N chunks costs one coalesced forward, not N.
    Background {
        /// Guidance-plane threads.
        threads: usize,
        /// In-flight guidance chunks tolerated per shard; at or above this
        /// count, new chunks are skipped.
        max_lag: usize,
        /// Maximum chunks coalesced into one batched model forward.
        max_batch: usize,
    },
}

impl Default for GuidanceMode {
    fn default() -> Self {
        GuidanceMode::Background {
            threads: 1,
            max_lag: 8,
            max_batch: 16,
        }
    }
}

/// Guidance-plane accounting of one serve run: how hard the background
/// plane worked and whether it kept up. All zeros under
/// [`GuidanceMode::Inline`] (inline guidance is counted by
/// `guided_chunks`, not here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuidancePlaneReport {
    /// Batched model forwards run (caching and prefetch invocations each
    /// count once, regardless of batch size).
    pub model_forwards: u64,
    /// Plane wakeups that drained at least one chunk.
    pub drains: u64,
    /// Chunks the plane computed guidance for.
    pub chunks: u64,
    /// Largest number of chunks coalesced into one drain.
    pub max_batch: u64,
    /// Plane lag at teardown: chunks whose guidance landed only at drain,
    /// after the last access of the run. They count as guided (the model
    /// ran and the update was applied, warming the returned system exactly
    /// like an inline apply between batches), but a plane that keeps up
    /// holds this near `shards × max_lag` or below — it is the lag signal
    /// a capacity planner should watch.
    pub late_chunks: u64,
    /// Kernel lane the guidance forwards ran on: the runtime-dispatched
    /// SIMD lane plus a `+int8` suffix when the compiled models are
    /// quantized (`"scalar"`, `"avx2"`, `"scalar+int8"`, `"avx2+int8"`).
    /// Empty in a default report that never touched a system.
    pub kernel_lane: &'static str,
}

impl GuidancePlaneReport {
    /// Mean chunks per drained batch (0 when the plane never ran).
    pub fn mean_batch(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.chunks as f64 / self.drains as f64
        }
    }

    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"model_forwards\": {}, \"drains\": {}, \"chunks\": {}, ",
                "\"mean_batch\": {:.2}, \"max_batch\": {}, \"late_chunks\": {}, ",
                "\"kernel_lane\": \"{}\"}}"
            ),
            self.model_forwards,
            self.drains,
            self.chunks,
            self.mean_batch(),
            self.max_batch,
            self.late_chunks,
            self.kernel_lane,
        )
    }
}

/// Options for [`ShardedRecMgSystem::serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Serving worker threads.
    pub workers: usize,
    /// Guidance scheduling.
    pub guidance: GuidanceMode,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            guidance: GuidanceMode::default(),
        }
    }
}

/// Outcome of one batch-mode serve run (also embedded in
/// [`SessionReport`](crate::session::SessionReport) for streaming runs).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Merged access outcomes across all batches and shards.
    pub stats: BatchAccessStats,
    /// Request batches served.
    pub batches: usize,
    /// Chunks that received model guidance during this run.
    pub guided_chunks: u64,
    /// Chunks formed during this run.
    pub total_chunks: u64,
    /// Wall-clock serving time.
    pub elapsed_secs: f64,
    /// Background guidance-plane accounting (zeros under inline guidance).
    pub plane: GuidancePlaneReport,
    /// Per-tier occupancy (end of run) and traffic/cost (delta over this
    /// run), one entry per [`crate::MemoryTier`] of the system's topology.
    pub tiers: Vec<TierUsage>,
    /// Sketched working-set footprint across shards at end of run
    /// (point-in-time windowed estimate, not a per-run delta — see
    /// [`crate::TierTraffic::unique_keys`]).
    pub unique_keys: u64,
    /// Largest per-shard sketch phase score at end of run (`[0, 1]`; high
    /// values mean a shard's working set flipped within the last epoch —
    /// the signal the phase-reactive [`crate::Rebalancer`] fires on).
    pub max_phase_score: f64,
    /// Live-migration accounting (all zeros when the run had no
    /// [`crate::LiveRebalanceConfig`] attached).
    pub migration: MigrationReport,
    /// Hot-shard replication accounting (all zeros without a
    /// [`crate::ReplicationPolicy`]).
    pub replication: ReplicationReport,
    /// Per-table demand profiles and placement decisions at end of run,
    /// sorted by table id — empty unless the system's placement policy
    /// profiles tables ([`crate::StatisticalPlacement`]).
    pub tables: Vec<TableReport>,
    /// Bind-time tier-cost calibration: one entry per tier built with
    /// [`crate::MemoryTier::calibrated`] (measured hit/miss/fill ns
    /// against the tier's real backend); empty when every tier kept its
    /// injected [`crate::TierCost::synthetic`] cost.
    pub calibration: CalibrationReport,
    /// Async fill-plane accounting for this run (all zeros under
    /// [`crate::FillMode::Blocking`]).
    pub fills: FillPlaneReport,
}

impl EngineReport {
    /// Fraction of chunks with fresh guidance (cf.
    /// [`recmg_dlrm::PipelineReport::guided_fraction`]).
    pub fn guided_fraction(&self) -> f64 {
        if self.total_chunks == 0 {
            0.0
        } else {
            self.guided_chunks as f64 / self.total_chunks as f64
        }
    }

    /// Embedding accesses served per second.
    pub fn keys_per_sec(&self) -> f64 {
        self.stats.total() as f64 / self.elapsed_secs.max(1e-9)
    }

    /// Total hit-weighted access cost across tiers for this run, in
    /// nanoseconds — the metric placement policies compete on.
    pub fn access_cost_ns(&self) -> u64 {
        TierUsage::total_cost_ns(&self.tiers)
    }

    /// Machine-readable summary with fixed field names — the single
    /// serializer used by every bench that emits an engine report, so
    /// `guided_fraction` / `keys_per_sec` are never re-derived ad hoc.
    pub fn to_json(&self) -> String {
        let tiers: Vec<String> = self.tiers.iter().map(TierUsage::to_json).collect();
        let tables: Vec<String> = self.tables.iter().map(TableReport::to_json).collect();
        format!(
            concat!(
                "{{\"batches\": {}, \"keys\": {}, \"hit_rate\": {:.4}, ",
                "\"guided_fraction\": {:.4}, \"keys_per_sec\": {:.1}, ",
                "\"elapsed_secs\": {:.4}, \"plane\": {}, ",
                "\"access_cost_ns\": {}, \"unique_keys\": {}, ",
                "\"max_phase_score\": {:.4}, \"migration\": {}, ",
                "\"replication\": {}, \"calibration\": {}, \"fills\": {}, ",
                "\"tiers\": [{}], \"tables\": [{}]}}"
            ),
            self.batches,
            self.stats.total(),
            self.stats.hit_rate(),
            self.guided_fraction(),
            self.keys_per_sec(),
            self.elapsed_secs,
            self.plane.to_json(),
            self.access_cost_ns(),
            self.unique_keys,
            self.max_phase_score,
            self.migration.to_json(),
            self.replication.to_json(),
            self.calibration.to_json(),
            self.fills.to_json(),
            tiers.join(", "),
            tables.join(", "),
        )
    }
}

impl ShardedRecMgSystem {
    /// Serves `batches` with `opts.workers` threads — a thin wrapper over
    /// a batch-backed [`ServingSession`](crate::session::ServingSession)
    /// with an unbounded admission queue (every batch is served; nothing
    /// is rejected or shed). Returns merged stats plus guidance accounting
    /// for this run.
    ///
    /// Queued requests own their keys, so each call copies the batch
    /// slices once on ingestion; callers that already hold owned batches
    /// can skip the copy by driving a session directly with
    /// [`BatchSource::from_vecs`](crate::session::BatchSource::from_vecs).
    ///
    /// Per-shard access order follows the order workers acquire each shard,
    /// so multi-worker hit counts can vary slightly between runs; totals
    /// always equal the summed batch lengths. With `workers == 1` and
    /// [`GuidanceMode::Inline`], the result is exactly
    /// [`ShardedRecMgSystem::process_batch`] over the batches in order.
    ///
    /// # Panics
    ///
    /// Panics if `opts.workers` is zero, or background guidance is
    /// configured with zero threads.
    pub fn serve(&mut self, batches: &[&[VectorKey]], opts: &ServeOptions) -> EngineReport {
        assert!(opts.workers > 0, "need at least one serving worker");
        if let GuidanceMode::Background { threads, .. } = opts.guidance {
            assert!(threads > 0, "need at least one guidance thread");
        }
        let system = ShardedRecMgSystem {
            ctx: self.ctx.clone(),
            router: self.router.clone(),
            shards: std::mem::take(&mut self.shards),
        };
        let session = SessionBuilder::new()
            .workers(opts.workers)
            .guidance(opts.guidance)
            .admission(AdmissionPolicy::unbounded())
            .build(system);
        session.ingest(&mut BatchSource::new(batches));
        let (system, report) = session.drain();
        self.shards = system.shards;
        report.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::codec::FrequencyRankCodec;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;
    use recmg_dlrm::BufferManager;
    use recmg_trace::SyntheticConfig;

    fn system(num_shards: usize) -> ShardedRecMgSystem {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let prefetch = PrefetchModel::new(&cfg);
        let trace = SyntheticConfig::tiny(5).generate();
        let codec = FrequencyRankCodec::from_accesses(&trace.accesses()[..500]);
        ShardedRecMgSystem::builder(&caching, Some(&prefetch), codec)
            .shards(num_shards)
            .capacity(64)
            .build()
    }

    #[test]
    fn inline_single_worker_matches_process_batch() {
        let trace = SyntheticConfig::tiny(41).generate();
        let batches = trace.batches(10);
        let mut a = system(2);
        let mut b = system(2);
        let mut seq = BatchAccessStats::default();
        for batch in &batches {
            seq.accumulate(a.process_batch(batch));
        }
        let report = b.serve(
            &batches,
            &ServeOptions {
                workers: 1,
                guidance: GuidanceMode::Inline,
            },
        );
        assert_eq!(report.stats, seq);
        assert_eq!(report.batches, batches.len());
        assert_eq!(report.total_chunks, b.total_chunks());
    }

    #[test]
    fn background_guidance_serves_every_access() {
        let trace = SyntheticConfig::tiny(42).generate();
        let batches = trace.batches(10);
        let mut sys = system(4);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 2,
                guidance: GuidanceMode::Background {
                    threads: 1,
                    max_lag: 8,
                    max_batch: 4,
                },
            },
        );
        assert_eq!(report.stats.total(), trace.len() as u64);
        assert!(report.total_chunks > 0);
        assert!(report.guided_fraction() <= 1.0);
        assert!(report.keys_per_sec() > 0.0);
        assert!(report.elapsed_secs > 0.0);
        // Plane accounting: every guided chunk went through the plane
        // (late ones included), and no drained batch exceeded the knob.
        assert_eq!(report.plane.chunks, report.guided_chunks);
        assert!(report.plane.late_chunks <= report.plane.chunks);
        assert!(report.plane.max_batch <= 4);
        assert!(report.plane.model_forwards > 0);
        assert!(report.plane.mean_batch() >= 1.0);
    }

    #[test]
    fn background_skips_count_as_unguided() {
        let trace = SyntheticConfig::tiny(43).generate();
        let batches = trace.batches(10);
        let mut sys = system(1);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 1,
                guidance: GuidanceMode::Background {
                    threads: 1,
                    max_lag: 0, // plane can never accept work
                    max_batch: 16,
                },
            },
        );
        assert_eq!(report.guided_chunks, 0);
        assert_eq!(report.guided_fraction(), 0.0);
        assert_eq!(report.stats.total(), trace.len() as u64);
        assert_eq!(report.plane.chunks, 0);
        assert_eq!(report.plane.model_forwards, 0);
    }

    #[test]
    fn multi_worker_totals_are_exact() {
        let trace = SyntheticConfig::tiny(44).generate();
        let batches = trace.batches(5);
        let mut sys = system(4);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 4,
                guidance: GuidanceMode::Inline,
            },
        );
        assert_eq!(report.stats.total(), trace.len() as u64);
        assert!(report.stats.hits() > 0);
    }

    #[test]
    fn report_json_has_fixed_field_names() {
        let trace = SyntheticConfig::tiny(45).generate();
        let batches = trace.batches(10);
        let mut sys = system(1);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 1,
                guidance: GuidanceMode::Inline,
            },
        );
        let json = report.to_json();
        for field in [
            "\"batches\"",
            "\"keys\"",
            "\"hit_rate\"",
            "\"guided_fraction\"",
            "\"keys_per_sec\"",
            "\"elapsed_secs\"",
            "\"plane\"",
            "\"model_forwards\"",
            "\"mean_batch\"",
            "\"late_chunks\"",
            "\"kernel_lane\"",
            "\"access_cost_ns\"",
            "\"unique_keys\"",
            "\"max_phase_score\"",
            "\"migration\"",
            "\"migrations\"",
            "\"route_epoch\"",
            "\"replication\"",
            "\"replica_hits\"",
            "\"calibration\"",
            "\"fills\"",
            "\"queued\"",
            "\"coalesced\"",
            "\"promoted\"",
            "\"tiers\"",
            "\"tier\": \"dram\"",
            "\"tables\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn statistical_system_reports_per_table_profiles() {
        use crate::table_profile::StatisticalPlacement;
        use crate::tier::TierTopology;
        use recmg_trace::{RowId, TableId, VectorKey};

        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(0))]);
        let mut sys = ShardedRecMgSystem::builder(&caching, None, codec)
            .shards(2)
            .topology(TierTopology::two_tier(64, 64))
            .placement(StatisticalPlacement::default())
            .build();
        // Two tables: tiny (4 rows, hammered) and large-ish (round-robin).
        let keys: Vec<VectorKey> = (0..2000)
            .map(|i| {
                if i % 2 == 0 {
                    VectorKey::new(TableId(0), RowId((i / 2) as u64 % 4))
                } else {
                    VectorKey::new(TableId(1), RowId(i as u64))
                }
            })
            .collect();
        let report = sys.serve(
            &[&keys],
            &ServeOptions {
                workers: 1,
                guidance: GuidanceMode::Inline,
            },
        );
        assert_eq!(report.tables.len(), 2);
        let t0 = &report.tables[0];
        assert_eq!(t0.profile.table, 0);
        assert_eq!(t0.profile.unique_rows, 4);
        assert!((t0.profile.demand_share - 0.5).abs() < 0.05);
        let json = report.to_json();
        for field in [
            "\"demand_share\"",
            "\"skew\"",
            "\"unique_rows\"",
            "\"pinned_shard\"",
            "\"hot_rows\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one serving worker")]
    fn zero_workers_panics() {
        let mut sys = system(1);
        let _ = sys.serve(
            &[],
            &ServeOptions {
                workers: 0,
                guidance: GuidanceMode::Inline,
            },
        );
    }
}
