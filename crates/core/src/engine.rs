//! Concurrent sharded serving: worker threads, an atomic-counter request
//! queue, and the non-blocking background guidance plane of §VI-C.
//!
//! The paper's deployment overlaps CPU model inference with GPU batch
//! execution and never blocks the GPU: "the DLRM inference does not wait
//! for the CPU completion. Instead, GPU moves on to the next DLRM inference
//! batch, and CPU moves on to infer for the future batch". The sequential
//! [`RecMgSystem`](crate::RecMgSystem) approximates that with a
//! `guidance_stride`; [`ShardedRecMgSystem::serve`] implements it for real:
//!
//! * **Serving workers** pull request batches from a shared queue via an
//!   atomic counter (the same pattern as [`crate::serving`]), split each
//!   batch by shard, and serve sub-batches under per-shard locks — the
//!   GPU-analogous critical path of demand accesses and buffer updates.
//! * **The guidance plane** ([`GuidanceMode::Background`]) is a pool of
//!   threads running the compiled models. At each chunk boundary a serving
//!   worker *offers* the chunk to the plane; if the plane is already
//!   `max_lag` chunks behind on that shard, the chunk is skipped — it
//!   simply runs with stale guidance (the paper's skip-ahead rule) and the
//!   skip is counted. Completed guidance is applied by whichever worker
//!   next holds the shard lock.
//!
//! [`EngineReport::guided_fraction`] reports the fraction of chunks that
//! received model guidance, matching
//! [`recmg_dlrm::PipelineReport::guided_fraction`] semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use recmg_dlrm::BatchAccessStats;
use recmg_trace::VectorKey;

use crate::sharding::{Shard, ShardedRecMgSystem};

/// How model guidance is scheduled during [`ShardedRecMgSystem::serve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuidanceMode {
    /// Guidance runs synchronously on the serving worker at every chunk
    /// boundary (the sequential system's behaviour; fully deterministic
    /// with one worker).
    Inline,
    /// Guidance runs on a background thread pool; serving never waits. A
    /// shard with `max_lag` or more chunks already in flight skips new
    /// guidance requests (the paper's non-blocking skip-ahead rule), so
    /// `max_lag: 0` disables guidance entirely.
    Background {
        /// Guidance-plane threads.
        threads: usize,
        /// In-flight guidance chunks tolerated per shard; at or above this
        /// count, new chunks are skipped.
        max_lag: usize,
    },
}

impl Default for GuidanceMode {
    fn default() -> Self {
        GuidanceMode::Background {
            threads: 1,
            max_lag: 1,
        }
    }
}

/// Options for [`ShardedRecMgSystem::serve`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Serving worker threads.
    pub workers: usize,
    /// Guidance scheduling.
    pub guidance: GuidanceMode,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            guidance: GuidanceMode::default(),
        }
    }
}

/// Outcome of one [`ShardedRecMgSystem::serve`] run.
#[derive(Debug, Clone, Copy)]
pub struct EngineReport {
    /// Merged access outcomes across all batches and shards.
    pub stats: BatchAccessStats,
    /// Request batches served.
    pub batches: usize,
    /// Chunks that received model guidance during this run.
    pub guided_chunks: u64,
    /// Chunks formed during this run.
    pub total_chunks: u64,
    /// Wall-clock serving time.
    pub elapsed_secs: f64,
}

impl EngineReport {
    /// Fraction of chunks with fresh guidance (cf.
    /// [`recmg_dlrm::PipelineReport::guided_fraction`]).
    pub fn guided_fraction(&self) -> f64 {
        if self.total_chunks == 0 {
            0.0
        } else {
            self.guided_chunks as f64 / self.total_chunks as f64
        }
    }

    /// Embedding accesses served per second.
    pub fn keys_per_sec(&self) -> f64 {
        self.stats.total() as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// A chunk handed to the guidance plane.
struct GuidanceJob {
    shard: usize,
    chunk: Vec<VectorKey>,
    armed: bool,
}

/// Computed guidance waiting to be applied to a shard.
struct GuidanceUpdate {
    chunk: Vec<VectorKey>,
    bits: Vec<bool>,
    prefetched: Vec<VectorKey>,
}

impl ShardedRecMgSystem {
    /// Serves `batches` with `opts.workers` threads pulling requests from a
    /// shared atomic-counter queue. Returns merged stats plus guidance
    /// accounting for this run.
    ///
    /// Per-shard access order follows the order workers acquire each shard,
    /// so multi-worker hit counts can vary slightly between runs; totals
    /// always equal the summed batch lengths. With `workers == 1` and
    /// [`GuidanceMode::Inline`], the result is exactly
    /// [`ShardedRecMgSystem::process_batch`] over the batches in order.
    ///
    /// # Panics
    ///
    /// Panics if `opts.workers` is zero, or background guidance is
    /// configured with zero threads.
    pub fn serve(&mut self, batches: &[&[VectorKey]], opts: &ServeOptions) -> EngineReport {
        assert!(opts.workers > 0, "need at least one serving worker");
        let guided_before = self.guided_chunks();
        let chunks_before = self.total_chunks();
        let start = Instant::now();
        let stats = match opts.guidance {
            GuidanceMode::Inline => self.serve_with_plane(batches, opts.workers, None),
            GuidanceMode::Background { threads, max_lag } => {
                assert!(threads > 0, "need at least one guidance thread");
                self.serve_with_plane(batches, opts.workers, Some((threads, max_lag)))
            }
        };
        let elapsed_secs = start.elapsed().as_secs_f64();
        EngineReport {
            stats,
            batches: batches.len(),
            guided_chunks: self.guided_chunks() - guided_before,
            total_chunks: self.total_chunks() - chunks_before,
            elapsed_secs,
        }
    }

    /// Shared serve loop; `plane` is `Some((threads, max_lag))` for
    /// background guidance, `None` for inline.
    fn serve_with_plane(
        &mut self,
        batches: &[&[VectorKey]],
        workers: usize,
        plane: Option<(usize, usize)>,
    ) -> BatchAccessStats {
        let router = self.router;
        let ctx = &self.ctx;
        let num_shards = router.num_shards();
        let shard_locks: Vec<Mutex<&mut Shard>> = self.shards.iter_mut().map(Mutex::new).collect();
        let next = AtomicUsize::new(0);
        let total = Mutex::new(BatchAccessStats::default());

        // Guidance-plane plumbing (unused in inline mode).
        let (tx, rx) = mpsc::channel::<GuidanceJob>();
        let rx = Mutex::new(rx);
        let completed: Vec<Mutex<Vec<GuidanceUpdate>>> =
            (0..num_shards).map(|_| Mutex::new(Vec::new())).collect();
        let in_flight: Vec<AtomicUsize> = (0..num_shards).map(|_| AtomicUsize::new(0)).collect();

        std::thread::scope(|scope| {
            if let Some((threads, _)) = plane {
                for _ in 0..threads {
                    let rx = &rx;
                    let completed = &completed;
                    let in_flight = &in_flight;
                    scope.spawn(move || loop {
                        let job = match rx.lock().expect("rx lock").recv() {
                            Ok(job) => job,
                            Err(_) => break, // all serving workers done
                        };
                        let (bits, prefetched) =
                            Shard::compute_guidance(&job.chunk, job.armed, job.shard, ctx, &router);
                        completed[job.shard]
                            .lock()
                            .expect("completed lock")
                            .push(GuidanceUpdate {
                                chunk: job.chunk,
                                bits,
                                prefetched,
                            });
                        in_flight[job.shard].fetch_sub(1, Ordering::AcqRel);
                    });
                }
            }

            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let total = &total;
                let shard_locks = &shard_locks;
                let completed = &completed;
                let in_flight = &in_flight;
                scope.spawn(move || {
                    let mut local = BatchAccessStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= batches.len() {
                            break;
                        }
                        let parts = router.split(batches[i]);
                        for (sid, keys) in parts.iter().enumerate() {
                            if keys.is_empty() {
                                continue;
                            }
                            let mut shard = shard_locks[sid].lock().expect("shard lock");
                            match plane {
                                None => local.accumulate(shard.process_keys(keys, ctx, &router)),
                                Some((_, max_lag)) => serve_shard_background(
                                    &mut shard,
                                    keys,
                                    &mut local,
                                    ctx,
                                    &tx,
                                    &completed[sid],
                                    &in_flight[sid],
                                    max_lag,
                                ),
                            }
                        }
                    }
                    drop(tx); // closing the channel lets the plane exit
                    total.lock().expect("total lock").accumulate(local);
                });
            }
            drop(tx);
        });

        drop(shard_locks);
        // Guidance computed after its shard went idle is still valid buffer
        // reprioritization — apply it so a subsequent serve() starts warm.
        // It arrived too late to guide any chunk of *this* run, so it is
        // intentionally not counted in guided_chunks.
        for (sid, slot) in completed.iter().enumerate() {
            for u in slot.lock().expect("completed lock").drain(..) {
                let shard = &mut self.shards[sid];
                shard.prefetches_issued += u.prefetched.len() as u64;
                shard
                    .buffer
                    .load_embeddings(&u.chunk, &u.bits, &u.prefetched);
            }
        }

        total.into_inner().expect("total lock")
    }
}

/// Serves one shard sub-batch under the background guidance plane: demand
/// accesses never wait; completed guidance is applied at chunk boundaries;
/// new chunks are offered to the plane unless it lags more than `max_lag`.
#[allow(clippy::too_many_arguments)]
fn serve_shard_background(
    shard: &mut Shard,
    keys: &[VectorKey],
    stats: &mut BatchAccessStats,
    ctx: &crate::sharding::GuidanceCtx,
    tx: &mpsc::Sender<GuidanceJob>,
    completed: &Mutex<Vec<GuidanceUpdate>>,
    in_flight: &AtomicUsize,
    max_lag: usize,
) {
    let input_len = ctx.cfg.input_len;
    for &key in keys {
        shard.record_access(key, stats);
        shard.pending.push(key);
        while shard.pending.len() >= input_len {
            // Apply whatever the plane has finished before deciding about
            // the new chunk (bounded staleness, never blocking).
            for u in completed.lock().expect("completed lock").drain(..) {
                shard.apply_guidance(&u.chunk, &u.bits, &u.prefetched);
            }
            let chunk: Vec<VectorKey> = shard.pending.drain(..input_len).collect();
            shard.chunk_counter += 1;
            if in_flight.load(Ordering::Acquire) >= max_lag {
                // The CPU plane is behind: skip ahead, run on stale
                // guidance (§VI-C).
                shard.unguided_chunks += 1;
                continue;
            }
            let armed = shard.prefetch_armed(ctx);
            in_flight.fetch_add(1, Ordering::AcqRel);
            if tx
                .send(GuidanceJob {
                    shard: shard.id,
                    chunk,
                    armed,
                })
                .is_err()
            {
                // Plane already shut down (can only happen at teardown).
                in_flight.fetch_sub(1, Ordering::AcqRel);
                shard.unguided_chunks += 1;
            } else {
                // Give the plane a scheduling slot. On a loaded or
                // single-core host the serving workers would otherwise
                // starve the guidance threads into pure skip-ahead; on idle
                // multicore hosts this is a near no-op.
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::codec::FrequencyRankCodec;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;
    use recmg_dlrm::BufferManager;
    use recmg_trace::SyntheticConfig;

    fn system(num_shards: usize) -> ShardedRecMgSystem {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let prefetch = PrefetchModel::new(&cfg);
        let trace = SyntheticConfig::tiny(5).generate();
        let codec = FrequencyRankCodec::from_accesses(&trace.accesses()[..500]);
        ShardedRecMgSystem::new(&caching, Some(&prefetch), codec, 64, num_shards)
    }

    #[test]
    fn inline_single_worker_matches_process_batch() {
        let trace = SyntheticConfig::tiny(41).generate();
        let batches = trace.batches(10);
        let mut a = system(2);
        let mut b = system(2);
        let mut seq = BatchAccessStats::default();
        for batch in &batches {
            seq.accumulate(a.process_batch(batch));
        }
        let report = b.serve(
            &batches,
            &ServeOptions {
                workers: 1,
                guidance: GuidanceMode::Inline,
            },
        );
        assert_eq!(report.stats, seq);
        assert_eq!(report.batches, batches.len());
        assert_eq!(report.total_chunks, b.total_chunks());
    }

    #[test]
    fn background_guidance_serves_every_access() {
        let trace = SyntheticConfig::tiny(42).generate();
        let batches = trace.batches(10);
        let mut sys = system(4);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 2,
                guidance: GuidanceMode::Background {
                    threads: 1,
                    max_lag: 1,
                },
            },
        );
        assert_eq!(report.stats.total(), trace.len() as u64);
        assert!(report.total_chunks > 0);
        assert!(report.guided_fraction() <= 1.0);
        assert!(report.keys_per_sec() > 0.0);
        assert!(report.elapsed_secs > 0.0);
    }

    #[test]
    fn background_skips_count_as_unguided() {
        let trace = SyntheticConfig::tiny(43).generate();
        let batches = trace.batches(10);
        let mut sys = system(1);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 1,
                guidance: GuidanceMode::Background {
                    threads: 1,
                    max_lag: 0, // plane can never accept work
                },
            },
        );
        assert_eq!(report.guided_chunks, 0);
        assert_eq!(report.guided_fraction(), 0.0);
        assert_eq!(report.stats.total(), trace.len() as u64);
    }

    #[test]
    fn multi_worker_totals_are_exact() {
        let trace = SyntheticConfig::tiny(44).generate();
        let batches = trace.batches(5);
        let mut sys = system(4);
        let report = sys.serve(
            &batches,
            &ServeOptions {
                workers: 4,
                guidance: GuidanceMode::Inline,
            },
        );
        assert_eq!(report.stats.total(), trace.len() as u64);
        assert!(report.stats.hits() > 0);
    }

    #[test]
    #[should_panic(expected = "at least one serving worker")]
    fn zero_workers_panics() {
        let mut sys = system(1);
        let _ = sys.serve(
            &[],
            &ServeOptions {
                workers: 0,
                guidance: GuidanceMode::Inline,
            },
        );
    }
}
