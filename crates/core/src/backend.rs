//! Software-defined memory backends: the DRAM → mapped-file → file ladder.
//!
//! Every [`RecMgBuffer`](crate::RecMgBuffer) owns a [`RowStore`] — real
//! row bytes behind a [`TierBackend`] — so a memory tier is no longer
//! plain DRAM wearing a spin-wait costume. Three backends implement the
//! ladder of Meta's software-defined-memory paper (device memory →
//! cached host memory → cached SSD):
//!
//! * [`DramBackend`] — heap (`Vec<u8>`) rows, byte-addressable.
//! * [`MappedFileBackend`] — an `mmap`'d temp file (`MAP_SHARED`), page-
//!   cache semantics with `madvise` hints.
//! * [`FileBackend`] — `pread`/`pwrite` on a plain temp file,
//!   block-addressable (every access is an explicit syscall).
//!
//! Costs come from the hardware, not a config literal: at
//! [`SystemBuilder::build`](crate::SystemBuilder::build) each tier marked
//! [`MemoryTier::calibrated`](crate::MemoryTier::calibrated) runs a short
//! randomized read/write probe ([`calibrate`]) and records the measured
//! hit/miss/fill nanoseconds into its `TierCost`; injected costs remain
//! available as [`TierCost::synthetic`](crate::TierCost::synthetic).
//!
//! Slow-tier misses stop blocking workers through the async fill path: a
//! bounded, duplicate-coalescing [`FillQueue`] is drained by background
//! fill threads that promote the row under the shard lock — the paper's
//! §VI-C non-blocking philosophy applied to the storage layer.
//!
//! On non-Unix targets the file-backed specs degrade to heap storage so
//! the crate still builds; the ladder is then uniform DRAM. The mapped
//! file is further gated (build.rs `recmg_mmap`) to targets where the
//! hand-rolled mmap FFI is ABI-sound — macOS and 64-bit Linux.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use recmg_trace::VectorKey;

use crate::config::TierCost;

/// Bytes per embedding row held by a backend (16 f32 dimensions — the
/// small-DLRM embedding width the serving benches model).
pub const ROW_BYTES: usize = 64;

/// Live file-backed backends (mapped or plain) holding a temp file right
/// now. Tests assert this returns to its baseline after systems drop —
/// the no-leaked-files oracle for migration stress.
static LIVE_BACKEND_FILES: AtomicUsize = AtomicUsize::new(0);

/// Monotonic suffix so concurrent backends in one process never collide
/// on a temp path.
static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Number of temp files currently held by live file-backed backends.
pub fn live_backend_files() -> usize {
    LIVE_BACKEND_FILES.load(Ordering::SeqCst)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically synthesizes the row bytes of `key`. Every backend
/// stores the same function of the key, so parity across backends is
/// bit-exact and a migrated/staged store can be rebuilt without copying
/// bytes tier-to-tier.
pub fn synth_row(key: VectorKey, out: &mut [u8]) {
    let mut state = key.as_u64() ^ 0x5851_f42d_4c95_7f2d;
    for chunk in out.chunks_mut(8) {
        let word = splitmix64(&mut state).to_le_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
}

/// Access-pattern hints a [`RowStore`] forwards to its backend
/// (`madvise`-style; backends without a meaningful mapping ignore them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendAdvice {
    /// Expect random row access (the demand path).
    Random,
    /// Expect a sequential sweep (calibration, bulk fills).
    Sequential,
    /// The store is about to be read hot — fault pages in.
    WillNeed,
    /// The store's pages will not be needed soon.
    DontNeed,
}

/// Which storage medium backs a tier — carried by
/// [`MemoryTier`](crate::MemoryTier) and realized per shard buffer as a
/// [`TierBackend`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// Heap rows ([`DramBackend`]) — the historical behaviour.
    #[default]
    Dram,
    /// `mmap`'d temp file ([`MappedFileBackend`]).
    MappedFile,
    /// `pread`/`pwrite` temp file ([`FileBackend`]).
    File,
}

impl BackendSpec {
    /// Stable lowercase name (report/bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Dram => "dram",
            BackendSpec::MappedFile => "mapped_file",
            BackendSpec::File => "file",
        }
    }

    /// Instantiates a backend with `rows` row slots. File-backed specs
    /// fall back to heap storage where the platform APIs are missing (or,
    /// for the mapped file, where the mmap FFI is not ABI-sound — see
    /// build.rs).
    pub(crate) fn create(&self, rows: usize) -> Box<dyn TierBackend> {
        let rows = rows.max(1);
        match self {
            BackendSpec::Dram => Box::new(DramBackend::new(rows)),
            #[cfg(recmg_mmap)]
            BackendSpec::MappedFile => Box::new(MappedFileBackend::new(rows)),
            #[cfg(not(recmg_mmap))]
            BackendSpec::MappedFile => Box::new(DramBackend::new(rows)),
            #[cfg(unix)]
            BackendSpec::File => Box::new(FileBackend::new(rows)),
            #[cfg(not(unix))]
            BackendSpec::File => Box::new(DramBackend::new(rows)),
        }
    }
}

/// One storage medium holding fixed-size rows at integer slots. Slot
/// bookkeeping (which key lives where) belongs to [`RowStore`]; backends
/// only move bytes.
///
/// # Panics
///
/// Implementations panic on out-of-range slots or wrong-length row
/// buffers — both are `RowStore` invariant violations, not runtime
/// conditions.
pub trait TierBackend: fmt::Debug + Send + Sync {
    /// The spec that created this backend.
    fn spec(&self) -> BackendSpec;

    /// Number of row slots.
    fn rows(&self) -> usize;

    /// Copies row `slot` into `out` (`ROW_BYTES` long).
    fn read_row(&self, slot: usize, out: &mut [u8]);

    /// Overwrites row `slot` with `data` (`ROW_BYTES` long).
    fn write_row(&mut self, slot: usize, data: &[u8]);

    /// Installs a batch of synthesized rows (the default loops
    /// [`write_row`](TierBackend::write_row); backends may override with a
    /// coalesced write path).
    fn fill_batch(&mut self, fills: &[(usize, VectorKey)]) {
        let mut row = [0u8; ROW_BYTES];
        for &(slot, key) in fills {
            synth_row(key, &mut row);
            self.write_row(slot, &row);
        }
    }

    /// Forwards an access-pattern hint; the default ignores it.
    fn advise(&mut self, _advice: BackendAdvice) {}
}

/// Heap-resident rows: one contiguous `Vec<u8>`.
#[derive(Debug)]
pub struct DramBackend {
    data: Vec<u8>,
    nrows: usize,
}

impl DramBackend {
    /// Allocates `rows` zeroed row slots.
    pub fn new(rows: usize) -> Self {
        let rows = rows.max(1);
        DramBackend {
            data: vec![0u8; rows * ROW_BYTES],
            nrows: rows,
        }
    }
}

impl TierBackend for DramBackend {
    fn spec(&self) -> BackendSpec {
        BackendSpec::Dram
    }

    fn rows(&self) -> usize {
        self.nrows
    }

    fn read_row(&self, slot: usize, out: &mut [u8]) {
        let off = slot * ROW_BYTES;
        out.copy_from_slice(&self.data[off..off + ROW_BYTES]);
    }

    fn write_row(&mut self, slot: usize, data: &[u8]) {
        let off = slot * ROW_BYTES;
        self.data[off..off + ROW_BYTES].copy_from_slice(data);
    }
}

// `recmg_mmap` (set by build.rs) limits this FFI to macOS and 64-bit
// Linux: the only targets where the constants below hold AND `off_t` is
// guaranteed 64 bits, so the `offset: OffT = i64` declaration matches the
// real ABI. Other Unix platforms fall back to heap storage rather than
// risk an undefined call.
#[cfg(recmg_mmap)]
mod sys {
    use std::ffi::c_void;

    /// `off_t` on the gated targets (macOS always; Linux with 64-bit
    /// pointers under both glibc and musl).
    pub type OffT = i64;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 0x01;
    pub const MADV_RANDOM: i32 = 1;
    pub const MADV_SEQUENTIAL: i32 = 2;
    pub const MADV_WILLNEED: i32 = 3;
    pub const MADV_DONTNEED: i32 = 4;

    // std already links libc on every Unix target; declaring the three
    // calls we need avoids a dependency the offline build cannot add.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: OffT,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

#[cfg(unix)]
fn temp_backend_path(tag: &str) -> std::path::PathBuf {
    let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "recmg-sdm-{}-{}-{}.bin",
        std::process::id(),
        tag,
        seq
    ))
}

/// Rows in an `mmap`'d temp file: byte-addressable loads/stores with
/// page-cache (cached host memory) semantics. The mapping and the file
/// are released in `Drop`. Only built on targets where the hand-rolled
/// mmap FFI is ABI-sound (see build.rs); elsewhere
/// [`BackendSpec::MappedFile`] degrades to heap storage.
#[cfg(recmg_mmap)]
pub struct MappedFileBackend {
    ptr: *mut u8,
    len: usize,
    nrows: usize,
    path: std::path::PathBuf,
    // Held only so the fd outlives the mapping on every platform.
    _file: std::fs::File,
}

// SAFETY: the mapping is private to this backend; all writes go through
// `&mut self` and reads through `&self`, so the usual borrow rules give
// the same guarantees a `Vec<u8>` would have.
#[cfg(recmg_mmap)]
unsafe impl Send for MappedFileBackend {}
#[cfg(recmg_mmap)]
unsafe impl Sync for MappedFileBackend {}

#[cfg(recmg_mmap)]
impl fmt::Debug for MappedFileBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedFileBackend")
            .field("rows", &self.nrows)
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

#[cfg(recmg_mmap)]
impl MappedFileBackend {
    /// Creates, sizes, and maps a fresh temp file of `rows` row slots.
    ///
    /// # Panics
    ///
    /// Panics if the temp file cannot be created or mapped (an
    /// environment failure, not a recoverable serving condition).
    pub fn new(rows: usize) -> Self {
        use std::os::unix::io::AsRawFd;
        let rows = rows.max(1);
        let len = rows * ROW_BYTES;
        let path = temp_backend_path("map");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .expect("create mapped-file backend temp file");
        file.set_len(len as u64)
            .expect("size mapped-file backend temp file");
        // SAFETY: fd is valid and sized to `len`; MAP_SHARED over our own
        // private temp file aliases nothing else in the process.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        assert!(
            !std::ptr::eq(ptr, usize::MAX as *mut std::ffi::c_void),
            "mmap failed for mapped-file backend"
        );
        LIVE_BACKEND_FILES.fetch_add(1, Ordering::SeqCst);
        MappedFileBackend {
            ptr: ptr.cast::<u8>(),
            len,
            nrows: rows,
            path,
            _file: file,
        }
    }
}

#[cfg(recmg_mmap)]
impl TierBackend for MappedFileBackend {
    fn spec(&self) -> BackendSpec {
        BackendSpec::MappedFile
    }

    fn rows(&self) -> usize {
        self.nrows
    }

    fn read_row(&self, slot: usize, out: &mut [u8]) {
        assert!(slot < self.nrows, "row slot out of range");
        assert_eq!(out.len(), ROW_BYTES, "row buffer must be ROW_BYTES");
        // SAFETY: slot bound checked above; the mapping spans nrows rows.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.ptr.add(slot * ROW_BYTES),
                out.as_mut_ptr(),
                ROW_BYTES,
            );
        }
    }

    fn write_row(&mut self, slot: usize, data: &[u8]) {
        assert!(slot < self.nrows, "row slot out of range");
        assert_eq!(data.len(), ROW_BYTES, "row buffer must be ROW_BYTES");
        // SAFETY: slot bound checked above; `&mut self` excludes readers.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(slot * ROW_BYTES), ROW_BYTES);
        }
    }

    fn advise(&mut self, advice: BackendAdvice) {
        let madv = match advice {
            BackendAdvice::Random => sys::MADV_RANDOM,
            BackendAdvice::Sequential => sys::MADV_SEQUENTIAL,
            BackendAdvice::WillNeed => sys::MADV_WILLNEED,
            BackendAdvice::DontNeed => sys::MADV_DONTNEED,
        };
        // SAFETY: the mapping is live for the life of `self`. madvise is
        // advisory — a failure (e.g. unsupported advice) is ignorable.
        unsafe {
            let _ = sys::madvise(self.ptr.cast(), self.len, madv);
        }
    }
}

#[cfg(recmg_mmap)]
impl Drop for MappedFileBackend {
    fn drop(&mut self) {
        // SAFETY: mapping created in `new` with exactly this ptr/len and
        // never remapped.
        unsafe {
            let _ = sys::munmap(self.ptr.cast(), self.len);
        }
        let _ = std::fs::remove_file(&self.path);
        LIVE_BACKEND_FILES.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Rows in a plain temp file accessed with positioned reads/writes —
/// block-addressable storage where every row access is an explicit
/// syscall. (`O_DIRECT` is deliberately not used: its alignment contract
/// is filesystem-specific and the measured-syscall cost is the semantics
/// the ladder needs.) The file is removed in `Drop`.
#[cfg(unix)]
#[derive(Debug)]
pub struct FileBackend {
    file: std::fs::File,
    path: std::path::PathBuf,
    nrows: usize,
}

#[cfg(unix)]
impl FileBackend {
    /// Creates and sizes a fresh temp file of `rows` row slots.
    ///
    /// # Panics
    ///
    /// Panics if the temp file cannot be created.
    pub fn new(rows: usize) -> Self {
        let rows = rows.max(1);
        let path = temp_backend_path("file");
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .expect("create file backend temp file");
        file.set_len((rows * ROW_BYTES) as u64)
            .expect("size file backend temp file");
        LIVE_BACKEND_FILES.fetch_add(1, Ordering::SeqCst);
        FileBackend {
            file,
            path,
            nrows: rows,
        }
    }
}

#[cfg(unix)]
impl TierBackend for FileBackend {
    fn spec(&self) -> BackendSpec {
        BackendSpec::File
    }

    fn rows(&self) -> usize {
        self.nrows
    }

    fn read_row(&self, slot: usize, out: &mut [u8]) {
        use std::os::unix::fs::FileExt;
        assert!(slot < self.nrows, "row slot out of range");
        self.file
            .read_exact_at(out, (slot * ROW_BYTES) as u64)
            .expect("pread on file backend");
    }

    fn write_row(&mut self, slot: usize, data: &[u8]) {
        use std::os::unix::fs::FileExt;
        assert!(slot < self.nrows, "row slot out of range");
        self.file
            .write_all_at(data, (slot * ROW_BYTES) as u64)
            .expect("pwrite on file backend");
    }
}

#[cfg(unix)]
impl Drop for FileBackend {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        LIVE_BACKEND_FILES.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Key → slot bookkeeping over one backend: the row bytes of a
/// [`RecMgBuffer`](crate::RecMgBuffer). The invariant the buffer
/// maintains is `slots.keys() == resident metadata keys` — a row exists
/// exactly for the vectors the `GpuBuffer` says are resident.
pub(crate) struct RowStore {
    backend: Box<dyn TierBackend>,
    spec: BackendSpec,
    slots: HashMap<VectorKey, usize>,
    free: Vec<usize>,
}

impl fmt::Debug for RowStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RowStore")
            .field("spec", &self.spec)
            .field("rows", &self.backend.rows())
            .field("resident", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl Clone for RowStore {
    fn clone(&self) -> Self {
        // Rows are a pure function of the key: a clone re-synthesizes
        // instead of copying bytes tier-to-tier.
        let mut store = RowStore::new(self.spec, self.backend.rows());
        for &key in self.slots.keys() {
            store.insert(key);
        }
        store
    }
}

impl RowStore {
    /// A store of `rows` slots on a fresh backend of `spec`, hinted for
    /// random access (the demand path's pattern).
    pub(crate) fn new(spec: BackendSpec, rows: usize) -> Self {
        let rows = rows.max(1);
        let mut backend = spec.create(rows);
        backend.advise(BackendAdvice::Random);
        RowStore {
            backend,
            spec,
            slots: HashMap::with_capacity(rows.min(1 << 20)),
            free: (0..rows).rev().collect(),
        }
    }

    pub(crate) fn spec(&self) -> BackendSpec {
        self.spec
    }

    #[cfg(test)]
    pub(crate) fn contains(&self, key: VectorKey) -> bool {
        self.slots.contains_key(&key)
    }

    /// Synthesizes and installs `key`'s row (no-op when resident).
    ///
    /// # Panics
    ///
    /// Panics when no slot is free — the caller must evict from the
    /// metadata buffer (and [`remove`](RowStore::remove) here) first.
    pub(crate) fn insert(&mut self, key: VectorKey) {
        if self.slots.contains_key(&key) {
            return;
        }
        let slot = self
            .free
            .pop()
            .expect("row store full: metadata buffer must evict first");
        self.backend.fill_batch(&[(slot, key)]);
        self.slots.insert(key, slot);
    }

    /// Frees `key`'s slot (no-op when absent).
    pub(crate) fn remove(&mut self, key: VectorKey) {
        if let Some(slot) = self.slots.remove(&key) {
            self.free.push(slot);
        }
    }

    /// Reads `key`'s row into `out`; `false` when not resident.
    pub(crate) fn read(&self, key: VectorKey, out: &mut [u8]) -> bool {
        match self.slots.get(&key) {
            Some(&slot) => {
                self.backend.read_row(slot, out);
                true
            }
            None => false,
        }
    }

    /// The blocking miss path: install `key`'s row, then read it back —
    /// the demand fetch crosses the tier once for the write and once for
    /// the serve.
    pub(crate) fn read_through(&mut self, key: VectorKey, out: &mut [u8]) {
        self.insert(key);
        let resident = self.read(key, out);
        debug_assert!(resident, "read_through installed the row above");
    }

    /// Rebuilds the store on a fresh backend of `spec` with `rows` slots,
    /// keeping exactly `resident` keys (rows re-synthesized — the old
    /// backend, and any temp file it holds, is dropped here).
    pub(crate) fn rebind(&mut self, spec: BackendSpec, rows: usize, resident: &[VectorKey]) {
        let mut store = RowStore::new(spec, rows.max(resident.len()));
        for &key in resident {
            store.insert(key);
        }
        *self = store;
    }
}

/// One tier's measured probe results (nanoseconds per row operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierCalibration {
    /// Tier name as declared in the topology.
    pub tier: String,
    /// Backend probed ([`BackendSpec::name`]).
    pub backend: &'static str,
    /// Rows the probe touched.
    pub probe_rows: usize,
    /// Measured resident read (the tier's hit cost).
    pub hit_ns: u64,
    /// Measured read-through — synthesize + install + read back (the
    /// tier's blocking miss cost).
    pub miss_ns: u64,
    /// Measured install — synthesize + write (the tier's fill cost).
    pub fill_ns: u64,
}

impl TierCalibration {
    /// The measured numbers as a [`TierCost`] (no injected penalty).
    pub fn cost(&self) -> TierCost {
        TierCost::synthetic(self.hit_ns, self.miss_ns, self.fill_ns)
    }

    /// One JSON object (hand-rolled, like every report in this crate).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"tier\": \"{}\", \"backend\": \"{}\", \"probe_rows\": {}, ",
                "\"hit_ns\": {}, \"miss_ns\": {}, \"fill_ns\": {}}}"
            ),
            self.tier, self.backend, self.probe_rows, self.hit_ns, self.miss_ns, self.fill_ns
        )
    }
}

/// The bind-time calibration results of every probed tier (empty when the
/// topology had no [`MemoryTier::calibrated`](crate::MemoryTier::calibrated)
/// tier). Carried by the system and surfaced in
/// [`EngineReport`](crate::EngineReport)/bench JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalibrationReport {
    /// One entry per calibrated tier, in topology (fast → slow) order.
    pub tiers: Vec<TierCalibration>,
}

impl CalibrationReport {
    /// `[{...}, ...]` — a JSON array of per-tier calibrations.
    pub fn to_json(&self) -> String {
        let tiers: Vec<String> = self.tiers.iter().map(TierCalibration::to_json).collect();
        format!("[{}]", tiers.join(", "))
    }
}

/// Runs the bind-time probe against a fresh backend of `spec`: randomized
/// installs (fill), randomized resident reads (hit), and randomized
/// read-throughs (miss), each averaged over the probe set and clamped to
/// ≥ 1 ns. `rows` bounds the probe footprint (typically the tier's
/// capacity); the probe itself touches at most 256 rows so bind time
/// stays sub-millisecond.
pub fn calibrate(spec: BackendSpec, rows: usize, tier: &str) -> TierCalibration {
    let probe_rows = rows.clamp(1, 256);
    let mut backend = spec.create(probe_rows);
    let mut state = 0x00c0_ffee_u64 ^ probe_rows as u64;
    let mut order: Vec<usize> = (0..probe_rows).collect();
    // Fisher–Yates off splitmix64: the probe's only randomness source
    // (no rand dependency in this crate).
    for i in (1..probe_rows).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    // Probe keys live in the top table id so they never collide with a
    // real workload's rows (table ids pack into 16 bits).
    let key_of = |slot: usize| {
        VectorKey::new(
            recmg_trace::TableId(0xFFFF),
            recmg_trace::RowId(slot as u64),
        )
    };
    let mut row = [0u8; ROW_BYTES];

    backend.advise(BackendAdvice::Sequential);
    let start = Instant::now();
    for &slot in &order {
        synth_row(key_of(slot), &mut row);
        backend.write_row(slot, &row);
    }
    let fill_ns = per_op_ns(start, probe_rows);

    backend.advise(BackendAdvice::Random);
    const READ_PASSES: usize = 4;
    let start = Instant::now();
    for _ in 0..READ_PASSES {
        for &slot in &order {
            backend.read_row(slot, &mut row);
        }
    }
    let hit_ns = per_op_ns(start, probe_rows * READ_PASSES);

    let start = Instant::now();
    for &slot in &order {
        synth_row(key_of(slot), &mut row);
        backend.write_row(slot, &row);
        backend.read_row(slot, &mut row);
    }
    // A read-through miss decomposes as install (fill) + serve (hit), so
    // its measured cost is clamped into [max(hit, fill), hit + fill]:
    // below the max, timer noise inverted the ordering on fast media;
    // above the sum, the probe double-counted overhead its parts already
    // carry. The upper clamp is also what makes the async fill plane's
    // deferred-miss charge (`miss − fill`) never exceed a hit.
    let miss_ns = per_op_ns(start, probe_rows)
        .max(hit_ns.max(fill_ns))
        .min(hit_ns.saturating_add(fill_ns));

    TierCalibration {
        tier: tier.to_string(),
        backend: spec.name(),
        probe_rows,
        hit_ns,
        miss_ns,
        fill_ns,
    }
}

fn per_op_ns(start: Instant, ops: usize) -> u64 {
    let total = start.elapsed().as_nanos() as u64;
    (total / ops.max(1) as u64).max(1)
}

/// How demand misses reach slow storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillMode {
    /// A miss installs its row inline (read-through) — the historical
    /// behaviour, and the right one for DRAM-only topologies.
    #[default]
    Blocking,
    /// A miss is served at slow cost immediately and queued on the
    /// [`FillQueue`]; background fill threads install the row and promote
    /// it under the shard lock when the fill lands.
    Async {
        /// Background fill threads a session spawns (≥ 1).
        threads: usize,
        /// Bound on queued (uncoalesced) fills; excess misses are dropped
        /// and simply miss again later.
        queue_depth: usize,
    },
}

impl FillMode {
    /// Stable lowercase name (report/bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            FillMode::Blocking => "blocking",
            FillMode::Async { .. } => "async",
        }
    }
}

/// Counters of the async fill plane, reported as deltas per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FillPlaneReport {
    /// Misses accepted onto the queue.
    pub queued: u64,
    /// Misses coalesced onto an already-queued fill of the same key.
    pub coalesced: u64,
    /// Misses dropped because the queue was at its bound.
    pub dropped: u64,
    /// Fills that landed (row installed and key promoted).
    pub promoted: u64,
}

impl FillPlaneReport {
    /// Counter-wise `self - before` (saturating).
    pub fn delta_since(&self, before: &FillPlaneReport) -> FillPlaneReport {
        FillPlaneReport {
            queued: self.queued.saturating_sub(before.queued),
            coalesced: self.coalesced.saturating_sub(before.coalesced),
            dropped: self.dropped.saturating_sub(before.dropped),
            promoted: self.promoted.saturating_sub(before.promoted),
        }
    }

    /// One JSON object with fixed field names.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"queued\": {}, \"coalesced\": {}, \"dropped\": {}, ",
                "\"promoted\": {}}}"
            ),
            self.queued, self.coalesced, self.dropped, self.promoted
        )
    }
}

/// A shard buffer's handle onto the system-wide [`FillQueue`]: presence
/// of a handle is what switches the buffer's miss path to async.
#[derive(Debug, Clone)]
pub(crate) struct FillHandle {
    /// The shared queue.
    pub(crate) queue: std::sync::Arc<FillQueue>,
    /// The owning shard's id (fill threads lock this shard to promote).
    pub(crate) shard: usize,
}

#[derive(Debug, Default)]
struct FillInner {
    /// `(shard, key, fill_ns)`: the deferred fill cost travels with the
    /// entry so the promotion charges the *origin* tier's fill cost even
    /// if the shard migrates (re-prices) before the fill lands — the
    /// miss's `miss − fill` charge and the promotion's `fill` charge then
    /// always sum to the origin tier's `miss_ns`.
    queue: VecDeque<(usize, VectorKey, u64)>,
    pending: HashSet<(usize, VectorKey)>,
    /// Lives under the mutex — not an atomic — so `close()` cannot flip
    /// it between a waiter's empty-queue check and its `Condvar::wait`;
    /// an atomic flag here loses that wakeup and hangs session drain.
    closed: bool,
}

/// The bounded, duplicate-coalescing miss queue shared by every shard of
/// an async-fill system. Pushes come from workers under their shard lock;
/// pops come from the session's background fill threads.
#[derive(Debug)]
pub(crate) struct FillQueue {
    inner: Mutex<FillInner>,
    available: Condvar,
    capacity: usize,
    queued: AtomicU64,
    coalesced: AtomicU64,
    dropped: AtomicU64,
    promoted: AtomicU64,
}

impl FillQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        FillQueue {
            inner: Mutex::new(FillInner::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            queued: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            promoted: AtomicU64::new(0),
        }
    }

    /// Enqueues a missed key for shard `shard`, carrying the fill cost
    /// the miss deferred (`fill_ns` at the tier the miss was served on).
    /// Duplicates of an in-flight fill coalesce; a full queue drops (the
    /// key will miss again and retry).
    pub(crate) fn push(&self, shard: usize, key: VectorKey, fill_ns: u64) {
        let mut inner = self.inner.lock().expect("fill queue lock");
        if inner.pending.contains(&(shard, key)) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if inner.queue.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        inner.pending.insert((shard, key));
        inner.queue.push_back((shard, key, fill_ns));
        self.queued.fetch_add(1, Ordering::Relaxed);
        drop(inner);
        self.available.notify_one();
    }

    /// Blocks for the next fill; `None` once the queue is closed *and*
    /// empty (a close drains the backlog before fill threads exit).
    pub(crate) fn pop_wait(&self) -> Option<(usize, VectorKey, u64)> {
        let mut inner = self.inner.lock().expect("fill queue lock");
        loop {
            if let Some(entry) = inner.queue.pop_front() {
                inner.pending.remove(&(entry.0, entry.1));
                return Some(entry);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("fill queue wait");
        }
    }

    /// Non-blocking pop (synchronous drains outside a session).
    pub(crate) fn pop_now(&self) -> Option<(usize, VectorKey, u64)> {
        let mut inner = self.inner.lock().expect("fill queue lock");
        let entry = inner.queue.pop_front();
        if let Some(e) = entry {
            inner.pending.remove(&(e.0, e.1));
        }
        entry
    }

    /// Re-arms the queue for a new session (a drained session leaves it
    /// closed).
    pub(crate) fn open(&self) {
        self.inner.lock().expect("fill queue lock").closed = false;
    }

    /// Wakes every fill thread to drain the backlog and exit. The flag
    /// flips under the `inner` lock: a fill thread is either before its
    /// predicate check (it will observe `closed`) or parked in `wait`
    /// (the notify reaches it) — never in between.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("fill queue lock").closed = true;
        self.available.notify_all();
    }

    /// Records one landed promotion.
    pub(crate) fn note_promoted(&self) {
        self.promoted.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative counters (callers snapshot-and-delta per run).
    pub(crate) fn report(&self) -> FillPlaneReport {
        FillPlaneReport {
            queued: self.queued.load(Ordering::Acquire),
            coalesced: self.coalesced.load(Ordering::Acquire),
            dropped: self.dropped.load(Ordering::Acquire),
            promoted: self.promoted.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(7), RowId(r))
    }

    fn specs() -> Vec<BackendSpec> {
        vec![
            BackendSpec::Dram,
            BackendSpec::MappedFile,
            BackendSpec::File,
        ]
    }

    #[test]
    fn synth_row_is_deterministic_and_key_sensitive() {
        let mut a = [0u8; ROW_BYTES];
        let mut b = [0u8; ROW_BYTES];
        synth_row(key(1), &mut a);
        synth_row(key(1), &mut b);
        assert_eq!(a, b);
        synth_row(key(2), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn backends_round_trip_identical_bytes() {
        let mut reference: Option<Vec<[u8; ROW_BYTES]>> = None;
        for spec in specs() {
            let mut backend = spec.create(8);
            assert_eq!(backend.rows(), 8);
            let fills: Vec<(usize, VectorKey)> = (0..8).map(|s| (s, key(s as u64 * 3))).collect();
            backend.fill_batch(&fills);
            backend.advise(BackendAdvice::WillNeed);
            let mut rows = Vec::new();
            for slot in 0..8 {
                let mut row = [0u8; ROW_BYTES];
                backend.read_row(slot, &mut row);
                rows.push(row);
            }
            match &reference {
                None => reference = Some(rows),
                Some(expect) => assert_eq!(expect, &rows, "{} diverged", spec.name()),
            }
        }
    }

    #[cfg(recmg_mmap)]
    #[test]
    fn file_backends_clean_up_temp_files() {
        let before = live_backend_files();
        {
            let mapped = MappedFileBackend::new(4);
            let file = FileBackend::new(4);
            assert_eq!(live_backend_files(), before + 2);
            assert!(mapped.path.exists());
            assert!(file.path.exists());
            drop((mapped, file));
        }
        assert_eq!(live_backend_files(), before);
    }

    #[test]
    fn row_store_tracks_slots_and_rebinds() {
        let mut store = RowStore::new(BackendSpec::Dram, 2);
        store.insert(key(1));
        store.insert(key(2));
        assert!(store.contains(key(1)));
        let mut row = [0u8; ROW_BYTES];
        assert!(store.read(key(2), &mut row));
        let mut expect = [0u8; ROW_BYTES];
        synth_row(key(2), &mut expect);
        assert_eq!(row, expect);
        // Free the slot and reuse it.
        store.remove(key(1));
        store.insert(key(3));
        assert!(!store.contains(key(1)));
        // Rebind onto a different backend keeps exactly the residents.
        store.rebind(BackendSpec::File, 4, &[key(3)]);
        assert_eq!(store.spec(), BackendSpec::File);
        assert!(store.contains(key(3)));
        assert!(!store.contains(key(2)));
        assert!(store.read(key(3), &mut row));
        synth_row(key(3), &mut expect);
        assert_eq!(row, expect);
    }

    #[test]
    #[should_panic(expected = "row store full")]
    fn row_store_full_panics() {
        let mut store = RowStore::new(BackendSpec::Dram, 1);
        store.insert(key(1));
        store.insert(key(2));
    }

    #[test]
    fn row_store_clone_resynthesizes() {
        let mut store = RowStore::new(BackendSpec::Dram, 4);
        store.insert(key(9));
        let clone = store.clone();
        let mut a = [0u8; ROW_BYTES];
        let mut b = [0u8; ROW_BYTES];
        assert!(store.read(key(9), &mut a));
        assert!(clone.read(key(9), &mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn calibration_reports_nonzero_ordered_costs() {
        for spec in specs() {
            let cal = calibrate(spec, 4096, "probe");
            assert_eq!(cal.probe_rows, 256);
            assert!(cal.hit_ns >= 1, "{}", spec.name());
            assert!(cal.fill_ns >= 1, "{}", spec.name());
            assert!(
                cal.miss_ns >= cal.hit_ns.max(cal.fill_ns),
                "{}",
                spec.name()
            );
            let cost = cal.cost();
            assert_eq!(cost.hit_ns, cal.hit_ns);
            assert_eq!(cost.miss_penalty, std::time::Duration::ZERO);
            let json = cal.to_json();
            assert!(json.contains("\"backend\": "));
            assert!(json.contains(spec.name()));
        }
    }

    #[test]
    fn calibration_probe_clamps_to_capacity() {
        let cal = calibrate(BackendSpec::Dram, 3, "tiny");
        assert_eq!(cal.probe_rows, 3);
    }

    #[test]
    fn fill_queue_coalesces_bounds_and_drains() {
        let q = FillQueue::new(2);
        q.push(0, key(1), 40);
        q.push(0, key(1), 40); // coalesced
        q.push(1, key(1), 70); // distinct shard: queued
        q.push(0, key(2), 40); // over capacity: dropped
        let r = q.report();
        assert_eq!((r.queued, r.coalesced, r.dropped), (2, 1, 1));
        // Entries carry the fill cost the miss deferred.
        assert_eq!(q.pop_now(), Some((0, key(1), 40)));
        // Popping clears pending: the same key may queue again.
        q.push(0, key(1), 40);
        assert_eq!(q.report().queued, 3);
        q.close();
        // Closed but non-empty: backlog still drains.
        assert_eq!(q.pop_wait(), Some((1, key(1), 70)));
        assert_eq!(q.pop_wait(), Some((0, key(1), 40)));
        assert_eq!(q.pop_wait(), None);
        q.open();
        q.push(2, key(5), 15);
        assert_eq!(q.pop_now(), Some((2, key(5), 15)));
        q.note_promoted();
        assert_eq!(q.report().promoted, 1);
    }

    #[test]
    fn fill_queue_close_always_wakes_a_parked_waiter() {
        // Regression for the lost-wakeup race: `close()` used to flip an
        // atomic flag outside the `inner` mutex, so it could land between
        // a waiter's empty-queue check and its `Condvar::wait`, leaving
        // the waiter parked forever. With the flag under the mutex this
        // loop can never hang.
        for round in 0u64..200 {
            let q = std::sync::Arc::new(FillQueue::new(4));
            let waiter = {
                let q = std::sync::Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut drained = 0;
                    while q.pop_wait().is_some() {
                        drained += 1;
                    }
                    drained
                })
            };
            if round % 2 == 0 {
                q.push(0, key(round), 10);
            }
            q.close();
            let drained = waiter.join().expect("fill waiter exits");
            assert!(drained <= 1);
        }
    }

    #[test]
    fn fill_plane_report_delta_and_json() {
        let before = FillPlaneReport {
            queued: 5,
            coalesced: 1,
            dropped: 0,
            promoted: 4,
        };
        let now = FillPlaneReport {
            queued: 9,
            coalesced: 3,
            dropped: 2,
            promoted: 8,
        };
        let d = now.delta_since(&before);
        assert_eq!((d.queued, d.coalesced, d.dropped, d.promoted), (4, 2, 2, 4));
        let json = d.to_json();
        for field in ["queued", "coalesced", "dropped", "promoted"] {
            assert!(json.contains(&format!("\"{field}\": ")), "{json}");
        }
    }

    #[test]
    fn backend_spec_names_are_stable() {
        assert_eq!(BackendSpec::Dram.name(), "dram");
        assert_eq!(BackendSpec::MappedFile.name(), "mapped_file");
        assert_eq!(BackendSpec::File.name(), "file");
        assert_eq!(FillMode::Blocking.name(), "blocking");
        assert_eq!(
            FillMode::Async {
                threads: 1,
                queue_depth: 8
            }
            .name(),
            "async"
        );
    }
}
