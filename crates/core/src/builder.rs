//! Fluent construction of tier-aware sharded systems.
//!
//! [`SystemBuilder`] is the one construction path for
//! [`ShardedRecMgSystem`]s: the memory hierarchy ([`TierTopology`]), the
//! shard placement ([`PlacementPolicy`]), and the default guidance
//! scheduling ([`GuidanceMode`]) are explicit, named, and individually
//! defaultable.
//!
//! ```
//! use recmg_core::{
//!     CachingModel, FrequencyRankCodec, HotFirst, RecMgConfig, SystemBuilder, TierTopology,
//! };
//! use recmg_trace::{RowId, TableId, VectorKey};
//!
//! let cfg = RecMgConfig::tiny();
//! let caching = CachingModel::new(&cfg);
//! let codec =
//!     FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]);
//! let system = SystemBuilder::new(&caching, None, codec)
//!     .shards(4)
//!     .topology(TierTopology::two_tier(32, 96))
//!     .placement(HotFirst)
//!     .build();
//! assert_eq!(system.num_shards(), 4);
//! assert_eq!(system.capacity(), 128);
//! ```

use std::sync::Arc;

use crate::backend::{FillHandle, FillMode, FillQueue};
use crate::caching_model::CachingModel;
use crate::codec::FrequencyRankCodec;
use crate::config::{GuidancePrecision, SketchConfig};
use crate::engine::GuidanceMode;
use crate::prefetch_model::PrefetchModel;
use crate::sharding::{GuidanceCtx, Shard, ShardRouter, ShardedRecMgSystem};
use crate::system::{RecMgSystem, TrainedRecMg};
use crate::tier::{EvenSplit, PlacementPolicy, TierTopology};

/// Configures and assembles a [`ShardedRecMgSystem`] over an explicit
/// memory hierarchy.
///
/// Defaults: 1 shard, [`EvenSplit`] placement, the default
/// [`GuidanceMode`]. The topology is mandatory — set it with
/// [`topology`](SystemBuilder::topology), or use
/// [`capacity`](SystemBuilder::capacity) for the historical single-tier
/// layout.
#[derive(Debug)]
pub struct SystemBuilder<'a> {
    caching: &'a CachingModel,
    prefetch: Option<&'a PrefetchModel>,
    codec: FrequencyRankCodec,
    shards: usize,
    topology: Option<TierTopology>,
    placement: Arc<dyn PlacementPolicy>,
    guidance: GuidanceMode,
    sketch: SketchConfig,
    precision: GuidancePrecision,
    fill: FillMode,
}

impl<'a> SystemBuilder<'a> {
    /// Starts a builder from trained (or untrained) model parts. Pass
    /// `prefetch: None` for the caching-model-only configuration.
    pub fn new(
        caching: &'a CachingModel,
        prefetch: Option<&'a PrefetchModel>,
        codec: FrequencyRankCodec,
    ) -> Self {
        SystemBuilder {
            caching,
            prefetch,
            codec,
            shards: 1,
            topology: None,
            placement: Arc::new(EvenSplit),
            guidance: GuidanceMode::default(),
            sketch: SketchConfig::default(),
            precision: GuidancePrecision::default(),
            fill: FillMode::default(),
        }
    }

    /// Starts a builder from full training artifacts.
    pub fn from_trained(trained: &'a TrainedRecMg) -> Self {
        Self::new(
            &trained.caching,
            Some(&trained.prefetch),
            trained.codec.clone(),
        )
    }

    /// Number of shards (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The memory hierarchy the system is placed onto.
    pub fn topology(mut self, topology: TierTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Shorthand for the historical flat layout:
    /// `.topology(TierTopology::uniform(capacity))`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn capacity(self, capacity: usize) -> Self {
        self.topology(TierTopology::uniform(capacity))
    }

    /// The placement policy sizing shard buffers and routing them to
    /// tiers (default [`EvenSplit`]). The policy stays with the system:
    /// [`ShardedRecMgSystem::rebalance`] re-applies it against live
    /// per-shard stats.
    pub fn placement(mut self, placement: impl PlacementPolicy + 'static) -> Self {
        self.placement = Arc::new(placement);
        self
    }

    /// Default guidance scheduling for sessions built over this system
    /// (a [`SessionBuilder`](crate::SessionBuilder) without an explicit
    /// guidance mode inherits it).
    pub fn guidance(mut self, guidance: GuidanceMode) -> Self {
        self.guidance = guidance;
        self
    }

    /// The configured default guidance mode.
    pub fn guidance_mode(&self) -> GuidanceMode {
        self.guidance
    }

    /// Weight precision of the compiled guidance models (default
    /// [`GuidancePrecision::F32`]). [`GuidancePrecision::Int8`] quantizes
    /// every weight matrix at build time — §VI-C's quantization
    /// optimization — shrinking guidance weight traffic ~4× at a bounded
    /// hit-rate delta.
    pub fn precision(mut self, precision: GuidancePrecision) -> Self {
        self.precision = precision;
        self
    }

    /// The configured guidance-model precision.
    pub fn guidance_precision(&self) -> GuidancePrecision {
        self.precision
    }

    /// How slow-tier misses are filled (default [`FillMode::Blocking`]).
    /// [`FillMode::Async`] routes every miss through a bounded,
    /// coalescing queue drained by background fill threads (spawned by
    /// the serving session): the miss itself pays only the slow-read
    /// cost, and the install cost lands later when the fill promotes.
    pub fn fill_mode(mut self, fill: FillMode) -> Self {
        self.fill = fill;
        self
    }

    /// The configured fill mode.
    pub fn fill(&self) -> FillMode {
        self.fill
    }

    /// Shape of the per-shard working-set sketches (default
    /// [`SketchConfig::default`]): HLL register count, exact-mode
    /// threshold, and the sliding epoch window the phase-change trigger
    /// reads. Validated at build.
    pub fn sketch(mut self, sketch: SketchConfig) -> Self {
        self.sketch = sketch;
        self
    }

    /// Assembles the system: the placement policy runs once with no
    /// observed mass (its deterministic cold-start placement), and each
    /// shard's buffer is created in its assigned tier with that tier's
    /// cost model.
    ///
    /// # Panics
    ///
    /// Panics if no topology was set, `shards` is zero, or the sketch
    /// configuration is invalid.
    pub fn build(self) -> ShardedRecMgSystem {
        let mut topology = self
            .topology
            .expect("SystemBuilder needs a topology: call .topology(..) or .capacity(..)");
        self.sketch.validate();
        // Bind-time calibration: probe every tier marked `.calibrated()`
        // against its real backend and overwrite the injected cost with
        // measured numbers BEFORE placement runs, so policies compare
        // tiers by what the hardware actually does.
        let calibration = topology.calibrate();
        // A table-aware policy (table_capacity > 0) gets a pin-capable
        // router plus a per-shard demand profiler; every other policy pays
        // nothing — no pin directory, no profiling on the demand path.
        let table_capacity = self.placement.table_capacity();
        let router = ShardRouter::with_pin_capacity(self.shards, table_capacity);
        let cfg = self.caching.config().clone();
        let placements = self.placement.place(self.shards, &topology, &[]);
        assert_eq!(
            placements.len(),
            self.shards,
            "placement policy must return one placement per shard"
        );
        let topology = Arc::new(topology);
        let fill_queue = match self.fill {
            FillMode::Async { queue_depth, .. } => Some(Arc::new(FillQueue::new(queue_depth))),
            FillMode::Blocking => None,
        };
        let shards: Vec<Shard> = placements
            .iter()
            .enumerate()
            .map(|(id, p)| {
                let mut shard = Shard::placed(id, cfg.eviction_speed, p, &topology, self.sketch);
                if table_capacity > 0 {
                    shard.profiler = Some(crate::table_profile::TableProfiler::new(table_capacity));
                }
                if let Some(queue) = &fill_queue {
                    shard.buffer.set_fill_handle(Some(FillHandle {
                        queue: Arc::clone(queue),
                        shard: id,
                    }));
                }
                shard
            })
            .collect();
        ShardedRecMgSystem {
            ctx: GuidanceCtx {
                caching: Arc::new(self.caching.compile_with(self.precision)),
                prefetch: self
                    .prefetch
                    .map(|p| Arc::new(p.compile_with(self.precision))),
                codec: Arc::new(self.codec),
                prefetch_warmup: RecMgSystem::PREFETCH_WARMUP.div_ceil(self.shards as u64),
                cfg,
                guidance_stride: 1,
                prefetch_gate: 0.10,
                topology,
                placement: self.placement,
                guidance_default: self.guidance,
                calibration: Arc::new(calibration),
                fill_mode: self.fill,
                fill_queue,
            },
            router,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RecMgConfig;
    use crate::tier::{HotFirst, WorkingSet};
    use recmg_trace::{RowId, TableId, VectorKey};

    fn parts() -> (CachingModel, PrefetchModel, FrequencyRankCodec) {
        let cfg = RecMgConfig::tiny();
        (
            CachingModel::new(&cfg),
            PrefetchModel::new(&cfg),
            FrequencyRankCodec::from_accesses(&[VectorKey::new(TableId(0), RowId(1))]),
        )
    }

    #[test]
    fn builder_defaults_reproduce_historical_layout() {
        let (cm, pm, codec) = parts();
        let sys = SystemBuilder::new(&cm, Some(&pm), codec)
            .shards(4)
            .capacity(10)
            .build();
        assert_eq!(sys.num_shards(), 4);
        // ceil(10/4) = 3 per shard, all in the single DRAM tier.
        assert_eq!(sys.capacity(), 12);
        for i in 0..4 {
            assert_eq!(sys.shard_buffer(i).capacity(), 3);
            assert_eq!(sys.shard_tier(i), 0);
        }
        assert_eq!(sys.topology().num_tiers(), 1);
        assert!(sys.has_prefetch());
    }

    #[test]
    fn builder_places_across_tiers() {
        let (cm, _pm, codec) = parts();
        let sys = SystemBuilder::new(&cm, None, codec)
            .shards(4)
            .topology(TierTopology::two_tier(16, 48))
            .placement(HotFirst)
            .build();
        // Cold start: even 16-vector shards, shard 0 in the fast tier.
        assert_eq!(sys.shard_tier(0), 0);
        for i in 1..4 {
            assert_eq!(sys.shard_tier(i), 1);
        }
        let usage = sys.tier_usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].shards, 1);
        assert_eq!(usage[1].shards, 3);
        assert_eq!(usage[0].capacity + usage[1].capacity, sys.capacity());
    }

    #[test]
    fn builder_threads_guidance_default() {
        let (cm, _pm, codec) = parts();
        let b = SystemBuilder::new(&cm, None, codec)
            .capacity(8)
            .guidance(GuidanceMode::Inline);
        assert_eq!(b.guidance_mode(), GuidanceMode::Inline);
        let sys = b.build();
        assert_eq!(sys.default_guidance(), GuidanceMode::Inline);
    }

    #[test]
    fn builder_keeps_placement_for_rebalance() {
        let (cm, _pm, codec) = parts();
        let sys = SystemBuilder::new(&cm, None, codec)
            .shards(2)
            .capacity(64)
            .placement(WorkingSet::default())
            .build();
        assert_eq!(sys.placement_name(), "working_set");
    }

    #[test]
    fn builder_enables_profiling_only_for_table_aware_placement() {
        let (cm, _pm, codec) = parts();
        let sys = SystemBuilder::new(&cm, None, codec)
            .shards(4)
            .topology(TierTopology::two_tier(64, 64))
            .placement(crate::table_profile::StatisticalPlacement::default())
            .build();
        assert_eq!(sys.placement_name(), "statistical");
        assert!(sys.router().pin_capacity() > 0);
        // Nothing observed yet → no profiles, no pins.
        assert!(sys.table_profiles().is_empty());
        let (cm2, _pm2, codec2) = parts();
        let plain = SystemBuilder::new(&cm2, None, codec2)
            .shards(4)
            .capacity(64)
            .build();
        assert_eq!(plain.router().pin_capacity(), 0);
        assert!(plain.table_profiles().is_empty());
    }

    #[test]
    #[should_panic(expected = "needs a topology")]
    fn builder_without_topology_panics() {
        let (cm, _pm, codec) = parts();
        let _ = SystemBuilder::new(&cm, None, codec).shards(2).build();
    }

    #[test]
    fn builder_calibrates_marked_tiers_before_placement() {
        let (cm, _pm, codec) = parts();
        let sys = SystemBuilder::new(&cm, None, codec)
            .shards(2)
            .topology(TierTopology::sdm_ladder(16, 32, 64))
            .build();
        let report = sys.calibration_report();
        assert_eq!(report.tiers.len(), 3);
        for cal in &report.tiers {
            assert!(cal.hit_ns > 0 && cal.fill_ns > 0);
            assert!(cal.miss_ns >= cal.hit_ns.max(cal.fill_ns));
        }
        // The measured costs are the live tier costs placement saw.
        for (i, cal) in report.tiers.iter().enumerate() {
            assert_eq!(sys.topology().tier(i).cost, cal.cost());
            assert!(!sys.topology().tier(i).calibrate, "flag must clear");
        }
    }

    #[test]
    fn builder_wires_async_fill_queue_to_every_shard() {
        use crate::backend::FillMode;
        let (cm, _pm, codec) = parts();
        let sys = SystemBuilder::new(&cm, None, codec)
            .shards(3)
            .capacity(12)
            .fill_mode(FillMode::Async {
                threads: 1,
                queue_depth: 8,
            })
            .build();
        assert!(matches!(sys.fill_mode(), FillMode::Async { .. }));
        for i in 0..3 {
            assert!(sys.shard_recmg_buffer(i).has_fill_handle());
        }
        let blocking = {
            let (cm2, _pm2, codec2) = parts();
            SystemBuilder::new(&cm2, None, codec2).capacity(8).build()
        };
        assert!(matches!(blocking.fill_mode(), FillMode::Blocking));
        assert!(!blocking.shard_recmg_buffer(0).has_fill_handle());
    }

    #[test]
    fn builder_threads_precision_into_compiled_models() {
        let (cm, pm, codec) = parts();
        let b = SystemBuilder::new(&cm, Some(&pm), codec).capacity(8);
        assert_eq!(b.guidance_precision(), GuidancePrecision::F32);
        let sys = b.precision(GuidancePrecision::Int8).build();
        assert!(sys.guidance_models_quantized());
    }
}
