//! Real-format trace loading for [`crate::session`].
//!
//! DLRM access traces in the wild come in two shapes: the Criteo
//! click-log TSV (one sample per line — a label, 13 dense integer
//! features, 26 categorical features as hex tokens) and Meta-style
//! per-table index streams (one line per table lookup: a table id and
//! its comma-separated row indices, as produced by the DLRM benchmark's
//! `--arch-embedding-size`/indices dumps). Both map onto the workspace's
//! [`VectorKey`] access model: each categorical column is an embedding
//! table, each token a row.
//!
//! Everything here is **streamed, not slurped**: parsers take any
//! [`BufRead`] and pull one line at a time, so a multi-gigabyte day of
//! Criteo never has to fit in memory. Two consumption paths share the
//! parsers:
//!
//! - [`FileTraceSource`] is a [`RequestSource`] that feeds a
//!   [`crate::ServingSession`] straight from the reader, grouping
//!   `queries_per_request` lines per request and pacing arrivals with an
//!   [`ArrivalProcess`] (external traces rarely carry timestamps).
//! - [`read_trace`] materializes a bounded prefix into a
//!   [`Trace`] for the replay/training paths that need random access
//!   ([`crate::TraceReplaySource`], [`crate::train_recmg`]).
//!
//! [`profile_trace`] makes a calibration pass over a prefix and
//! recommends a [`SketchConfig`] sized to the observed footprint, so the
//! working-set sketches ([`crate::sketch`]) get epoch/window defaults
//! matched to the trace instead of the synthetic-workload defaults.

use std::io::BufRead;
use std::time::Duration;

use crate::config::SketchConfig;
use crate::session::{ArrivalProcess, Pacer, Request, RequestSource};
use recmg_trace::{RowId, TableId, Trace, VectorKey};

/// Number of categorical (embedding-table) columns in the Criteo format.
pub const CRITEO_TABLES: usize = 26;
/// Number of dense columns preceding the categorical block.
const CRITEO_DENSE: usize = 13;

/// On-disk layout of a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Criteo click-log TSV: `label \t d1..d13 \t c1..c26`, categorical
    /// features as hex tokens, empty fields allowed. Each line is one
    /// query touching up to [`CRITEO_TABLES`] tables; hex tokens hash
    /// into `rows_per_table` rows per table.
    Criteo {
        /// Embedding rows per categorical table; hex tokens are hashed
        /// modulo this. Must be positive.
        rows_per_table: u64,
    },
    /// Per-table index stream: each line is `table<TAB>row[,row...]`
    /// (a Meta/DLRM-benchmark-style indices dump); consecutive lines up
    /// to a blank line form one query. Row ids are taken verbatim.
    PerTableIndices,
}

impl TraceFormat {
    fn validate(&self) {
        if let TraceFormat::Criteo { rows_per_table } = self {
            assert!(*rows_per_table > 0, "rows_per_table must be positive");
        }
    }
}

/// FNV-1a over a categorical token. Criteo's hex tokens are already
/// hashes, but re-hashing keeps the mapping uniform for any token
/// alphabet (and for non-Criteo TSVs with plain-string categories).
fn fnv1a(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses one Criteo TSV line into its embedding accesses: one
/// [`VectorKey`] per non-empty categorical column, in column order.
/// Returns `None` for lines with no categorical block at all (blank or
/// truncated lines), which callers should skip.
pub fn parse_criteo_line(line: &str, rows_per_table: u64) -> Option<Vec<VectorKey>> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() {
        return None;
    }
    let mut keys = Vec::with_capacity(CRITEO_TABLES);
    // Columns: 1 label + 13 dense + 26 categorical. Truncated tails are
    // tolerated (some public dumps drop trailing empty fields).
    for (col, field) in line.split('\t').enumerate().skip(1 + CRITEO_DENSE) {
        let table = col - 1 - CRITEO_DENSE;
        if table >= CRITEO_TABLES {
            break;
        }
        if field.is_empty() {
            continue;
        }
        keys.push(VectorKey::new(
            TableId(table as u32),
            RowId(fnv1a(field) % rows_per_table),
        ));
    }
    if keys.is_empty() {
        None
    } else {
        Some(keys)
    }
}

/// Parses one per-table index line (`table<TAB>row[,row...]`, spaces
/// tolerated) into its accesses. Returns `None` for blank lines (query
/// separators) and lines that do not parse.
pub fn parse_indices_line(line: &str) -> Option<Vec<VectorKey>> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let (table, rows) = line.split_once(['\t', ' '])?;
    let table: u32 = table.trim().parse().ok()?;
    let keys: Vec<VectorKey> = rows
        .split(',')
        .filter_map(|r| r.trim().parse::<u64>().ok())
        .map(|row| VectorKey::new(TableId(table), RowId(row)))
        .collect();
    if keys.is_empty() {
        None
    } else {
        Some(keys)
    }
}

/// Pulls the next query off `reader`: for Criteo, one parseable line;
/// for per-table indices, all lines up to the next blank line (one line
/// per table). Returns `None` at end of stream.
fn next_query<R: BufRead>(
    reader: &mut R,
    format: TraceFormat,
    line: &mut String,
) -> Option<Vec<VectorKey>> {
    match format {
        TraceFormat::Criteo { rows_per_table } => loop {
            line.clear();
            if reader.read_line(line).ok()? == 0 {
                return None;
            }
            if let Some(keys) = parse_criteo_line(line, rows_per_table) {
                return Some(keys);
            }
        },
        TraceFormat::PerTableIndices => {
            let mut keys: Vec<VectorKey> = Vec::new();
            loop {
                line.clear();
                if reader.read_line(line).ok()? == 0 {
                    // EOF flushes a trailing unterminated query.
                    return if keys.is_empty() { None } else { Some(keys) };
                }
                match parse_indices_line(line) {
                    Some(mut parsed) => keys.append(&mut parsed),
                    // Blank line: query boundary (skip leading blanks).
                    None if keys.is_empty() => continue,
                    None => return Some(keys),
                }
            }
        }
    }
}

/// Streams a real-format trace file as a request source: each request is
/// `queries_per_request` consecutive queries pulled lazily off the
/// reader, paced by an [`ArrivalProcess`]. Memory use is one request's
/// keys plus the reader's buffer, independent of file size.
#[derive(Debug)]
pub struct FileTraceSource<R: BufRead> {
    reader: R,
    format: TraceFormat,
    queries_per_request: usize,
    pacer: Pacer,
    deadline: Option<Duration>,
    tenant: usize,
    next_id: u64,
    line: String,
    done: bool,
}

impl<R: BufRead> FileTraceSource<R> {
    /// Builds the streaming source.
    ///
    /// # Panics
    ///
    /// Panics if `queries_per_request` is zero, the format is invalid,
    /// or the arrival process is invalid.
    pub fn new(
        reader: R,
        format: TraceFormat,
        queries_per_request: usize,
        arrivals: ArrivalProcess,
        seed: u64,
    ) -> Self {
        assert!(
            queries_per_request > 0,
            "queries_per_request must be positive"
        );
        format.validate();
        FileTraceSource {
            reader,
            format,
            queries_per_request,
            pacer: Pacer::new(arrivals, seed),
            deadline: None,
            tenant: 0,
            next_id: 0,
            line: String::new(),
            done: false,
        }
    }

    /// Attaches a deadline (relative to arrival) to every request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags every request with a tenant index
    /// ([`crate::SessionBuilder::tenants`]).
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant;
        self
    }
}

impl<R: BufRead> RequestSource for FileTraceSource<R> {
    fn next_request(&mut self) -> Option<Request> {
        if self.done {
            return None;
        }
        let mut keys: Vec<VectorKey> = Vec::new();
        for _ in 0..self.queries_per_request {
            match next_query(&mut self.reader, self.format, &mut self.line) {
                Some(mut q) => keys.append(&mut q),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if keys.is_empty() {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        Some(Request {
            id,
            keys,
            arrival: self.pacer.next_arrival(),
            deadline: self.deadline,
            tenant: self.tenant,
        })
    }
}

/// Materializes up to `max_queries` queries from a real-format stream
/// into a [`Trace`] for the random-access paths
/// ([`crate::TraceReplaySource`], training). `num_tables` is inferred as
/// the highest table id seen plus one (26 for well-formed Criteo).
///
/// # Panics
///
/// Panics if the format is invalid.
pub fn read_trace<R: BufRead>(reader: &mut R, format: TraceFormat, max_queries: usize) -> Trace {
    format.validate();
    let mut accesses: Vec<VectorKey> = Vec::new();
    let mut query_ends: Vec<usize> = Vec::new();
    let mut num_tables = 0u32;
    let mut line = String::new();
    while query_ends.len() < max_queries {
        let Some(keys) = next_query(reader, format, &mut line) else {
            break;
        };
        for k in &keys {
            num_tables = num_tables.max(k.table().0 + 1);
        }
        accesses.extend_from_slice(&keys);
        query_ends.push(accesses.len());
    }
    Trace::from_parts(accesses, query_ends, num_tables)
}

/// Footprint statistics of a trace prefix, used to calibrate sketch
/// defaults ([`TraceProfile::sketch_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceProfile {
    /// Queries profiled.
    pub queries: usize,
    /// Total embedding accesses across those queries.
    pub accesses: usize,
    /// Exact distinct-key count over the profiled prefix.
    pub unique_keys: usize,
    /// Distinct tables touched.
    pub tables: usize,
}

impl TraceProfile {
    /// A [`SketchConfig`] calibrated to the observed footprint:
    ///
    /// - `epoch_len` is set to ~4 accesses per observed unique key
    ///   (clamped to `[256, 65536]`) so one epoch re-observes most of
    ///   the working set — a skew flip then dominates the sketch window
    ///   within a handful of epochs instead of hundreds.
    /// - traces whose footprint exceeds the default exact-mode regime
    ///   get the [`SketchConfig::high_cardinality`] register shape
    ///   (unique-row estimates stay within ~1.6% instead of ~6.5%).
    pub fn sketch_config(&self) -> SketchConfig {
        let base = if self.unique_keys > 2048 {
            SketchConfig::high_cardinality()
        } else {
            SketchConfig::default()
        };
        SketchConfig {
            epoch_len: ((self.unique_keys as u64).saturating_mul(4)).clamp(256, 65536),
            ..base
        }
    }
}

/// Profiles up to `max_queries` queries from a real-format stream (one
/// streaming pass; memory is the distinct-key set, not the trace).
///
/// # Panics
///
/// Panics if the format is invalid.
pub fn profile_trace<R: BufRead>(
    reader: &mut R,
    format: TraceFormat,
    max_queries: usize,
) -> TraceProfile {
    format.validate();
    let mut unique = std::collections::HashSet::new();
    let mut tables = std::collections::HashSet::new();
    let mut queries = 0usize;
    let mut accesses = 0usize;
    let mut line = String::new();
    while queries < max_queries {
        let Some(keys) = next_query(reader, format, &mut line) else {
            break;
        };
        queries += 1;
        accesses += keys.len();
        for k in keys {
            unique.insert(k);
            tables.insert(k.table());
        }
    }
    TraceProfile {
        queries,
        accesses,
        unique_keys: unique.len(),
        tables: tables.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A tiny two-line Criteo-format sample (tab-separated; categorical
    /// block starts at column 14).
    fn criteo_sample() -> String {
        let mut lines = String::new();
        for i in 0..4u64 {
            let mut fields: Vec<String> = vec!["1".to_string()];
            fields.extend((0..13).map(|d| (d + i).to_string()));
            fields.extend((0..26).map(|c| format!("{:08x}", c * 17 + i)));
            lines.push_str(&fields.join("\t"));
            lines.push('\n');
        }
        lines
    }

    #[test]
    fn criteo_line_maps_each_categorical_column_to_its_table() {
        let sample = criteo_sample();
        let line = sample.lines().next().unwrap();
        let keys = parse_criteo_line(line, 1000).unwrap();
        assert_eq!(keys.len(), CRITEO_TABLES);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(k.table(), TableId(i as u32));
            assert!(k.row().0 < 1000);
        }
    }

    #[test]
    fn criteo_empty_fields_are_skipped_and_blank_lines_rejected() {
        let mut fields: Vec<String> = vec!["0".to_string()];
        fields.extend((0..13).map(|_| String::new()));
        fields.extend((0..26).map(|c| {
            if c % 2 == 0 {
                String::new()
            } else {
                format!("{c:x}")
            }
        }));
        let keys = parse_criteo_line(&fields.join("\t"), 50).unwrap();
        assert_eq!(keys.len(), 13);
        assert!(keys.iter().all(|k| k.table().0 % 2 == 1));
        assert!(parse_criteo_line("", 50).is_none());
        assert!(parse_criteo_line("1\t2\t3", 50).is_none());
    }

    #[test]
    fn criteo_hashing_is_deterministic_and_bounded() {
        let sample = criteo_sample();
        let line = sample.lines().next().unwrap();
        let a = parse_criteo_line(line, 7).unwrap();
        let b = parse_criteo_line(line, 7).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().all(|k| k.row().0 < 7));
    }

    #[test]
    fn indices_lines_group_into_queries_at_blank_lines() {
        let text = "0\t1,2,3\n1\t9\n\n0\t4\n2\t5,6\n";
        let trace = read_trace(
            &mut Cursor::new(text),
            TraceFormat::PerTableIndices,
            usize::MAX,
        );
        assert_eq!(trace.num_queries(), 2);
        assert_eq!(trace.num_tables(), 3);
        assert_eq!(trace.accesses().len(), 7);
        assert_eq!(trace.accesses()[0], VectorKey::new(TableId(0), RowId(1)));
        assert_eq!(trace.accesses()[4], VectorKey::new(TableId(0), RowId(4)));
    }

    #[test]
    fn read_trace_bounds_queries_and_feeds_replay() {
        let sample = criteo_sample();
        let trace = read_trace(
            &mut Cursor::new(&sample),
            TraceFormat::Criteo {
                rows_per_table: 100,
            },
            2,
        );
        assert_eq!(trace.num_queries(), 2);
        assert_eq!(trace.num_tables(), CRITEO_TABLES as u32);
        let mut src = crate::TraceReplaySource::new(&trace, 1, ArrivalProcess::Immediate, 7);
        let first = src.next_request().unwrap();
        assert_eq!(first.keys.len(), CRITEO_TABLES);
    }

    #[test]
    fn file_source_streams_requests_with_monotone_arrivals() {
        let sample = criteo_sample();
        let mut src = FileTraceSource::new(
            Cursor::new(&sample),
            TraceFormat::Criteo {
                rows_per_table: 100,
            },
            2,
            ArrivalProcess::Uniform {
                interval: Duration::from_micros(10),
            },
            1,
        )
        .with_deadline(Duration::from_millis(5))
        .for_tenant(0);
        let a = src.next_request().unwrap();
        let b = src.next_request().unwrap();
        assert!(src.next_request().is_none());
        assert_eq!(a.keys.len(), 2 * CRITEO_TABLES);
        assert!(b.arrival > a.arrival);
        assert_eq!(a.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn profile_calibrates_sketch_to_footprint() {
        let sample = criteo_sample();
        let profile = profile_trace(
            &mut Cursor::new(&sample),
            TraceFormat::Criteo {
                rows_per_table: 1_000_000,
            },
            usize::MAX,
        );
        assert_eq!(profile.queries, 4);
        assert_eq!(profile.accesses, 4 * CRITEO_TABLES);
        assert_eq!(profile.tables, CRITEO_TABLES);
        assert!(profile.unique_keys > CRITEO_TABLES);
        let cfg = profile.sketch_config();
        cfg.validate();
        // Small footprint: default registers, floor-clamped epoch.
        assert_eq!(cfg.registers, SketchConfig::default().registers);
        assert!(cfg.epoch_len >= 256);

        // A synthetic huge-footprint profile flips to the
        // high-cardinality shape and the epoch ceiling.
        let big = TraceProfile {
            queries: 1,
            accesses: 1,
            unique_keys: 1 << 20,
            tables: 26,
        };
        let cfg = big.sketch_config();
        assert_eq!(cfg.registers, SketchConfig::high_cardinality().registers);
        assert_eq!(cfg.epoch_len, 65536);
    }
}
