//! RecMG configuration.
//!
//! Defaults follow the paper's §VII-A configuration: input length 15,
//! output length 5, evaluation window 15 (3× the output), one LSTM stack
//! for the caching model, two for the prefetch model, α = 0.7, eviction
//! speed 4.

/// Configuration shared by both models and the buffer manager.
#[derive(Debug, Clone, PartialEq)]
pub struct RecMgConfig {
    /// Input-sequence (chunk) length.
    pub input_len: usize,
    /// Prefetch-model output-sequence length `|PO|`.
    pub output_len: usize,
    /// Evaluation-window multiplier: `|W| = window_ratio × output_len`.
    pub window_ratio: usize,
    /// Chamfer loss weighting α (Eq. 5).
    pub alpha: f32,
    /// The `eviction_speed` constant of Algorithms 1–2.
    pub eviction_speed: u64,
    /// Hash vocabulary of the model input tokens.
    pub vocab: usize,
    /// Token-embedding dimensionality.
    pub embed_dim: usize,
    /// Caching-model hidden size.
    pub caching_hidden: usize,
    /// Caching-model LSTM stack count (paper default 1).
    pub caching_stacks: usize,
    /// Prefetch-model hidden size.
    pub prefetch_hidden: usize,
    /// Prefetch-model LSTM stack count (paper default 2).
    pub prefetch_stacks: usize,
    /// Adam learning rate for both models.
    pub lr: f32,
    /// OPTgen labeling runs at this fraction of the GPU buffer ("80% of
    /// the GPU buffer capacity to ensure sufficient space for placing
    /// prefetched embedding vectors", §VI-A).
    pub optgen_buffer_fraction: f64,
    /// Initialisation seed.
    pub seed: u64,
}

impl Default for RecMgConfig {
    fn default() -> Self {
        RecMgConfig {
            input_len: 15,
            output_len: 5,
            window_ratio: 3,
            alpha: 0.7,
            eviction_speed: 4,
            vocab: 2048,
            embed_dim: 12,
            caching_hidden: 32,
            caching_stacks: 1,
            prefetch_hidden: 40,
            prefetch_stacks: 2,
            lr: 2e-3,
            optgen_buffer_fraction: 0.8,
            seed: 0x9EC,
        }
    }
}

impl RecMgConfig {
    /// The evaluation-window length `|W|`.
    pub fn window_len(&self) -> usize {
        self.window_ratio * self.output_len
    }

    /// A scaled-down configuration for unit tests (short sequences, tiny
    /// models).
    pub fn tiny() -> Self {
        RecMgConfig {
            input_len: 8,
            output_len: 3,
            window_ratio: 3,
            vocab: 128,
            embed_dim: 12,
            caching_hidden: 12,
            prefetch_hidden: 12,
            lr: 5e-3,
            ..Self::default()
        }
    }

    /// Validates invariant relationships.
    ///
    /// # Panics
    ///
    /// Panics if any length is zero, `alpha` is outside `(0, 1)`, or the
    /// OPTgen fraction is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.input_len > 0, "input_len must be positive");
        assert!(self.output_len > 0, "output_len must be positive");
        assert!(self.window_ratio > 0, "window_ratio must be positive");
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0, 1)"
        );
        assert!(
            self.optgen_buffer_fraction > 0.0 && self.optgen_buffer_fraction <= 1.0,
            "optgen fraction must be in (0, 1]"
        );
        assert!(self.caching_stacks > 0, "caching model needs a stack");
        assert!(self.prefetch_stacks > 0, "prefetch model needs a stack");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RecMgConfig::default();
        assert_eq!(c.input_len, 15);
        assert_eq!(c.output_len, 5);
        assert_eq!(c.window_len(), 15);
        assert_eq!(c.eviction_speed, 4);
        assert_eq!(c.caching_stacks, 1);
        assert_eq!(c.prefetch_stacks, 2);
        assert!((c.alpha - 0.7).abs() < 1e-6);
        c.validate();
    }

    #[test]
    fn tiny_is_valid() {
        RecMgConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn bad_alpha_rejected() {
        let c = RecMgConfig {
            alpha: 1.5,
            ..RecMgConfig::default()
        };
        c.validate();
    }
}
