//! RecMG configuration.
//!
//! Defaults follow the paper's §VII-A configuration: input length 15,
//! output length 5, evaluation window 15 (3× the output), one LSTM stack
//! for the caching model, two for the prefetch model, α = 0.7, eviction
//! speed 4.
//!
//! Besides the model/buffer configuration, this module holds the serving
//! policies of the streaming session API ([`crate::session`]): the
//! [`AdmissionPolicy`] bounding the request queue and the [`SlaBudget`]
//! driving latency-pressure degradation (skip-ahead first, then
//! prefetch-off — the Software-Defined-Memory direction over the paper's
//! §VI-C machinery).

use std::time::Duration;

/// Numeric precision of the compiled guidance-model weights (§VI-C lists
/// quantization among the serving-path optimizations).
///
/// Selected at compile time via
/// [`SystemBuilder::precision`](crate::SystemBuilder::precision); `F32`
/// keeps the exact training weights, `Int8` stores every weight matrix as
/// a symmetric per-tensor [`QuantizedMatrix`](recmg_tensor::quant::QuantizedMatrix)
/// (biases and the embedding table stay `f32`), trading a bounded output
/// divergence for ~4× smaller weight traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum GuidancePrecision {
    /// Exact `f32` weights (the default).
    #[default]
    F32,
    /// Symmetric per-tensor int8 weights with dynamic per-lane activation
    /// quantization.
    Int8,
}

impl GuidancePrecision {
    /// Stable lower-case name used in reports and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            GuidancePrecision::F32 => "f32",
            GuidancePrecision::Int8 => "int8",
        }
    }
}

/// Configuration shared by both models and the buffer manager.
#[derive(Debug, Clone, PartialEq)]
pub struct RecMgConfig {
    /// Input-sequence (chunk) length.
    pub input_len: usize,
    /// Prefetch-model output-sequence length `|PO|`.
    pub output_len: usize,
    /// Evaluation-window multiplier: `|W| = window_ratio × output_len`.
    pub window_ratio: usize,
    /// Chamfer loss weighting α (Eq. 5).
    pub alpha: f32,
    /// The `eviction_speed` constant of Algorithms 1–2.
    pub eviction_speed: u64,
    /// Hash vocabulary of the model input tokens.
    pub vocab: usize,
    /// Token-embedding dimensionality.
    pub embed_dim: usize,
    /// Caching-model hidden size.
    pub caching_hidden: usize,
    /// Caching-model LSTM stack count (paper default 1).
    pub caching_stacks: usize,
    /// Prefetch-model hidden size.
    pub prefetch_hidden: usize,
    /// Prefetch-model LSTM stack count (paper default 2).
    pub prefetch_stacks: usize,
    /// Adam learning rate for both models.
    pub lr: f32,
    /// OPTgen labeling runs at this fraction of the GPU buffer ("80% of
    /// the GPU buffer capacity to ensure sufficient space for placing
    /// prefetched embedding vectors", §VI-A).
    pub optgen_buffer_fraction: f64,
    /// Initialisation seed.
    pub seed: u64,
}

impl Default for RecMgConfig {
    fn default() -> Self {
        RecMgConfig {
            input_len: 15,
            output_len: 5,
            window_ratio: 3,
            alpha: 0.7,
            eviction_speed: 4,
            vocab: 2048,
            embed_dim: 12,
            caching_hidden: 32,
            caching_stacks: 1,
            prefetch_hidden: 40,
            prefetch_stacks: 2,
            lr: 2e-3,
            optgen_buffer_fraction: 0.8,
            seed: 0x9EC,
        }
    }
}

impl RecMgConfig {
    /// The evaluation-window length `|W|`.
    pub fn window_len(&self) -> usize {
        self.window_ratio * self.output_len
    }

    /// A scaled-down configuration for unit tests (short sequences, tiny
    /// models).
    pub fn tiny() -> Self {
        RecMgConfig {
            input_len: 8,
            output_len: 3,
            window_ratio: 3,
            vocab: 128,
            embed_dim: 12,
            caching_hidden: 12,
            prefetch_hidden: 12,
            lr: 5e-3,
            ..Self::default()
        }
    }

    /// Validates invariant relationships.
    ///
    /// # Panics
    ///
    /// Panics if any length is zero, `alpha` is outside `(0, 1)`, or the
    /// OPTgen fraction is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.input_len > 0, "input_len must be positive");
        assert!(self.output_len > 0, "output_len must be positive");
        assert!(self.window_ratio > 0, "window_ratio must be positive");
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0, 1)"
        );
        assert!(
            self.optgen_buffer_fraction > 0.0 && self.optgen_buffer_fraction <= 1.0,
            "optgen fraction must be in (0, 1]"
        );
        assert!(self.caching_stacks > 0, "caching model needs a stack");
        assert!(self.prefetch_stacks > 0, "prefetch model needs a stack");
    }
}

/// Access-cost model of one memory tier, in nanoseconds per buffer event.
///
/// The costs parameterize the hit/miss/prefetch-fill accounting of
/// [`crate::RecMgBuffer`]: a buffer placed in a tier charges `hit_ns` per
/// resident access, `miss_ns` per on-demand fetch into the tier, and
/// `fill_ns` per speculative (prefetch) fill. The accumulated
/// hit-weighted cost is what [`crate::PlacementPolicy`] implementations
/// compete on — RecShard-style placement wins exactly when it moves access
/// mass onto cheaper tiers.
///
/// Costs come from one of two places, explicit at every call site:
///
/// * **Synthetic** — [`TierCost::synthetic`] injects deterministic
///   numbers (tests, repeatable benches).
/// * **Calibrated** — tiers marked
///   [`MemoryTier::calibrated`](crate::MemoryTier::calibrated) get their
///   numbers *measured* against their storage backend at
///   [`SystemBuilder::build`](crate::SystemBuilder::build)
///   ([`crate::backend::calibrate`]), reported via
///   [`CalibrationReport`](crate::CalibrationReport).
///
/// Constructing the struct literally (and the spin-wait `miss_penalty`
/// field) is deprecated at the public surface in favour of the two paths
/// above; `with_penalty` remains for benches that want wall-clock tier
/// pressure, where a non-zero penalty spin-waits on every demand miss and
/// prefetch fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierCost {
    /// Cost of serving one resident access from this tier.
    pub hit_ns: u64,
    /// Cost of one on-demand fetch into this tier.
    pub miss_ns: u64,
    /// Cost of one speculative (prefetch) fill into this tier.
    pub fill_ns: u64,
    /// Wall-clock delay injected on each miss/fill (zero = accounting
    /// only). Deprecated surface: prefer [`TierCost::synthetic`] (no
    /// injection) or a calibrated tier (measured, nothing to inject);
    /// set via [`TierCost::with_penalty`] when a bench really wants
    /// spin-wait pressure.
    pub miss_penalty: Duration,
}

impl TierCost {
    /// All-zero cost: pure counting, no latency model. The implicit tier
    /// of pre-topology buffers.
    pub const FREE: TierCost = TierCost {
        hit_ns: 0,
        miss_ns: 0,
        fill_ns: 0,
        miss_penalty: Duration::ZERO,
    };

    /// Local-DRAM-like tier: fast access, on-demand fetches dominated by
    /// the host-side copy.
    pub fn dram() -> Self {
        TierCost::synthetic(80, 900, 300)
    }

    /// CXL-/far-NUMA-like slow tier: ~4× the load latency of local DRAM
    /// and costlier fills (the regime of the Software-Defined-Memory
    /// measurements).
    pub fn cxl_like() -> Self {
        TierCost::synthetic(350, 1800, 900)
    }

    /// Explicitly injected (made-up) costs — the deterministic model for
    /// tests and repeatable benches, as opposed to the measured numbers a
    /// calibrated tier gets at build. No spin-wait penalty.
    pub const fn synthetic(hit_ns: u64, miss_ns: u64, fill_ns: u64) -> Self {
        TierCost {
            hit_ns,
            miss_ns,
            fill_ns,
            miss_penalty: Duration::ZERO,
        }
    }

    /// Sets the injected miss/fill penalty.
    pub fn with_penalty(mut self, penalty: Duration) -> Self {
        self.miss_penalty = penalty;
        self
    }
}

impl Default for TierCost {
    fn default() -> Self {
        TierCost::FREE
    }
}

/// Shape of the working-set sketches every [`crate::RecMgBuffer`] keeps on
/// its demand path ([`crate::sketch`]): HyperLogLog register count, the
/// exact-mode threshold, and the sliding epoch window.
///
/// The defaults size the sketch for serving buffers: 256 registers
/// (~6.5% standard error, 256 bytes per epoch sketch), exact counting up
/// to 64 distinct keys (toy/test buffers pay zero estimation error), and
/// a four-epoch window of 1024 demand accesses each — long enough to
/// smooth per-batch noise, short enough that a skew flip dominates the
/// window within a few thousand accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// HyperLogLog registers `m` (power of two in `[16, 65536]`); the
    /// relative standard error is `1.04/√m`.
    pub registers: usize,
    /// Distinct-key count up to which the sketch counts exactly before
    /// upgrading to HLL registers.
    pub exact_threshold: usize,
    /// Demand accesses per epoch (epoch boundaries are access-counted,
    /// never wall-clock, so sketch behaviour is deterministic).
    pub epoch_len: u64,
    /// Epochs in the sliding window (current epoch included).
    pub window_epochs: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            registers: 256,
            exact_threshold: 64,
            epoch_len: 1024,
            window_epochs: 4,
        }
    }
}

impl SketchConfig {
    /// A small configuration for unit tests: short epochs so phase changes
    /// surface after tens of accesses instead of thousands.
    pub fn tiny() -> Self {
        SketchConfig {
            epoch_len: 64,
            ..Self::default()
        }
    }

    /// Sketch preset for DLRM-scale footprints: 4096 registers (~1.6%
    /// standard error, `1.04/√4096`, at 4 KiB per sketch) and a 256-key
    /// exact threshold. The default 256-register shape is sized for serving
    /// buffers with hundreds of distinct keys; per-table footprint profiles
    /// ([`crate::TableProfile`]) see millions of unique rows, where the
    /// default's ~6.5% error would blur the pin-threshold decision between
    /// adjacent table sizes. This is the preset
    /// [`crate::TableProfiler`] selects automatically.
    pub fn high_cardinality() -> Self {
        SketchConfig {
            registers: 4096,
            exact_threshold: 256,
            ..Self::default()
        }
    }

    /// Validates invariant relationships.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is not a power of two in `[16, 65536]`, or a
    /// window/epoch dimension is zero.
    pub fn validate(&self) {
        assert!(
            self.registers.is_power_of_two() && (16..=65536).contains(&self.registers),
            "registers must be a power of two in [16, 65536]"
        );
        assert!(self.epoch_len > 0, "epoch_len must be positive");
        assert!(self.window_epochs > 0, "window_epochs must be positive");
    }
}

/// Admission control for a [`crate::session::ServingSession`]'s request
/// queue: how many requests may wait, and what happens to requests whose
/// deadline cannot be met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum requests waiting in the queue (not yet picked up by a
    /// worker); a submit beyond this depth is rejected (load shedding).
    pub queue_depth: usize,
    /// Reject a request at submission when its deadline is already blown.
    pub reject_blown: bool,
    /// Shed a queued request at dequeue when its deadline expired while it
    /// waited (serving it would only burn capacity on a guaranteed miss).
    pub shed_blown: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_depth: 1024,
            reject_blown: true,
            shed_blown: true,
        }
    }
}

impl AdmissionPolicy {
    /// No admission control at all: unbounded queue, nothing rejected or
    /// shed. This is the policy behind the batch-mode
    /// [`ShardedRecMgSystem::serve`](crate::ShardedRecMgSystem::serve)
    /// wrapper, which must serve every submitted batch.
    pub fn unbounded() -> Self {
        AdmissionPolicy {
            queue_depth: usize::MAX,
            reject_blown: false,
            shed_blown: false,
        }
    }
}

/// How far a request may be degraded to protect latency.
///
/// Ordered by severity: [`DegradeLevel::SkipAhead`] drops fresh model
/// guidance for the request's chunks (they run on stale buffer priorities,
/// the paper's §VI-C skip-ahead rule — saves the CPU model forwards);
/// [`DegradeLevel::PrefetchOff`] additionally stops applying prefetch
/// predictions (saves tier bandwidth and buffer slots on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// Full guidance: caching bits and prefetches as configured.
    #[default]
    None,
    /// Skip fresh guidance for this request (stale bits, no new model
    /// work); already-computed background guidance still applies.
    SkipAhead,
    /// [`DegradeLevel::SkipAhead`] plus prefetch application suppressed.
    PrefetchOff,
}

/// Per-request latency budget with pressure thresholds.
///
/// Workers compare each request's queueing delay against `target`: at
/// `skip_ahead_at × target` the request is served with
/// [`DegradeLevel::SkipAhead`], at `prefetch_off_at × target` with
/// [`DegradeLevel::PrefetchOff`]. The session reports how many requests
/// met the budget and how many ran degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaBudget {
    /// Target end-to-end (arrival → completion) latency.
    pub target: Duration,
    /// Queue-wait fraction of `target` that triggers skip-ahead.
    pub skip_ahead_at: f64,
    /// Queue-wait fraction of `target` that additionally turns prefetch
    /// application off. Must be at least `skip_ahead_at`.
    pub prefetch_off_at: f64,
}

impl SlaBudget {
    /// A budget with the default pressure thresholds: skip-ahead at half
    /// the budget spent queueing, prefetch-off once the whole budget is
    /// gone.
    pub fn new(target: Duration) -> Self {
        SlaBudget {
            target,
            skip_ahead_at: 0.5,
            prefetch_off_at: 1.0,
        }
    }

    /// Validates the thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero, a threshold is negative or non-finite,
    /// or `prefetch_off_at < skip_ahead_at`.
    pub fn validate(&self) {
        assert!(!self.target.is_zero(), "SLA target must be positive");
        assert!(
            self.skip_ahead_at >= 0.0 && self.skip_ahead_at.is_finite(),
            "skip_ahead_at must be non-negative and finite"
        );
        assert!(
            self.prefetch_off_at >= self.skip_ahead_at && self.prefetch_off_at.is_finite(),
            "prefetch_off_at must be finite and at least skip_ahead_at"
        );
    }

    /// The degradation level for a request that waited `queue_wait` before
    /// a worker picked it up.
    pub fn level(&self, queue_wait: Duration) -> DegradeLevel {
        let budget = self.target.as_secs_f64();
        let wait = queue_wait.as_secs_f64();
        if wait >= budget * self.prefetch_off_at {
            DegradeLevel::PrefetchOff
        } else if wait >= budget * self.skip_ahead_at {
            DegradeLevel::SkipAhead
        } else {
            DegradeLevel::None
        }
    }
}

/// One tenant of a multi-tenant [`crate::session::ServingSession`]
/// ([`SessionBuilder::tenants`](crate::SessionBuilder::tenants)).
///
/// A tenant owns a dequeue weight (workers pick the nonempty tenant queue
/// with the smallest served/weight ratio, so capacity divides in weight
/// proportion under contention), an optional per-tenant [`SlaBudget`]
/// overriding the session-wide one, and an optional queue quota capping
/// how much of the shared queue depth the tenant's burst may occupy.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name, echoed in its [`crate::session::TenantReport`].
    pub name: String,
    /// Weighted-fair dequeue share; must be positive and finite.
    pub weight: f64,
    /// Per-tenant latency budget; `None` inherits the session SLA.
    pub sla: Option<SlaBudget>,
    /// Maximum requests this tenant may have waiting in the queue; a
    /// submit beyond the quota is rejected as
    /// [`Rejection::QueueFull`](crate::Rejection::QueueFull) even when
    /// the global [`AdmissionPolicy::queue_depth`] has room. `None`
    /// leaves the tenant bounded only by the global depth.
    pub queue_quota: Option<usize>,
}

impl TenantSpec {
    /// A tenant with weight 1, no private SLA, and no quota.
    pub fn new(name: &str) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight: 1.0,
            sla: None,
            queue_quota: None,
        }
    }

    /// Sets the weighted-fair dequeue share.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets a per-tenant latency budget overriding the session SLA.
    pub fn with_sla(mut self, sla: SlaBudget) -> Self {
        self.sla = Some(sla);
        self
    }

    /// Caps this tenant's share of the request queue.
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.queue_quota = Some(quota);
        self
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics if the name is empty, the weight is not positive and
    /// finite, or the tenant SLA is invalid.
    pub fn validate(&self) {
        assert!(!self.name.is_empty(), "tenant name must be non-empty");
        assert!(
            self.weight > 0.0 && self.weight.is_finite(),
            "tenant weight must be positive and finite"
        );
        if let Some(sla) = &self.sla {
            sla.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RecMgConfig::default();
        assert_eq!(c.input_len, 15);
        assert_eq!(c.output_len, 5);
        assert_eq!(c.window_len(), 15);
        assert_eq!(c.eviction_speed, 4);
        assert_eq!(c.caching_stacks, 1);
        assert_eq!(c.prefetch_stacks, 2);
        assert!((c.alpha - 0.7).abs() < 1e-6);
        c.validate();
    }

    #[test]
    fn tiny_is_valid() {
        RecMgConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn bad_alpha_rejected() {
        let c = RecMgConfig {
            alpha: 1.5,
            ..RecMgConfig::default()
        };
        c.validate();
    }

    #[test]
    fn sla_levels_escalate_with_wait() {
        let sla = SlaBudget::new(Duration::from_millis(10));
        sla.validate();
        assert_eq!(sla.level(Duration::ZERO), DegradeLevel::None);
        assert_eq!(sla.level(Duration::from_millis(4)), DegradeLevel::None);
        assert_eq!(sla.level(Duration::from_millis(5)), DegradeLevel::SkipAhead);
        assert_eq!(
            sla.level(Duration::from_millis(10)),
            DegradeLevel::PrefetchOff
        );
        assert!(DegradeLevel::None < DegradeLevel::SkipAhead);
        assert!(DegradeLevel::SkipAhead < DegradeLevel::PrefetchOff);
    }

    #[test]
    #[should_panic(expected = "prefetch_off_at must be finite")]
    fn sla_thresholds_must_order() {
        let sla = SlaBudget {
            target: Duration::from_millis(1),
            skip_ahead_at: 0.9,
            prefetch_off_at: 0.5,
        };
        sla.validate();
    }

    #[test]
    fn high_cardinality_sketch_preset_is_valid_and_tighter() {
        let hc = SketchConfig::high_cardinality();
        hc.validate();
        let def = SketchConfig::default();
        assert!(hc.registers > def.registers);
        assert!(hc.exact_threshold > def.exact_threshold);
        // σ = 1.04/√m: the preset's documented ~1.6% error.
        let sigma = 1.04 / (hc.registers as f64).sqrt();
        assert!(sigma < 0.017, "expected ~1.6% error, got {sigma}");
    }

    #[test]
    fn tier_cost_presets_order_sensibly() {
        let dram = TierCost::dram();
        let cxl = TierCost::cxl_like();
        assert!(dram.hit_ns < cxl.hit_ns);
        assert!(dram.miss_ns < cxl.miss_ns);
        assert!(dram.fill_ns < cxl.fill_ns);
        assert_eq!(TierCost::default(), TierCost::FREE);
        let pen = cxl.with_penalty(Duration::from_nanos(500));
        assert_eq!(pen.miss_penalty, Duration::from_nanos(500));
        assert_eq!(pen.hit_ns, cxl.hit_ns);
        let synth = TierCost::synthetic(10, 100, 40);
        assert_eq!((synth.hit_ns, synth.miss_ns, synth.fill_ns), (10, 100, 40));
        assert_eq!(synth.miss_penalty, Duration::ZERO);
    }

    #[test]
    fn unbounded_admission_never_rejects() {
        let p = AdmissionPolicy::unbounded();
        assert_eq!(p.queue_depth, usize::MAX);
        assert!(!p.reject_blown);
        assert!(!p.shed_blown);
        let d = AdmissionPolicy::default();
        assert!(d.queue_depth > 0);
        assert!(d.reject_blown && d.shed_blown);
    }
}
