//! Live migration: zero-quiescence rebalancing and hot-shard replication.
//!
//! The quiescent [`Rebalancer`](crate::Rebalancer) detects a hot-set flip
//! within ~1 sketch epoch and then has to wait for a session drain before
//! it may act — in production the system never drains. This module lets a
//! [`ServingSession`](crate::ServingSession) re-place shards **while
//! requests flow**:
//!
//! * **Epoch-versioned routing** ([`RouteTable`] / [`RouteEpoch`]): the
//!   per-shard route (serve directly, mirror into a staging buffer, or
//!   replica-accelerated) lives behind an arc-swap-style atomic pointer.
//!   Workers [`pin`](RouteTable::pin) the current epoch wait-free on every
//!   request; a single writer publishes a new epoch with one pointer
//!   store and retires the old one only after every pinned reader has
//!   drained past the epoch fence.
//! * **Double-buffered placement** ([`LiveState`] + the background
//!   rebalancer loop): on a phase-trigger or access-count fire, the
//!   affected shard's new buffer is built at its new capacity/tier while
//!   the old one keeps serving. It warms by *copy-on-access* (workers
//!   mirror the keys they demand) plus a *paced background fill* of the
//!   hottest resident entries; once warm the route is CASed back to
//!   direct, in-flight requests drain past the fence, and the old buffer
//!   is swapped out under the shard lock and retired. Fill charges land
//!   in the shard's cumulative cost through the existing
//!   `migration_cost_ns` accounting ([`MigrationReport`]).
//! * **Read-hot replication** ([`ReplicationPolicy`] / `ReplicaState`):
//!   the working-set sketch decides
//!   replication degree — shards that are hot *and* read-dominant get a
//!   fast-tier replica of their celebrity keys, the way consistent-hash
//!   fleets replicate celebrity keys. Admission is two-touch: a key
//!   earns its replica slot on its second fresh primary hit, so a hot
//!   set larger than the replica cannot churn it with one-touch fills.
//!   Replica entries are stamped with
//!   the route epoch and invalidate through the same fence: a primary
//!   miss (the "write") evicts the entry immediately, and entries older
//!   than the policy's TTL in epochs decay to absent. Counts stay
//!   canonical on the home shard; replication only re-prices hits
//!   ([`ReplicationReport`]).
//!
//! Demand conservation is the load-bearing invariant: every demand access
//! is recorded exactly once on whatever buffer is primary under the shard
//! mutex, staging/replica fills never count as demand, and the
//! double-buffer swap replaces only the storage — traffic counters and
//! the sketch stay on the shard. A migration is therefore invisible to
//! hit/miss totals (pinned by the 1-shard parity oracle in
//! `tests/integration_migration.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use recmg_cache::GpuBuffer;
use recmg_trace::VectorKey;

use crate::buffer_mgmt::TierTraffic;
use crate::config::TierCost;
use crate::sharding::{GuidanceCtx, Shard};
use crate::tier::{ShardPlacement, TierTopology};

/// Per-shard serving route within one [`RouteEpoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRoute {
    /// Serve the primary buffer only.
    Direct,
    /// Primary stays authoritative; workers additionally mirror demanded
    /// keys into the shard's staging buffer (copy-on-access warming).
    Migrating,
    /// Primary is authoritative and a fast-tier replica re-prices hits of
    /// replica-resident keys (informational in the route — the replica
    /// itself lives under the shard mutex).
    Replicated,
}

/// One immutable routing snapshot: the route of every shard, versioned by
/// a monotonically increasing epoch. Workers read a whole epoch at once,
/// so a request can never observe a torn route update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteEpoch {
    epoch: u64,
    routes: Vec<ShardRoute>,
}

impl RouteEpoch {
    /// The epoch number of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The route of shard `shard` ([`ShardRoute::Direct`] out of range).
    pub fn route(&self, shard: usize) -> ShardRoute {
        self.routes
            .get(shard)
            .copied()
            .unwrap_or(ShardRoute::Direct)
    }

    /// Shards currently marked [`ShardRoute::Replicated`].
    pub fn replicated(&self) -> usize {
        self.routes
            .iter()
            .filter(|&&r| r == ShardRoute::Replicated)
            .count()
    }
}

/// An arc-swap-style epoch-versioned pointer to the current
/// [`RouteEpoch`].
///
/// Readers are wait-free in the absence of a concurrent publish (two
/// atomic loads + two counter RMWs, no locks); the single writer swaps
/// the pointer, bumps the epoch, then spins until every reader pinned in
/// the *previous* epoch's slot has dropped its guard — the epoch fence —
/// before freeing the retired snapshot. Slots alternate by epoch parity,
/// so readers of the new epoch never delay retirement of the old one.
///
/// ```
/// use recmg_core::migrate::{RouteTable, ShardRoute};
///
/// let table = RouteTable::new(2);
/// assert_eq!(table.pin().route(0), ShardRoute::Direct);
/// table.publish_with(|routes| routes[1] = ShardRoute::Migrating);
/// let pinned = table.pin();
/// assert_eq!(pinned.epoch(), 1);
/// assert_eq!(pinned.route(1), ShardRoute::Migrating);
/// ```
#[derive(Debug)]
pub struct RouteTable {
    ptr: AtomicPtr<RouteEpoch>,
    /// Shared with replica buffers so decay-TTL checks read the live
    /// epoch without reaching back into the table.
    epoch: Arc<AtomicU64>,
    /// Reader pin counts, indexed by epoch parity.
    pins: [AtomicUsize; 2],
    /// Serializes publishers (the rebalancer thread plus any manual
    /// migration/replication calls).
    writer: Mutex<()>,
}

/// A pinned, immutably borrowed [`RouteEpoch`]. Holding the guard keeps
/// the snapshot alive; the writer's fence waits for it.
#[derive(Debug)]
pub struct RouteGuard<'a> {
    table: &'a RouteTable,
    slot: usize,
    epoch: &'a RouteEpoch,
}

impl std::ops::Deref for RouteGuard<'_> {
    type Target = RouteEpoch;

    fn deref(&self) -> &RouteEpoch {
        self.epoch
    }
}

impl Drop for RouteGuard<'_> {
    fn drop(&mut self) {
        self.table.pins[self.slot].fetch_sub(1, Ordering::Release);
    }
}

impl RouteTable {
    /// A table over `num_shards` shards, all [`ShardRoute::Direct`], at
    /// epoch 0.
    pub fn new(num_shards: usize) -> Self {
        let first = Box::new(RouteEpoch {
            epoch: 0,
            routes: vec![ShardRoute::Direct; num_shards],
        });
        RouteTable {
            ptr: AtomicPtr::new(Box::into_raw(first)),
            epoch: Arc::new(AtomicU64::new(0)),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// The current epoch number (monotonic).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Handle to the live epoch counter (replica TTL checks read it).
    pub(crate) fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// Pins and returns the current route snapshot. Lock-free: retries
    /// only if a publish lands between the pin and its validation.
    pub fn pin(&self) -> RouteGuard<'_> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = (e & 1) as usize;
            // SeqCst handshake with `publish_with` (standard hazard-
            // pointer protocol): reader = pin store, epoch load; writer
            // = epoch store, pin load. All four being SeqCst puts them
            // in one total order, so at least one side observes the
            // other — if the writer's drain read our slot as 0, our
            // increment came later in that order, so the validation
            // below reads the *new* epoch and we retry. Release/Acquire
            // is NOT enough here: it permits the store->load reordering
            // (real even on x86 TSO) where the writer drains past a pin
            // it never saw while the reader validates the stale epoch —
            // a use-after-free once the writer frees the snapshot.
            self.pins[slot].fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                // The pin is visible to any writer that will retire the
                // snapshot this slot guards, so the pointer is stable
                // until the guard drops.
                let ptr = self.ptr.load(Ordering::Acquire);
                // SAFETY: `ptr` was published by a `Box::into_raw` and is
                // only freed by a writer after it observes this slot's
                // pin count at zero; we hold a pin in the slot of the
                // epoch we validated, and validation-after-pin means the
                // writer that retires this snapshot has not passed its
                // fence yet.
                let epoch = unsafe { &*ptr };
                return RouteGuard {
                    table: self,
                    slot,
                    epoch,
                };
            }
            // A publish raced us: unpin the stale slot and retry against
            // the new epoch.
            self.pins[slot].fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Publishes a new epoch derived from the current routes, waits for
    /// readers of the previous epoch to drain past the fence, and retires
    /// the old snapshot. Returns the new epoch number.
    pub fn publish_with(&self, f: impl FnOnce(&mut Vec<ShardRoute>)) -> u64 {
        let _writer = self.writer.lock().expect("route writer lock poisoned");
        let cur = self.epoch.load(Ordering::Acquire);
        let old = self.ptr.load(Ordering::Acquire);
        // SAFETY: only the (serialized) writer frees snapshots, and this
        // writer has not freed `old` yet.
        let mut routes = unsafe { (*old).routes.clone() };
        f(&mut routes);
        let next = Box::new(RouteEpoch {
            epoch: cur + 1,
            routes,
        });
        // Order matters: the pointer store must be visible before the
        // epoch bump, so a reader that validates the new epoch always
        // loads the new pointer (release-sequenced before the SeqCst
        // `epoch` store, acquire in `pin`).
        self.ptr.store(Box::into_raw(next), Ordering::Release);
        self.epoch.store(cur + 1, Ordering::SeqCst);
        // Epoch fence: readers still pinned in the old parity slot hold
        // the retiring snapshot (or raced the bump and will unpin); wait
        // until they drain, then the old snapshot is unreachable. The
        // SeqCst store above + SeqCst loads here are the writer half of
        // the handshake documented in `pin`. Spin briefly, then yield:
        // guards are held for whole requests, so a pinned worker that
        // got descheduled would otherwise pin this core (and every
        // queued publisher behind the writer lock) until it runs again.
        let old_slot = (cur & 1) as usize;
        let mut spins = 0u32;
        while self.pins[old_slot].load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: the pointer was replaced above and every reader that
        // could hold it has unpinned; no new reader can validate the old
        // epoch.
        drop(unsafe { Box::from_raw(old) });
        cur + 1
    }
}

impl Drop for RouteTable {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the only remaining snapshot is the
        // current one.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

// SAFETY: the pointee is immutable after publication and retirement is
// fenced on reader pin counts; all other fields are atomics/locks.
unsafe impl Send for RouteTable {}
unsafe impl Sync for RouteTable {}

/// Sketch-driven replication policy: how many fast-tier replica slots a
/// hot, read-dominant shard earns.
///
/// Degree scales with the shard's share of fresh demand the way
/// consistent-hash fleets scale celebrity-key replication with observed
/// request share; the sketched per-window footprint caps the replica so
/// it never out-sizes the keys it could usefully hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPolicy {
    /// Replica slots granted per degree.
    pub unit: usize,
    /// Maximum replication degree per shard.
    pub max_degree: usize,
    /// Minimum share of fresh demand (0..1] for a shard to qualify.
    pub hot_share: f64,
    /// Minimum hit fraction of fresh demand — replicas accelerate reads;
    /// a miss-heavy (write-like) stream invalidates faster than it
    /// serves.
    pub read_dominance: f64,
    /// Replica entries older than this many route epochs decay to absent
    /// (lease-style freshness through the epoch fence).
    pub ttl_epochs: u64,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy {
            unit: 32,
            max_degree: 4,
            hot_share: 0.25,
            read_dominance: 0.7,
            ttl_epochs: 8,
        }
    }
}

impl ReplicationPolicy {
    /// Replication degree for a shard with the given share of fresh
    /// demand and hit fraction: 0 unless both thresholds qualify, then
    /// `ceil(share × max_degree)` clamped to `[1, max_degree]`.
    pub fn degree_for(&self, share: f64, hit_fraction: f64) -> usize {
        if share < self.hot_share || hit_fraction < self.read_dominance {
            return 0;
        }
        ((share * self.max_degree as f64).ceil() as usize).clamp(1, self.max_degree)
    }

    /// Replica capacity for a shard: `degree × unit`, capped by the
    /// shard's sketched window footprint (replicating more slots than
    /// distinct demanded keys is dead weight).
    pub fn capacity_for(&self, share: f64, hit_fraction: f64, sketched_keys: u64) -> usize {
        let degree = self.degree_for(share, hit_fraction);
        (degree * self.unit).min(sketched_keys as usize)
    }
}

/// Configuration of the session-embedded live rebalancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveRebalanceConfig {
    /// Trigger-poll interval of the background thread.
    pub check_every: Duration,
    /// Access-count trigger: fire when this many fresh demand accesses
    /// accumulated since the last fire (0 disables the count trigger).
    pub min_new_accesses: u64,
    /// Phase trigger: fire when any shard's sketch phase score reaches
    /// the threshold (with the quiescent trigger's hysteresis and
    /// per-shard significance gate).
    pub phase_threshold: Option<f64>,
    /// Minimum fresh accesses between any two fires — the cooldown that
    /// keeps a noisy phase score from thrashing placements.
    pub cooldown: u64,
    /// Entries copied per background-fill step (under brief shard locks).
    pub fill_batch: usize,
    /// Pause between background-fill steps — the pacing that keeps
    /// warming from starving serving.
    pub fill_pause: Duration,
    /// Staging is warm enough to commit once it holds this fraction of
    /// `min(primary residency, staging capacity)`.
    pub warm_fraction: f64,
    /// Optional read-hot replication on top of migration.
    pub replication: Option<ReplicationPolicy>,
}

impl Default for LiveRebalanceConfig {
    fn default() -> Self {
        LiveRebalanceConfig {
            check_every: Duration::from_micros(500),
            min_new_accesses: 0,
            phase_threshold: Some(0.5),
            cooldown: 256,
            fill_batch: 64,
            fill_pause: Duration::from_micros(50),
            warm_fraction: 0.9,
            replication: None,
        }
    }
}

impl LiveRebalanceConfig {
    /// Enables the access-count trigger.
    pub fn with_min_new_accesses(mut self, min: u64) -> Self {
        self.min_new_accesses = min;
        self
    }

    /// Sets (or disables, with `None`) the phase trigger.
    pub fn with_phase_threshold(mut self, threshold: Option<f64>) -> Self {
        self.phase_threshold = threshold;
        self
    }

    /// Sets the fresh-access cooldown between fires.
    pub fn with_cooldown(mut self, cooldown: u64) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Enables sketch-driven read-hot replication.
    pub fn with_replication(mut self, policy: ReplicationPolicy) -> Self {
        self.replication = Some(policy);
        self
    }
}

/// Migration activity of one session, reported in
/// [`EngineReport`](crate::EngineReport) and all bench JSON. All zero when
/// the session ran without a live rebalancer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Completed double-buffered tier migrations.
    pub migrations: u64,
    /// In-place capacity-only re-sizes (no tier change, no staging).
    pub resizes: u64,
    /// Staging entries warmed by copy-on-access mirroring.
    pub copy_fills: u64,
    /// Staging entries warmed by the paced background filler.
    pub background_fills: u64,
    /// Fill charges of committed migrations (`fills × destination
    /// fill_ns`), also added to the migrated shard's cumulative cost.
    pub migration_cost_ns: u64,
    /// Route epochs published (0 = the route never changed).
    pub route_epoch: u64,
}

impl MigrationReport {
    /// JSON object (stable field names, asserted in CI).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"migrations\": {}, \"resizes\": {}, \"copy_fills\": {}, \
             \"background_fills\": {}, \"migration_cost_ns\": {}, \"route_epoch\": {}}}",
            self.migrations,
            self.resizes,
            self.copy_fills,
            self.background_fills,
            self.migration_cost_ns,
            self.route_epoch
        )
    }
}

/// Replication activity of one session, reported alongside
/// [`MigrationReport`]. All zero when replication was not enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationReport {
    /// Shards holding a replica at session end.
    pub replicated_shards: u64,
    /// Hits re-priced at the replica tier's cost.
    pub replica_hits: u64,
    /// Copy-on-access fills into replicas.
    pub replica_fills: u64,
    /// Replica entries invalidated (primary-miss writes plus TTL decay).
    pub invalidations: u64,
    /// Total cost refunded by replica-served hits.
    pub saved_cost_ns: u64,
    /// Total fill cost charged for replica warming.
    pub replica_cost_ns: u64,
}

impl ReplicationReport {
    /// JSON object (stable field names, asserted in CI).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"replicated_shards\": {}, \"replica_hits\": {}, \"replica_fills\": {}, \
             \"invalidations\": {}, \"saved_cost_ns\": {}, \"replica_cost_ns\": {}}}",
            self.replicated_shards,
            self.replica_hits,
            self.replica_fills,
            self.invalidations,
            self.saved_cost_ns,
            self.replica_cost_ns
        )
    }
}

/// The double-buffered destination of one in-flight shard migration:
/// a fresh buffer at the new capacity, priced at the destination tier.
#[derive(Debug)]
pub(crate) struct StagingBuffer {
    pub(crate) buffer: GpuBuffer,
    pub(crate) tier: usize,
    pub(crate) cost: TierCost,
    pub(crate) backend: crate::backend::BackendSpec,
    pub(crate) copy_fills: u64,
    pub(crate) background_fills: u64,
}

impl StagingBuffer {
    fn new(
        placement: &ShardPlacement,
        cost: TierCost,
        backend: crate::backend::BackendSpec,
    ) -> Self {
        StagingBuffer {
            buffer: GpuBuffer::new(placement.capacity.max(1)),
            tier: placement.tier,
            cost,
            backend,
            copy_fills: 0,
            background_fills: 0,
        }
    }

    /// Copy-on-access admission: mirrors a just-demanded key. A full
    /// staging buffer only displaces a colder entry.
    pub(crate) fn admit(&mut self, key: VectorKey, priority: u64, prefetched: bool) -> bool {
        if self.buffer.contains(key) {
            return false;
        }
        if self.buffer.is_full() {
            if self.buffer.min_priority().unwrap_or(0) >= priority {
                return false;
            }
            self.buffer.evict_min();
        }
        self.buffer.insert(key, priority, prefetched);
        true
    }

    /// One paced background-fill step: copies up to `batch` of the
    /// primary's hottest entries (priority and prefetch flag preserved,
    /// so first-touch classification survives the swap). Returns how many
    /// were copied — 0 means there is nothing left worth copying.
    fn fill_step(&mut self, primary: &GpuBuffer, batch: usize) -> usize {
        let mut filled = 0;
        for (key, priority, prefetched) in primary.iter_hot_first() {
            if filled >= batch || self.buffer.is_full() {
                break;
            }
            if self.buffer.contains(key) {
                continue;
            }
            self.buffer.insert(key, priority, prefetched);
            self.background_fills += 1;
            filled += 1;
        }
        filled
    }

    fn warm_enough(&self, primary_len: usize, warm_fraction: f64) -> bool {
        let target = primary_len.min(self.buffer.capacity());
        self.buffer.len() as f64 >= target as f64 * warm_fraction
    }
}

/// Running totals the live subsystem accumulates across migrations and
/// retired replicas.
#[derive(Debug, Default)]
pub(crate) struct LiveCounters {
    pub(crate) migrations: AtomicU64,
    pub(crate) resizes: AtomicU64,
    pub(crate) copy_fills: AtomicU64,
    pub(crate) background_fills: AtomicU64,
    pub(crate) migration_cost_ns: AtomicU64,
    pub(crate) replica_hits: AtomicU64,
    pub(crate) replica_fills: AtomicU64,
    pub(crate) invalidations: AtomicU64,
    pub(crate) saved_cost_ns: AtomicU64,
    pub(crate) replica_cost_ns: AtomicU64,
}

/// Shared state of a live-migration-enabled session: the route table,
/// one staging slot per shard, counters, and the rebalancer's stop flag.
#[derive(Debug)]
pub(crate) struct LiveState {
    pub(crate) cfg: LiveRebalanceConfig,
    pub(crate) routes: RouteTable,
    staging: Vec<Mutex<Option<StagingBuffer>>>,
    /// Serializes whole-migration critical sections (the background loop
    /// plus manual [`ServingSession::migrate_shard`]
    /// (crate::ServingSession::migrate_shard) calls).
    migrating: Mutex<()>,
    pub(crate) counters: LiveCounters,
    pub(crate) stop: AtomicBool,
}

impl LiveState {
    pub(crate) fn new(num_shards: usize, cfg: LiveRebalanceConfig) -> Self {
        LiveState {
            cfg,
            routes: RouteTable::new(num_shards),
            staging: (0..num_shards).map(|_| Mutex::new(None)).collect(),
            migrating: Mutex::new(()),
            counters: LiveCounters::default(),
            stop: AtomicBool::new(false),
        }
    }

    /// Copy-on-access mirroring, called by workers for shards routed
    /// [`ShardRoute::Migrating`] — under the shard mutex, after the part
    /// was served against the (authoritative) primary.
    pub(crate) fn mirror(&self, shard: &mut Shard, keys: &[VectorKey]) {
        let mut slot = self.staging[shard.id]
            .lock()
            .expect("staging lock poisoned");
        let Some(staging) = slot.as_mut() else {
            // The migration committed (or was abandoned) after this
            // request pinned its route: the primary already is the new
            // buffer, nothing to mirror.
            return;
        };
        for &key in keys {
            // Served keys are resident in the primary (a miss inserts);
            // copy at the primary's current priority so the staged copy
            // preserves relative eviction order.
            let priority = shard
                .buffer
                .buffer()
                .priority(key)
                .unwrap_or(shard.buffer.eviction_speed());
            if staging.admit(key, priority, false) {
                staging.copy_fills += 1;
            }
        }
    }

    /// Snapshot of the migration counters as a report.
    pub(crate) fn migration_report(&self) -> MigrationReport {
        MigrationReport {
            migrations: self.counters.migrations.load(Ordering::Acquire),
            resizes: self.counters.resizes.load(Ordering::Acquire),
            copy_fills: self.counters.copy_fills.load(Ordering::Acquire),
            background_fills: self.counters.background_fills.load(Ordering::Acquire),
            migration_cost_ns: self.counters.migration_cost_ns.load(Ordering::Acquire),
            route_epoch: self.routes.current_epoch(),
        }
    }

    /// Snapshot of the replication counters (retired replicas only — the
    /// session folds still-installed replicas in at drain).
    pub(crate) fn replication_report(&self) -> ReplicationReport {
        ReplicationReport {
            replicated_shards: 0,
            replica_hits: self.counters.replica_hits.load(Ordering::Acquire),
            replica_fills: self.counters.replica_fills.load(Ordering::Acquire),
            invalidations: self.counters.invalidations.load(Ordering::Acquire),
            saved_cost_ns: self.counters.saved_cost_ns.load(Ordering::Acquire),
            replica_cost_ns: self.counters.replica_cost_ns.load(Ordering::Acquire),
        }
    }

    /// Folds a retired (or drained) replica's counters into the totals.
    pub(crate) fn fold_replica(&self, replica: &ReplicaState) {
        let c = &self.counters;
        c.replica_hits.fetch_add(replica.hits, Ordering::AcqRel);
        c.replica_fills.fetch_add(replica.fills, Ordering::AcqRel);
        c.invalidations
            .fetch_add(replica.invalidations, Ordering::AcqRel);
        c.saved_cost_ns
            .fetch_add(replica.saved_cost_ns, Ordering::AcqRel);
        c.replica_cost_ns
            .fetch_add(replica.fill_cost_ns, Ordering::AcqRel);
    }
}

/// Publishes shard `sid`'s settled (post-migration) route:
/// [`ShardRoute::Replicated`] when a replication pass installed a replica
/// while the shard was routed [`ShardRoute::Migrating`] (`set_replica`
/// deliberately preserves the `Migrating` mark, so nothing else would
/// restore `Replicated`), [`ShardRoute::Direct`] otherwise. The replica
/// check cannot live inside the publish closure: holding the shard mutex
/// across the epoch fence would deadlock against a pinned reader waiting
/// on that same mutex.
fn publish_settled_route(live: &LiveState, shards: &[Mutex<Shard>], sid: usize) {
    let mark = if shards[sid]
        .lock()
        .expect("shard mutex poisoned")
        .replica
        .is_some()
    {
        ShardRoute::Replicated
    } else {
        ShardRoute::Direct
    };
    live.routes.publish_with(|routes| routes[sid] = mark);
}

/// Runs one full double-buffered migration of shard `sid` to `placement`:
/// install staging, publish [`ShardRoute::Migrating`], paced warm-up,
/// publish [`ShardRoute::Direct`] (the route CAS + epoch fence), then
/// swap storage under the shard lock and retire the old buffer. Returns
/// `false` if the migration was abandoned by a session stop.
pub(crate) fn migrate_shard(
    live: &LiveState,
    shards: &[Mutex<Shard>],
    topology: &TierTopology,
    sid: usize,
    placement: &ShardPlacement,
) -> bool {
    let _serial = live.migrating.lock().expect("migration lock poisoned");
    let dest = topology.tier(placement.tier);
    let (cost, backend) = (dest.cost, dest.backend);
    {
        let mut slot = live.staging[sid].lock().expect("staging lock poisoned");
        *slot = Some(StagingBuffer::new(placement, cost, backend));
    }
    live.routes
        .publish_with(|routes| routes[sid] = ShardRoute::Migrating);
    // Paced warm-up: brief shard+staging critical sections, sleeping
    // between steps so serving traffic keeps the locks most of the time.
    loop {
        let warm = {
            let shard = shards[sid].lock().expect("shard mutex poisoned");
            let mut slot = live.staging[sid].lock().expect("staging lock poisoned");
            let staging = slot.as_mut().expect("staging installed above");
            let filled = staging.fill_step(shard.buffer.buffer(), live.cfg.fill_batch);
            filled == 0 || staging.warm_enough(shard.buffer.len(), live.cfg.warm_fraction)
        };
        if warm {
            break;
        }
        if live.stop.load(Ordering::Acquire) {
            // Session is draining: abandon the migration. The primary
            // never stopped being authoritative, so nothing is lost.
            let staging = live.staging[sid]
                .lock()
                .expect("staging lock poisoned")
                .take();
            publish_settled_route(live, shards, sid);
            if let Some(s) = staging {
                let c = &live.counters;
                c.copy_fills.fetch_add(s.copy_fills, Ordering::AcqRel);
                c.background_fills
                    .fetch_add(s.background_fills, Ordering::AcqRel);
            }
            return false;
        }
        std::thread::sleep(live.cfg.fill_pause);
    }
    // The route CAS: after this publish returns, the epoch fence has
    // drained every request that could still mirror into staging.
    publish_settled_route(live, shards, sid);
    let mut shard = shards[sid].lock().expect("shard mutex poisoned");
    let staging = live.staging[sid]
        .lock()
        .expect("staging lock poisoned")
        .take()
        .expect("staging survives until commit");
    let fills = staging.copy_fills + staging.background_fills;
    let fill_cost = fills * staging.cost.fill_ns;
    let retired = shard
        .buffer
        .replace_storage(staging.buffer, staging.cost, staging.backend);
    shard.buffer.charge_cost_ns(fill_cost);
    shard.tier = staging.tier;
    let c = &live.counters;
    c.migrations.fetch_add(1, Ordering::AcqRel);
    c.copy_fills.fetch_add(staging.copy_fills, Ordering::AcqRel);
    c.background_fills
        .fetch_add(staging.background_fills, Ordering::AcqRel);
    c.migration_cost_ns.fetch_add(fill_cost, Ordering::AcqRel);
    drop(retired);
    true
}

/// Installs, re-sizes, or removes shard `sid`'s fast-tier replica under
/// the shard mutex (`capacity == 0` removes; retired counters fold into
/// the session totals), then publishes the route mark. Returns whether
/// anything changed.
pub(crate) fn set_replica(
    live: &LiveState,
    shards: &[Mutex<Shard>],
    topology: &TierTopology,
    sid: usize,
    capacity: usize,
    ttl_epochs: u64,
) -> bool {
    let fast = topology.tier(0).cost;
    let changed = {
        let mut shard = shards[sid].lock().expect("shard mutex poisoned");
        match (&mut shard.replica, capacity) {
            (None, 0) => false,
            (Some(_), 0) => {
                let replica = shard.replica.take().expect("checked above");
                live.fold_replica(&replica);
                true
            }
            (Some(replica), cap) => replica.set_capacity(cap),
            (None, cap) => {
                shard.replica = Some(ReplicaState::new(
                    cap,
                    fast.hit_ns,
                    fast.fill_ns,
                    live.routes.epoch_handle(),
                    ttl_epochs,
                ));
                true
            }
        }
    };
    if changed {
        let mark = if capacity > 0 {
            ShardRoute::Replicated
        } else {
            ShardRoute::Direct
        };
        live.routes.publish_with(|routes| {
            if routes[sid] != ShardRoute::Migrating {
                routes[sid] = mark;
            }
        });
    }
    changed
}

/// Snapshot-and-delta trigger of the live rebalancer: the quiescent
/// [`Rebalancer`](crate::Rebalancer)'s access-count + significance-gated
/// phase trigger, evaluated against the shard slice under brief locks.
struct LiveTrigger {
    min_new: u64,
    phase_threshold: Option<f64>,
    cooldown: u64,
    armed: Vec<bool>,
    last_traffic: Vec<TierTraffic>,
    last_total: u64,
}

impl LiveTrigger {
    fn new(cfg: &LiveRebalanceConfig, num_shards: usize) -> Self {
        LiveTrigger {
            min_new: cfg.min_new_accesses,
            phase_threshold: cfg.phase_threshold,
            cooldown: cfg.cooldown.max(1),
            armed: vec![true; num_shards],
            last_traffic: vec![TierTraffic::default(); num_shards],
            last_total: 0,
        }
    }

    /// Returns per-shard fresh-traffic deltas when a trigger fires.
    fn check(&mut self, shards: &[Mutex<Shard>]) -> Option<Vec<TierTraffic>> {
        let n = shards.len();
        let mut demands = vec![0u64; n];
        let mut scores = vec![0.0f64; n];
        for (i, m) in shards.iter().enumerate() {
            let s = m.lock().expect("shard mutex poisoned");
            demands[i] = s.buffer.demand_count();
            scores[i] = s.buffer.phase_score();
        }
        let total: u64 = demands.iter().sum();
        let fresh = total.saturating_sub(self.last_total);
        let count_fire = self.min_new > 0 && fresh >= self.min_new;
        // A score below threshold re-arms its shard; an armed shard
        // at/above threshold *qualifies* only if it also saw a
        // significant share of the fresh mass (edge-sensitive
        // hysteresis, as in the quiescent trigger). Only qualified
        // shards are disarmed on a fire — an idle shard whose cold
        // sketch scores high must stay armed, or a later real flip on
        // it would pass undetected.
        let mut qualified = Vec::new();
        if let Some(threshold) = self.phase_threshold {
            let significant = (fresh / (2 * n as u64)).max(1);
            for i in 0..n {
                if scores[i] < threshold {
                    self.armed[i] = true;
                } else if self.armed[i]
                    && demands[i].saturating_sub(self.last_traffic[i].demand()) >= significant
                {
                    qualified.push(i);
                }
            }
        }
        if (!count_fire && qualified.is_empty()) || fresh < self.cooldown {
            return None;
        }
        // Fire: snapshot full traffic, compute the per-shard deltas that
        // placement acts on, disarm the shards that fired.
        let mut deltas = Vec::with_capacity(n);
        let mut snapshot = Vec::with_capacity(n);
        for (i, m) in shards.iter().enumerate() {
            let s = m.lock().expect("shard mutex poisoned");
            let t = s.buffer.traffic();
            deltas.push(t.delta_since(&self.last_traffic[i]));
            snapshot.push(t);
        }
        for i in qualified {
            self.armed[i] = false;
        }
        self.last_traffic = snapshot;
        self.last_total = total;
        Some(deltas)
    }
}

/// The background live-rebalancer loop, run on its own thread for the
/// lifetime of a live-enabled [`ServingSession`](crate::ServingSession):
/// poll the trigger, re-run the system's placement policy on fresh
/// traffic deltas, migrate/resize shards whose placement changed, and
/// apply the replication policy.
///
/// A table-aware placement re-runs its pin/split analysis on each firing
/// (merged per-table profiles across shards) and republishes the router's
/// pin directory *before* any shard migrates/resizes, so drifted tables
/// re-home under the new routing first — the live re-split path.
pub(crate) fn live_loop(
    live: &LiveState,
    shards: &[Mutex<Shard>],
    ctx: &GuidanceCtx,
    router: &crate::ShardRouter,
) {
    let mut trigger = LiveTrigger::new(&live.cfg, shards.len());
    while !live.stop.load(Ordering::Acquire) {
        std::thread::sleep(live.cfg.check_every);
        if live.stop.load(Ordering::Acquire) {
            break;
        }
        let Some(deltas) = trigger.check(shards) else {
            continue;
        };
        let tables = crate::table_profile::TableProfiler::merge(
            shards
                .iter()
                .map(|s| {
                    let shard = s.lock().expect("shard mutex poisoned");
                    shard.profiler.clone()
                })
                .collect::<Vec<_>>()
                .iter()
                .filter_map(|p| p.as_ref()),
        );
        let table_placement =
            ctx.placement
                .place_with_tables(shards.len(), &ctx.topology, &deltas, &tables);
        router.install(&table_placement.tables);
        // Buffer pin sets follow the routing install (before any shrink or
        // staged migration below, so neither can displace a freshly
        // pinned footprint; `replace_storage` carries pins across the
        // double-buffer commit).
        let pins =
            crate::table_profile::pinned_tables_per_shard(&table_placement.tables, shards.len());
        for (shard, shard_pins) in shards.iter().zip(&pins) {
            let mut s = shard.lock().expect("shard mutex poisoned");
            s.set_pinned_tables(shard_pins);
        }
        let placements = table_placement.placements;
        for (sid, placement) in placements.iter().enumerate() {
            if live.stop.load(Ordering::Acquire) {
                return;
            }
            let (cur_tier, cur_cap) = {
                let s = shards[sid].lock().expect("shard mutex poisoned");
                (s.tier, s.buffer.capacity())
            };
            if placement.tier != cur_tier {
                migrate_shard(live, shards, &ctx.topology, sid, placement);
            } else if placement.capacity.max(1) != cur_cap {
                let mut s = shards[sid].lock().expect("shard mutex poisoned");
                s.buffer.resize(placement.capacity.max(1));
                live.counters.resizes.fetch_add(1, Ordering::AcqRel);
            }
        }
        if let Some(policy) = live.cfg.replication {
            replication_pass(live, shards, ctx, &policy, &deltas);
        }
    }
}

/// One replication-policy evaluation over fresh traffic deltas.
fn replication_pass(
    live: &LiveState,
    shards: &[Mutex<Shard>],
    ctx: &GuidanceCtx,
    policy: &ReplicationPolicy,
    deltas: &[TierTraffic],
) {
    let total: u64 = deltas.iter().map(TierTraffic::demand).sum();
    if total == 0 {
        return;
    }
    for (sid, delta) in deltas.iter().enumerate() {
        if live.stop.load(Ordering::Acquire) {
            return;
        }
        let demand = delta.demand();
        let share = demand as f64 / total as f64;
        let hit_fraction = if demand == 0 {
            0.0
        } else {
            delta.hits as f64 / demand as f64
        };
        let in_fast_tier = {
            let s = shards[sid].lock().expect("shard mutex poisoned");
            s.tier == 0
        };
        // A shard already living in the fast tier gains nothing from a
        // same-tier replica.
        let capacity = if in_fast_tier {
            0
        } else {
            policy.capacity_for(share, hit_fraction, delta.unique_keys)
        };
        set_replica(
            live,
            shards,
            &ctx.topology,
            sid,
            capacity,
            policy.ttl_epochs,
        );
    }
}

/// Read-hot fast-tier replica of a shard's celebrity keys. Lives under
/// the shard mutex; consulted by `Shard::record_access` after the primary
/// classifies each demand access.
///
/// Entries are epoch-stamped against the session's route epoch: a primary
/// miss (the write signal) invalidates immediately; an entry older than
/// `ttl_epochs` route epochs decays to absent (lease-style freshness —
/// hammered keys get cheaply re-filled, abandoned ones age out).
/// Admission is two-touch ([`ReplicaState::offer`]): a key fills only on
/// its second fresh hit, so one-touch keys never churn the replica.
#[derive(Debug)]
pub(crate) struct ReplicaState {
    capacity: usize,
    ttl_epochs: u64,
    hit_ns: u64,
    fill_ns: u64,
    epoch: Arc<AtomicU64>,
    entries: HashMap<VectorKey, u64>,
    /// Two-touch admission ledger: keys a primary hit has nominated but
    /// that have not yet earned a replica slot (see
    /// [`ReplicaState::offer`]). Bounded like `entries`.
    candidates: HashMap<VectorKey, u64>,
    pub(crate) hits: u64,
    pub(crate) fills: u64,
    pub(crate) invalidations: u64,
    pub(crate) saved_cost_ns: u64,
    pub(crate) fill_cost_ns: u64,
}

impl ReplicaState {
    pub(crate) fn new(
        capacity: usize,
        hit_ns: u64,
        fill_ns: u64,
        epoch: Arc<AtomicU64>,
        ttl_epochs: u64,
    ) -> Self {
        ReplicaState {
            capacity: capacity.max(1),
            ttl_epochs: ttl_epochs.max(1),
            hit_ns,
            fill_ns,
            epoch,
            entries: HashMap::new(),
            candidates: HashMap::new(),
            hits: 0,
            fills: 0,
            invalidations: 0,
            saved_cost_ns: 0,
            fill_cost_ns: 0,
        }
    }

    fn now(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The replica tier's hit cost (what a replica-served hit is
    /// re-priced to).
    pub(crate) fn hit_ns(&self) -> u64 {
        self.hit_ns
    }

    /// The replica tier's fill cost (charged per copy-on-access fill).
    pub(crate) fn fill_ns(&self) -> u64 {
        self.fill_ns
    }

    /// Current replica residency.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `key` is replica-resident and fresh. A stale (decayed)
    /// entry is removed and counted as an invalidation.
    pub(crate) fn probe(&mut self, key: VectorKey) -> bool {
        let now = self.now();
        match self.entries.get(&key) {
            Some(&stamp) if now.saturating_sub(stamp) < self.ttl_epochs => true,
            Some(_) => {
                self.entries.remove(&key);
                self.invalidations += 1;
                false
            }
            None => false,
        }
    }

    /// Copy-on-access admission: a key earns its replica slot on its
    /// *second* fresh primary hit. The first hit only nominates the key
    /// into the candidate ledger; the second (within the TTL) fills.
    /// Without the gate, a shard whose hot set dwarfs the replica
    /// capacity churns it — most hits pay `fill_ns` and displace an
    /// entry that would have earned a refund, so enabling replication
    /// could *raise* modeled cost on flat intra-shard distributions.
    /// Two touches spend replica slots only on keys with demonstrated
    /// re-reference. Returns whether the key was filled (the caller
    /// charges the fill against the home buffer only then).
    pub(crate) fn offer(&mut self, key: VectorKey) -> bool {
        let now = self.now();
        match self.candidates.get(&key) {
            Some(&stamp) if now.saturating_sub(stamp) < self.ttl_epochs => {
                self.candidates.remove(&key);
                self.fill(key);
                true
            }
            _ => {
                // First (or staled) touch: (re-)nominate, displacing the
                // stalest candidate when the ledger is full.
                if self.candidates.len() >= self.capacity && !self.candidates.contains_key(&key) {
                    let victim = self
                        .candidates
                        .iter()
                        .min_by_key(|&(&k, &stamp)| (stamp, k.as_u64()))
                        .map(|(&k, _)| k);
                    if let Some(v) = victim {
                        self.candidates.remove(&v);
                    }
                }
                self.candidates.insert(key, now);
                false
            }
        }
    }

    /// Copy-on-access fill of a hit key, displacing the stalest entry
    /// when full. Charges `fill_ns`.
    pub(crate) fn fill(&mut self, key: VectorKey) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            let victim = self
                .entries
                .iter()
                .min_by_key(|&(&k, &stamp)| (stamp, k.as_u64()))
                .map(|(&k, _)| k);
            if let Some(v) = victim {
                self.entries.remove(&v);
            }
        }
        self.entries.insert(key, self.now());
        self.fills += 1;
        self.fill_cost_ns += self.fill_ns;
    }

    /// Write invalidation: a primary miss means the replica copy (if any)
    /// is no longer trustworthy — and neither is a pending nomination
    /// (dropping it never counts as an invalidation; the replica never
    /// held the key).
    pub(crate) fn invalidate(&mut self, key: VectorKey) {
        self.candidates.remove(&key);
        if self.entries.remove(&key).is_some() {
            self.invalidations += 1;
        }
    }

    /// Re-sizes the replica, evicting stalest entries first. Returns
    /// whether the capacity changed.
    pub(crate) fn set_capacity(&mut self, capacity: usize) -> bool {
        let capacity = capacity.max(1);
        if capacity == self.capacity {
            return false;
        }
        while self.entries.len() > capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|&(&k, &stamp)| (stamp, k.as_u64()))
                .map(|(&k, _)| k);
            match victim {
                Some(v) => {
                    self.entries.remove(&v);
                    self.invalidations += 1;
                }
                None => break,
            }
        }
        // The candidate ledger shares the replica's bound; trimming
        // nominations is not an invalidation (nothing was ever served).
        while self.candidates.len() > capacity {
            let victim = self
                .candidates
                .iter()
                .min_by_key(|&(&k, &stamp)| (stamp, k.as_u64()))
                .map(|(&k, _)| k);
            match victim {
                Some(v) => {
                    self.candidates.remove(&v);
                }
                None => break,
            }
        }
        self.capacity = capacity;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(0), RowId(r))
    }

    #[test]
    fn route_table_publishes_and_reads_consistently() {
        let table = RouteTable::new(3);
        assert_eq!(table.current_epoch(), 0);
        let e = table.publish_with(|r| r[2] = ShardRoute::Migrating);
        assert_eq!(e, 1);
        {
            let pinned = table.pin();
            assert_eq!(pinned.epoch(), 1);
            assert_eq!(pinned.route(0), ShardRoute::Direct);
            assert_eq!(pinned.route(2), ShardRoute::Migrating);
            assert_eq!(pinned.route(99), ShardRoute::Direct);
        }
        table.publish_with(|r| {
            r[2] = ShardRoute::Direct;
            r[0] = ShardRoute::Replicated;
        });
        let pinned = table.pin();
        assert_eq!(pinned.epoch(), 2);
        assert_eq!(pinned.route(2), ShardRoute::Direct);
        assert_eq!(pinned.replicated(), 1);
    }

    #[test]
    fn route_table_fence_under_concurrent_readers() {
        use std::sync::atomic::{AtomicBool, AtomicU64};
        let table = Arc::new(RouteTable::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let pin_counts: Vec<Arc<AtomicU64>> = (0..4).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let readers: Vec<_> = pin_counts
            .iter()
            .map(|pins| {
                let table = Arc::clone(&table);
                let stop = Arc::clone(&stop);
                let pins = Arc::clone(pins);
                std::thread::spawn(move || {
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let pinned = table.pin();
                        // Epochs are monotone per reader, and the routes
                        // vec is never torn (always full length).
                        assert!(pinned.epoch() >= last_epoch);
                        assert_eq!(pinned.routes.len(), 4);
                        last_epoch = pinned.epoch();
                        pins.fetch_add(1, Ordering::Release);
                    }
                })
            })
            .collect();
        for i in 0..500u64 {
            let sid = (i % 4) as usize;
            table.publish_with(|r| {
                r[sid] = if r[sid] == ShardRoute::Direct {
                    ShardRoute::Migrating
                } else {
                    ShardRoute::Direct
                };
            });
        }
        // Don't stop until every reader has raced the publishes at least
        // once: under a loaded test host a reader may not have been
        // scheduled yet, and stopping early would prove nothing.
        while pin_counts.iter().any(|p| p.load(Ordering::Acquire) == 0) {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        for h in readers {
            h.join().expect("reader panicked");
        }
        assert!(pin_counts.iter().all(|p| p.load(Ordering::Acquire) > 0));
        assert_eq!(table.current_epoch(), 500);
    }

    #[test]
    fn replication_policy_degree_scales_with_share() {
        let p = ReplicationPolicy::default();
        // Below either threshold: no replica.
        assert_eq!(p.degree_for(0.1, 0.99), 0);
        assert_eq!(p.degree_for(0.9, 0.3), 0);
        // Qualifying shards scale with demand share.
        assert_eq!(p.degree_for(0.25, 0.9), 1);
        assert_eq!(p.degree_for(0.5, 0.9), 2);
        assert_eq!(p.degree_for(1.0, 1.0), 4);
        // Capacity is sketch-capped.
        assert_eq!(p.capacity_for(1.0, 1.0, 1_000), 4 * 32);
        assert_eq!(p.capacity_for(1.0, 1.0, 10), 10);
        assert_eq!(p.capacity_for(0.05, 1.0, 1_000), 0);
    }

    #[test]
    fn replica_probe_fill_and_write_invalidation() {
        let epoch = Arc::new(AtomicU64::new(0));
        let mut rep = ReplicaState::new(2, 80, 300, Arc::clone(&epoch), 4);
        assert!(!rep.probe(key(1)));
        rep.fill(key(1));
        assert!(rep.probe(key(1)));
        assert_eq!(rep.fill_cost_ns, 300);
        // Capacity bound: filling a third key displaces the stalest.
        rep.fill(key(2));
        epoch.store(1, Ordering::Release);
        rep.fill(key(3));
        assert_eq!(rep.len(), 2);
        assert!(!rep.probe(key(1)), "stalest entry displaced");
        // Write invalidation.
        rep.invalidate(key(3));
        assert!(!rep.probe(key(3)));
        assert!(rep.invalidations >= 1);
    }

    #[test]
    fn replica_two_touch_admission_gates_fills() {
        let epoch = Arc::new(AtomicU64::new(0));
        let mut rep = ReplicaState::new(2, 80, 300, Arc::clone(&epoch), 4);
        // First touch nominates without filling (and without charging).
        assert!(!rep.offer(key(1)));
        assert_eq!((rep.fills, rep.fill_cost_ns), (0, 0));
        assert!(!rep.probe(key(1)));
        // Second fresh touch fills.
        assert!(rep.offer(key(1)));
        assert!(rep.probe(key(1)));
        assert_eq!(rep.fills, 1);
        // A nomination staled past the TTL does not count as a touch:
        // the key re-nominates and must re-earn its slot.
        assert!(!rep.offer(key(2)));
        epoch.store(4, Ordering::Release);
        assert!(!rep.offer(key(2)), "stale nomination re-nominates");
        assert!(rep.offer(key(2)));
        // A write drops the pending nomination too, without counting an
        // invalidation (the replica never held the key).
        assert!(!rep.offer(key(3)));
        let inval_before = rep.invalidations;
        rep.invalidate(key(3));
        assert_eq!(rep.invalidations, inval_before);
        assert!(!rep.offer(key(3)), "invalidated nomination starts over");
    }

    #[test]
    fn replica_entries_decay_past_ttl_epochs() {
        let epoch = Arc::new(AtomicU64::new(0));
        let mut rep = ReplicaState::new(4, 80, 300, Arc::clone(&epoch), 3);
        rep.fill(key(7));
        epoch.store(2, Ordering::Release);
        assert!(rep.probe(key(7)), "within TTL");
        epoch.store(3, Ordering::Release);
        let inval_before = rep.invalidations;
        assert!(!rep.probe(key(7)), "decayed past the epoch fence");
        assert_eq!(rep.invalidations, inval_before + 1);
        // A refill restores service at the new epoch.
        rep.fill(key(7));
        assert!(rep.probe(key(7)));
    }

    #[test]
    fn migration_commit_preserves_replicated_mark() {
        let topology = TierTopology::two_tier(8, 8);
        let live = LiveState::new(
            1,
            LiveRebalanceConfig {
                fill_pause: Duration::ZERO,
                warm_fraction: 1.0,
                ..LiveRebalanceConfig::default()
            },
        );
        let placement = ShardPlacement {
            capacity: 8,
            tier: 0,
        };
        let shards = vec![Mutex::new(Shard::placed(
            0,
            4,
            &placement,
            &topology,
            crate::config::SketchConfig::default(),
        ))];
        assert!(set_replica(&live, &shards, &topology, 0, 4, 8));
        assert_eq!(live.routes.pin().route(0), ShardRoute::Replicated);
        // Migrating the shard publishes `Migrating` over the mark; the
        // commit must settle back to `Replicated`, not clobber it to
        // `Direct` (the replica itself never moved).
        let dest = ShardPlacement {
            capacity: 8,
            tier: 1,
        };
        assert!(migrate_shard(&live, &shards, &topology, 0, &dest));
        assert_eq!(live.routes.pin().route(0), ShardRoute::Replicated);
        assert_eq!(live.routes.pin().replicated(), 1);
        // Removing the replica settles the route to `Direct`.
        assert!(set_replica(&live, &shards, &topology, 0, 0, 8));
        assert_eq!(live.routes.pin().route(0), ShardRoute::Direct);
    }

    #[test]
    fn staging_admission_keeps_hottest() {
        let placement = ShardPlacement {
            capacity: 2,
            tier: 0,
        };
        let mut s = StagingBuffer::new(&placement, TierCost::FREE, Default::default());
        assert!(s.admit(key(1), 5, false));
        assert!(!s.admit(key(1), 5, false), "already staged");
        assert!(s.admit(key(2), 3, false));
        // Full: colder entries are refused, hotter displace the minimum.
        assert!(!s.admit(key(3), 2, false));
        assert!(s.admit(key(4), 9, true));
        assert!(s.buffer.contains(key(4)));
        assert!(!s.buffer.contains(key(2)));
        assert!(s.warm_enough(2, 0.9));
        assert!(
            !StagingBuffer::new(&placement, TierCost::FREE, Default::default()).warm_enough(2, 0.5)
        );
    }
}
