//! The prefetch model (paper §V-B).
//!
//! Two seq2seq LSTM stacks with attention followed by a fully-connected
//! projection head that emits `|PO|` *continuous index codes* in `[0, 1]`.
//! Codes are decoded to concrete vectors by an [`IndexCodec`].
//!
//! Training minimizes the symmetric normalized Chamfer measure (Eq. 5)
//! between the emitted codes and the codes of the next `|W|` OPT-missing
//! vectors, where `|W| = 3 × |PO|` — the decoupled evaluation window that
//! §VII-C shows is essential (an L2 loss with a coupled window stalls; the
//! [`PrefetchLoss::L2`] variant reproduces that baseline for Fig. 11).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recmg_tensor::nn::{DecoderFeed, Embedding, Linear, Module, StackedSeq2Seq};
use recmg_tensor::optim::{Adam, Optimizer};
use recmg_tensor::{ParamStore, Tape, Tensor, Var};
use recmg_trace::VectorKey;

use crate::codec::IndexCodec;
use crate::config::{GuidancePrecision, RecMgConfig};
use crate::fast::{fast_linear_batch, FastLstm, FastMat, FastScratch, FastStack};
use crate::labeling::PrefetchExample;

/// Loss used for prefetch training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchLoss {
    /// The paper's symmetric normalized Chamfer measure over the decoupled
    /// window (Eq. 5).
    Chamfer {
        /// Weight of the `PO → W` term.
        alpha: f32,
    },
    /// Position-wise L2 against the first `|PO|` window entries — the
    /// ablation baseline whose "training loss does not decrease after 10
    /// training steps" (Fig. 11).
    L2,
}

/// Per-step loss trace from training (Fig. 11 plots this curve).
#[derive(Debug, Clone)]
pub struct PrefetchTrainingReport {
    /// Loss at every optimizer step.
    pub step_losses: Vec<f32>,
    /// Wall-clock training time.
    pub wall: Duration,
}

impl PrefetchTrainingReport {
    /// Mean loss over the final quarter of steps.
    pub fn tail_loss(&self) -> f32 {
        let n = self.step_losses.len();
        if n == 0 {
            return f32::NAN;
        }
        let tail = &self.step_losses[n - n.div_ceil(4)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    /// Mean loss over the first quarter of steps.
    pub fn head_loss(&self) -> f32 {
        let n = self.step_losses.len();
        if n == 0 {
            return f32::NAN;
        }
        let head = &self.step_losses[..n.div_ceil(4)];
        head.iter().sum::<f32>() / head.len() as f32
    }
}

/// Quality of the prefetch model against held-out examples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefetchEval {
    /// Fraction of predicted vectors that appear in the evaluation window
    /// (the paper's prefetch "accuracy"/correctness).
    pub accuracy: f64,
    /// Eq. 2 coverage: unique predicted ∩ window over unique window.
    pub coverage: f64,
}

/// The prefetch model.
#[derive(Debug, Clone)]
pub struct PrefetchModel {
    cfg: RecMgConfig,
    store: ParamStore,
    emb: Embedding,
    stacks: StackedSeq2Seq,
    proj_hidden: Linear,
    proj_out: Linear,
}

impl PrefetchModel {
    /// Builds an untrained model with `cfg.prefetch_stacks` stacks.
    pub fn new(cfg: &RecMgConfig) -> Self {
        Self::with_stacks(cfg, cfg.prefetch_stacks)
    }

    /// Builds with an explicit stack count (Table III).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is zero.
    pub fn with_stacks(cfg: &RecMgConfig, stacks: usize) -> Self {
        cfg.validate();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xFE7C);
        let emb = Embedding::new(&mut store, &mut rng, "pm.emb", cfg.vocab, cfg.embed_dim);
        let stacks = StackedSeq2Seq::new(
            &mut store,
            &mut rng,
            "pm",
            cfg.embed_dim,
            cfg.prefetch_hidden,
            stacks,
        );
        // "The prefetch model has an output embedding layer (i.e., fully
        // connected and projection layer) after the attention layer" §V-B.
        let proj_hidden = Linear::new(
            &mut store,
            &mut rng,
            "pm.fc",
            cfg.prefetch_hidden,
            cfg.prefetch_hidden,
        );
        let proj_out = Linear::new(&mut store, &mut rng, "pm.proj", cfg.prefetch_hidden, 1);
        PrefetchModel {
            cfg: cfg.clone(),
            store,
            emb,
            stacks,
            proj_hidden,
            proj_out,
        }
    }

    /// Total learnable parameters.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Number of LSTM stacks.
    pub fn n_stacks(&self) -> usize {
        self.stacks.n_stacks()
    }

    fn tokens(&self, keys: &[VectorKey]) -> Vec<usize> {
        keys.iter().map(|k| k.bucket(self.cfg.vocab)).collect()
    }

    /// Forward pass: `|PO|` sigmoid-bounded codes as a `[output_len, 1]`
    /// variable.
    fn forward(&self, tape: &mut Tape, keys: &[VectorKey]) -> Var {
        let tokens = self.tokens(keys);
        let x = self.emb.forward(tape, &self.store, &tokens);
        let xs: Vec<Var> = (0..tokens.len())
            .map(|i| tape.gather_rows(x, &[i]))
            .collect();
        let outs = self.stacks.forward(
            tape,
            &self.store,
            &xs,
            DecoderFeed::Autoregressive(self.cfg.output_len),
        );
        let codes: Vec<Var> = outs
            .into_iter()
            .map(|o| {
                let h = self.proj_hidden.forward(tape, &self.store, o);
                let h = tape.tanh(h);
                let z = self.proj_out.forward(tape, &self.store, h);
                tape.sigmoid(z)
            })
            .collect();
        tape.concat_rows(&codes)
    }

    /// The raw predicted codes for an input chunk.
    pub fn predict_codes(&self, keys: &[VectorKey]) -> Vec<f32> {
        if keys.is_empty() {
            return Vec::new();
        }
        let mut tape = Tape::new(&self.store);
        let out = self.forward(&mut tape, keys);
        tape.value(out).data().to_vec()
    }

    /// Predicted vectors to prefetch (decoded and deduplicated, order
    /// preserved).
    pub fn predict(&self, keys: &[VectorKey], codec: &dyn IndexCodec) -> Vec<VectorKey> {
        let mut out = Vec::with_capacity(self.cfg.output_len);
        for code in self.predict_codes(keys) {
            if let Some(k) = codec.decode(code) {
                if !out.contains(&k) {
                    out.push(k);
                }
            }
        }
        out
    }

    /// Encodes a window into target codes, skipping vectors outside the
    /// codec vocabulary.
    fn encode_window(&self, window: &[VectorKey], codec: &dyn IndexCodec) -> Vec<f32> {
        window.iter().filter_map(|&k| codec.encode(k)).collect()
    }

    /// Trains the model. With [`PrefetchLoss::L2`] the window is coupled to
    /// the output length (the Fig. 11 baseline); with Chamfer the full
    /// decoupled window is used.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty or `epochs`/`minibatch` is zero.
    pub fn train(
        &mut self,
        examples: &[PrefetchExample],
        codec: &dyn IndexCodec,
        loss_kind: PrefetchLoss,
        epochs: usize,
        minibatch: usize,
    ) -> PrefetchTrainingReport {
        assert!(!examples.is_empty(), "no training examples");
        assert!(epochs > 0 && minibatch > 0, "epochs/minibatch must be > 0");
        let start = Instant::now();
        let params: Vec<_> = self
            .emb
            .params()
            .into_iter()
            .chain(self.stacks.params())
            .chain(self.proj_hidden.params())
            .chain(self.proj_out.params())
            .collect();
        let mut opt = Adam::new(params, self.cfg.lr);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x11EF);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut step_losses = Vec::new();
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut in_batch = 0usize;
            let mut batch_sum = 0.0f32;
            for &ei in &order {
                let ex = &examples[ei];
                let targets = self.encode_window(&ex.window, codec);
                if targets.is_empty() {
                    continue;
                }
                let mut tape = Tape::new(&self.store);
                let codes = self.forward(&mut tape, &ex.input);
                let loss = match loss_kind {
                    PrefetchLoss::Chamfer { alpha } => {
                        tape.chamfer(codes, Tensor::from_slice(&targets), alpha)
                    }
                    PrefetchLoss::L2 => {
                        // Coupled window: compare position-wise against the
                        // first |PO| targets (padding by repetition).
                        let t: Vec<f32> = (0..self.cfg.output_len)
                            .map(|i| targets[i.min(targets.len() - 1)])
                            .collect();
                        tape.mse(codes, Tensor::from_vec(t, &[self.cfg.output_len, 1]))
                    }
                };
                batch_sum += tape.value(loss).data()[0];
                tape.backward(loss, &mut self.store);
                in_batch += 1;
                if in_batch >= minibatch {
                    self.store.clip_grad_norm(5.0);
                    opt.step(&mut self.store);
                    step_losses.push(batch_sum / in_batch as f32);
                    in_batch = 0;
                    batch_sum = 0.0;
                }
            }
            if in_batch > 0 {
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
                step_losses.push(batch_sum / in_batch as f32);
            }
        }
        PrefetchTrainingReport {
            step_losses,
            wall: start.elapsed(),
        }
    }

    /// Compiles a fast, tape-free inference snapshot for online serving
    /// (§VI-C), at exact `f32` precision.
    pub fn compile(&self) -> FastPrefetchModel {
        self.compile_with(GuidancePrecision::default())
    }

    /// Compiles with an explicit weight precision:
    /// [`GuidancePrecision::Int8`] quantizes every weight matrix at build
    /// time (§VI-C's quantization optimization).
    pub fn compile_with(&self, precision: GuidancePrecision) -> FastPrefetchModel {
        let emb = self.store.value(self.emb.params()[0]).clone();
        let sids = self.stacks.params();
        let stacks = (0..self.stacks.n_stacks())
            .map(|s| {
                let w = |i: usize| self.store.value(sids[8 * s + i]).clone();
                FastStack::new(
                    FastLstm::new(w(0), w(1), w(2), precision),
                    FastLstm::new(w(3), w(4), w(5), precision),
                    w(6),
                    w(7),
                    precision,
                )
            })
            .collect();
        FastPrefetchModel {
            vocab: self.cfg.vocab,
            output_len: self.cfg.output_len,
            emb,
            stacks,
            fc_w: FastMat::compile(
                self.store.value(self.proj_hidden.weight_id()).clone(),
                precision,
            ),
            fc_b: self.store.value(self.proj_hidden.bias_id()).clone(),
            proj_w: FastMat::compile(
                self.store.value(self.proj_out.weight_id()).clone(),
                precision,
            ),
            proj_b: self.store.value(self.proj_out.bias_id()).clone(),
            precision,
        }
    }

    /// Evaluates accuracy (Fig. 9's correctness) and Eq. 2 coverage
    /// (Fig. 10) against examples.
    pub fn evaluate(&self, examples: &[PrefetchExample], codec: &dyn IndexCodec) -> PrefetchEval {
        let mut acc_sum = 0.0;
        let mut cov_sum = 0.0;
        let mut n = 0u64;
        for ex in examples {
            let preds = self.predict(&ex.input, codec);
            if preds.is_empty() {
                continue;
            }
            let gt: std::collections::HashSet<VectorKey> = ex.window.iter().copied().collect();
            let hits = preds.iter().filter(|k| gt.contains(k)).count();
            acc_sum += hits as f64 / preds.len() as f64;
            let uniq: std::collections::HashSet<VectorKey> = preds.iter().copied().collect();
            cov_sum += uniq.intersection(&gt).count() as f64 / gt.len() as f64;
            n += 1;
        }
        if n == 0 {
            PrefetchEval::default()
        } else {
            PrefetchEval {
                accuracy: acc_sum / n as f64,
                coverage: cov_sum / n as f64,
            }
        }
    }
}

/// A weight snapshot of a [`PrefetchModel`] with an allocation-light
/// forward pass, suitable for per-thread online serving.
#[derive(Debug, Clone)]
pub struct FastPrefetchModel {
    vocab: usize,
    output_len: usize,
    emb: Tensor,
    stacks: Vec<FastStack>,
    fc_w: FastMat,
    fc_b: Tensor,
    proj_w: FastMat,
    proj_b: Tensor,
    precision: GuidancePrecision,
}

impl FastPrefetchModel {
    /// The weight precision this snapshot was compiled at.
    pub fn precision(&self) -> GuidancePrecision {
        self.precision
    }

    /// Whether the weights are int8-quantized.
    pub fn is_quantized(&self) -> bool {
        self.precision == GuidancePrecision::Int8
    }

    /// Weight footprint in bytes (embedding table included).
    pub fn size_bytes(&self) -> usize {
        self.emb.len() * std::mem::size_of::<f32>()
            + self.stacks.iter().map(FastStack::size_bytes).sum::<usize>()
            + self.fc_w.size_bytes()
            + self.proj_w.size_bytes()
            + (self.fc_b.len() + self.proj_b.len()) * std::mem::size_of::<f32>()
    }

    /// Raw predicted codes (matches [`PrefetchModel::predict_codes`] to
    /// ≤1e-5) — the batch-of-one case of
    /// [`FastPrefetchModel::codes_batch`].
    pub fn codes(&self, keys: &[VectorKey]) -> Vec<f32> {
        self.codes_batch(&[keys]).pop().unwrap_or_default()
    }

    /// Decoded, deduplicated prefetch predictions.
    pub fn predict(&self, keys: &[VectorKey], codec: &dyn IndexCodec) -> Vec<VectorKey> {
        let mut out = Vec::with_capacity(self.output_len);
        for code in self.codes(keys) {
            if let Some(k) = codec.decode(code) {
                if !out.contains(&k) {
                    out.push(k);
                }
            }
        }
        out
    }

    /// Raw predicted codes for many chunks in one batched forward
    /// (allocating a fresh [`FastScratch`]; hot loops should hold one and
    /// call [`FastPrefetchModel::codes_batch_with`]).
    pub fn codes_batch(&self, chunks: &[&[VectorKey]]) -> Vec<Vec<f32>> {
        let mut scratch = FastScratch::default();
        self.codes_batch_with(chunks, &mut scratch)
    }

    /// Raw predicted codes for many chunks, batched and allocation-light:
    /// chunks are bucketed by input length, each bucket runs the aligned
    /// stacks plus the final autoregressive stack as one batch-interleaved
    /// time-major forward (one pass over the weights per bucket) on the
    /// runtime-selected kernel lane, and the fully-connected + projection
    /// head runs one interleaved dense batch per output step. Per chunk,
    /// the result is bit-identical to [`FastPrefetchModel::codes`].
    pub fn codes_batch_with(
        &self,
        chunks: &[&[VectorKey]],
        scratch: &mut FastScratch,
    ) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = chunks
            .iter()
            .map(|c| {
                if c.is_empty() {
                    Vec::new()
                } else {
                    vec![0.0f32; self.output_len]
                }
            })
            .collect();
        let n = self.output_len;
        let lane = crate::fast::active_lane();
        let h = self.fc_w.cols();
        crate::fast::forward_buckets(
            lane,
            &self.emb,
            self.vocab,
            &self.stacks,
            Some(n),
            chunks,
            scratch,
            |bucket, _t, bsz, cur, spare, qs| {
                // Output head per step group: fc + tanh into `spare`
                // ([n, h, bsz]), then the scalar projection back into the
                // head of `cur` ([n, bsz]) — all fc reads finish before
                // the projection overwrites `cur`'s prefix.
                spare.clear();
                spare.resize(n * bsz * h, 0.0);
                for ti in 0..n {
                    fast_linear_batch(
                        lane,
                        &self.fc_w,
                        &self.fc_b,
                        bsz,
                        &cur[ti * h * bsz..(ti + 1) * h * bsz],
                        &mut spare[ti * h * bsz..(ti + 1) * h * bsz],
                        qs,
                    );
                }
                for v in spare.iter_mut() {
                    *v = v.tanh();
                }
                for ti in 0..n {
                    fast_linear_batch(
                        lane,
                        &self.proj_w,
                        &self.proj_b,
                        bsz,
                        &spare[ti * h * bsz..(ti + 1) * h * bsz],
                        &mut cur[ti * bsz..(ti + 1) * bsz],
                        qs,
                    );
                }
                for (b, &ci) in bucket.iter().enumerate() {
                    for oi in 0..n {
                        out[ci][oi] = recmg_tensor::stable_sigmoid(cur[oi * bsz + b]);
                    }
                }
            },
        );
        out
    }

    /// Batched decoded, deduplicated prefetch predictions (allocating a
    /// fresh scratch).
    pub fn predict_batch(
        &self,
        chunks: &[&[VectorKey]],
        codec: &dyn IndexCodec,
    ) -> Vec<Vec<VectorKey>> {
        let mut scratch = FastScratch::default();
        self.predict_batch_with(chunks, codec, &mut scratch)
    }

    /// Batched decoded, deduplicated prefetch predictions over a
    /// caller-held scratch — the guidance plane's entry point
    /// ([`crate::session`]).
    pub fn predict_batch_with(
        &self,
        chunks: &[&[VectorKey]],
        codec: &dyn IndexCodec,
        scratch: &mut FastScratch,
    ) -> Vec<Vec<VectorKey>> {
        self.codes_batch_with(chunks, scratch)
            .into_iter()
            .map(|codes| {
                let mut preds = Vec::with_capacity(self.output_len);
                for code in codes {
                    if let Some(k) = codec.decode(code) {
                        if !preds.contains(&k) {
                            preds.push(k);
                        }
                    }
                }
                preds
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FrequencyRankCodec;
    use crate::labeling::build_training_data;
    use recmg_trace::{RowId, SyntheticConfig, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(0), RowId(r))
    }

    /// Examples with a deterministic relationship: after seeing a chunk
    /// ending in key k, the misses are {k+1, k+2, k+3} (mod a small ring).
    fn ring_examples(cfg: &RecMgConfig, n: usize) -> Vec<PrefetchExample> {
        use rand::Rng;
        let ring = 24u64;
        let mut rng = StdRng::seed_from_u64(77);
        (0..n)
            .map(|_| {
                let start: u64 = rng.gen_range(0..ring);
                let input: Vec<VectorKey> = (0..cfg.input_len as u64)
                    .map(|i| key((start + i) % ring))
                    .collect();
                let last = (start + cfg.input_len as u64 - 1) % ring;
                let window: Vec<VectorKey> = (1..=cfg.window_len() as u64)
                    .map(|i| key((last + i) % ring))
                    .collect();
                PrefetchExample { input, window }
            })
            .collect()
    }

    fn ring_codec() -> FrequencyRankCodec {
        let accesses: Vec<VectorKey> = (0..24).map(key).collect();
        FrequencyRankCodec::from_accesses(&accesses)
    }

    #[test]
    fn output_length_is_config() {
        let cfg = RecMgConfig::tiny();
        let m = PrefetchModel::new(&cfg);
        let keys: Vec<VectorKey> = (0..cfg.input_len as u64).map(key).collect();
        assert_eq!(m.predict_codes(&keys).len(), cfg.output_len);
        let codes = m.predict_codes(&keys);
        assert!(codes.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn chamfer_training_reduces_loss() {
        let cfg = RecMgConfig::tiny();
        let mut m = PrefetchModel::new(&cfg);
        let ex = ring_examples(&cfg, 48);
        let codec = ring_codec();
        let r = m.train(&ex, &codec, PrefetchLoss::Chamfer { alpha: 0.7 }, 6, 4);
        assert!(
            r.tail_loss() < r.head_loss() * 0.8,
            "loss head {} tail {}",
            r.head_loss(),
            r.tail_loss()
        );
    }

    #[test]
    fn trained_model_beats_untrained_on_accuracy() {
        let cfg = RecMgConfig::tiny();
        let ex = ring_examples(&cfg, 60);
        let codec = ring_codec();
        let untrained = PrefetchModel::new(&cfg).evaluate(&ex, &codec);
        let mut m = PrefetchModel::new(&cfg);
        m.train(&ex, &codec, PrefetchLoss::Chamfer { alpha: 0.7 }, 8, 4);
        let trained = m.evaluate(&ex, &codec);
        assert!(
            trained.accuracy > untrained.accuracy,
            "untrained {untrained:?} vs trained {trained:?}"
        );
        assert!(trained.coverage > 0.0);
    }

    #[test]
    fn l2_baseline_trains_but_stalls_relative_to_chamfer() {
        // The Fig. 11 story: same data, two losses; Chamfer keeps
        // improving, L2 plateaus quickly. We check the *relative* loss
        // decrease (each loss has its own scale).
        let cfg = RecMgConfig::tiny();
        let ex = ring_examples(&cfg, 48);
        let codec = ring_codec();
        let mut chamfer = PrefetchModel::new(&cfg);
        let rc = chamfer.train(&ex, &codec, PrefetchLoss::Chamfer { alpha: 0.7 }, 6, 4);
        let mut l2 = PrefetchModel::new(&cfg);
        let rl = l2.train(&ex, &codec, PrefetchLoss::L2, 6, 4);
        let chamfer_drop = rc.head_loss() / rc.tail_loss().max(1e-6);
        let l2_drop = rl.head_loss() / rl.tail_loss().max(1e-6);
        // Both must train on this easy ring; the decisive Fig. 11
        // comparison (L2 stalling on realistic traces) is regenerated by
        // the exp_fig11 harness — here we pin down that the Chamfer loss
        // optimizes robustly.
        assert!(
            chamfer_drop > 1.2,
            "chamfer did not train: drop {chamfer_drop}"
        );
        assert!(l2_drop.is_finite());
    }

    #[test]
    fn works_on_synthetic_trace_pipeline() {
        // End-to-end: generate → label → train → evaluate.
        let cfg = RecMgConfig::tiny();
        let trace = SyntheticConfig::tiny(71).generate();
        let td = build_training_data(trace.accesses(), &cfg, 64);
        assert!(!td.prefetch.is_empty());
        let codec = FrequencyRankCodec::from_accesses(trace.accesses());
        let mut m = PrefetchModel::new(&cfg);
        let subset = &td.prefetch[..td.prefetch.len().min(40)];
        m.train(subset, &codec, PrefetchLoss::Chamfer { alpha: 0.7 }, 3, 4);
        let eval = m.evaluate(subset, &codec);
        assert!(eval.accuracy.is_finite());
    }

    #[test]
    fn stack_count_constructor() {
        let cfg = RecMgConfig::tiny();
        assert_eq!(PrefetchModel::with_stacks(&cfg, 3).n_stacks(), 3);
        let p1 = PrefetchModel::with_stacks(&cfg, 1).num_params();
        let p2 = PrefetchModel::with_stacks(&cfg, 2).num_params();
        assert!(p2 > p1);
    }

    #[test]
    fn compiled_model_matches_tape_forward() {
        let cfg = RecMgConfig::tiny();
        let m = PrefetchModel::new(&cfg);
        let fast = m.compile();
        let keys: Vec<VectorKey> = (0..cfg.input_len as u64).map(|r| key(r * 5 % 19)).collect();
        let a = m.predict_codes(&keys);
        let b = fast.codes(&keys);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "tape {x} vs fast {y}");
        }
        let codec = ring_codec();
        assert_eq!(m.predict(&keys, &codec), fast.predict(&keys, &codec));
    }

    #[test]
    fn quantized_compile_shrinks_and_tracks_f32() {
        let cfg = RecMgConfig::tiny();
        let m = PrefetchModel::new(&cfg);
        let f = m.compile();
        let q = m.compile_with(GuidancePrecision::Int8);
        assert!(!f.is_quantized());
        assert!(q.is_quantized());
        assert!(
            q.size_bytes() * 2 < f.size_bytes(),
            "{} vs {}",
            q.size_bytes(),
            f.size_bytes()
        );
        let keys: Vec<VectorKey> = (0..cfg.input_len as u64).map(|r| key(r * 5 % 19)).collect();
        let cf = f.codes(&keys);
        let cq = q.codes(&keys);
        assert_eq!(cf.len(), cq.len());
        for (a, b) in cf.iter().zip(&cq) {
            assert!((a - b).abs() < 0.25, "f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn codes_batch_handles_empty_and_mixed_lengths() {
        let cfg = RecMgConfig::tiny();
        let fast = PrefetchModel::new(&cfg).compile();
        let a: Vec<VectorKey> = (0..cfg.input_len as u64).map(key).collect();
        let b: Vec<VectorKey> = Vec::new();
        let c: Vec<VectorKey> = (0..4).map(|r| key(r * 3 % 11)).collect();
        let got = fast.codes_batch(&[&a, &b, &c]);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].len(), cfg.output_len);
        assert!(got[1].is_empty());
        assert_eq!(got[2].len(), cfg.output_len);
        assert_eq!(got[0], fast.codes(&a));
        assert_eq!(got[2], fast.codes(&c));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

        /// `codes_batch` / `predict_batch` match the per-item path across
        /// random batch sizes and sequence lengths.
        #[test]
        fn codes_batch_matches_per_item(
            seed in 0u64..500,
            lens in proptest::prelude::prop::collection::vec(1usize..16, 1..6),
        ) {
            use rand::Rng;
            let cfg = RecMgConfig::tiny();
            let fast = PrefetchModel::new(&cfg).compile();
            let codec = ring_codec();
            let mut rng = StdRng::seed_from_u64(seed);
            let chunks: Vec<Vec<VectorKey>> = lens
                .iter()
                .map(|&n| (0..n).map(|_| key(rng.gen_range(0..100))).collect())
                .collect();
            let refs: Vec<&[VectorKey]> = chunks.iter().map(Vec::as_slice).collect();
            let batched = fast.codes_batch(&refs);
            for (chunk, got) in chunks.iter().zip(&batched) {
                let single = fast.codes(chunk);
                proptest::prop_assert_eq!(single.len(), got.len());
                for (x, y) in got.iter().zip(&single) {
                    proptest::prop_assert!((x - y).abs() < 1e-5, "batched {} vs single {}", x, y);
                }
            }
            let preds = fast.predict_batch(&refs, &codec);
            for (chunk, got) in chunks.iter().zip(&preds) {
                proptest::prop_assert_eq!(got, &fast.predict(chunk, &codec));
            }
        }
    }

    #[test]
    fn default_param_count_near_paper() {
        // Paper Table III: prefetch model with 2 stacks = 74,290 params.
        let m = PrefetchModel::new(&RecMgConfig::default());
        let p = m.num_params() as f64;
        assert!(
            (p / 74_290.0 - 1.0).abs() < 0.25,
            "param count {p} not within 25% of the paper's 74,290"
        );
    }
}
