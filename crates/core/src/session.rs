//! Streaming request serving: [`RequestSource`] → [`ServingSession`] →
//! [`SessionReport`].
//!
//! The paper's online pipeline serves a continuous inference stream; DLRM
//! serving is judged on *per-request latency* under an SLA, not only on
//! throughput (the framing of the Software-Defined-Memory line of work).
//! This module replaces the blocking batch-slice entry point with a
//! streaming API:
//!
//! * a [`RequestSource`] produces timestamped [`Request`]s — from
//!   pre-materialized batches ([`BatchSource`], the back-compat path), a
//!   synthetic arrival process ([`SyntheticSource`], Poisson or uniform
//!   inter-arrivals over a [`WorkloadSpec`]), or an external-trace replay
//!   ([`TraceReplaySource`]);
//! * a [`ServingSession`] (built by [`SessionBuilder`]) owns the shards
//!   and worker threads of a [`ShardedRecMgSystem`] and exposes
//!   non-blocking [`submit`](ServingSession::submit) /
//!   [`drain`](ServingSession::drain) over a bounded queue with admission
//!   control ([`AdmissionPolicy`]): requests are rejected when the queue is
//!   full or their deadline is already blown, and shed at dequeue when the
//!   deadline expired while queueing;
//! * a [`SessionReport`] extends [`EngineReport`] with per-request latency
//!   percentiles (p50/p95/p99, from per-worker sample logs that take no
//!   locks on the serving path and are merged at drain) and an SLA section:
//!   under latency pressure the guidance plane degrades per request —
//!   skip-ahead first, then prefetch-off — reusing the paper's §VI-C
//!   skip machinery ([`SlaBudget`], [`DegradeLevel`]).
//!
//! The batch API is a thin wrapper:
//! [`ShardedRecMgSystem::serve`](crate::ShardedRecMgSystem::serve) builds a
//! 1:1 batch-backed session, so there is exactly one serving path. With one
//! worker, inline guidance, and an unbounded queue, a session reproduces
//! the sequential [`RecMgSystem`](crate::RecMgSystem) counts exactly — the
//! parity oracle of `tests/integration_streaming.rs`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recmg_dlrm::BatchAccessStats;
use recmg_trace::{Trace, VectorKey};

use crate::backend::{FillMode, FillPlaneReport};
use crate::builder::SystemBuilder;
use crate::config::{AdmissionPolicy, DegradeLevel, SlaBudget};
use crate::engine::{EngineReport, GuidanceMode, GuidancePlaneReport};
use crate::fast::FastScratch;
use crate::migrate::{
    self, LiveRebalanceConfig, LiveState, MigrationReport, ReplicationReport, ShardRoute,
};
use crate::serving::WorkloadSpec;
use crate::sharding::{GuidanceCtx, Shard, ShardRouter, ShardedRecMgSystem};
use crate::tier::{ShardPlacement, TierUsage};

// ---------------------------------------------------------------------------
// Requests and sources
// ---------------------------------------------------------------------------

/// One inference request: a batch of embedding-vector keys with a stream
/// timestamp and an optional latency deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned identifier, echoed in [`RequestSample`].
    pub id: u64,
    /// The embedding accesses of this request, in access order.
    pub keys: Vec<VectorKey>,
    /// Arrival offset from the start of the stream. [`ServingSession::ingest`]
    /// paces submission to this schedule; a direct
    /// [`submit`](ServingSession::submit) treats "now" as the arrival.
    pub arrival: Duration,
    /// Latency budget relative to arrival; `None` means best-effort.
    pub deadline: Option<Duration>,
}

/// A stream of timestamped requests.
///
/// Sources are pull-based iterators so replay, synthesis, and
/// pre-materialized batches share one ingestion path
/// ([`ServingSession::ingest`]).
pub trait RequestSource {
    /// The next request, or `None` when the stream is exhausted.
    fn next_request(&mut self) -> Option<Request>;

    /// Requests still to come, when known (used for sizing logs).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// Inter-arrival process of a synthetic or replayed request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_hz` requests per second (exponential
    /// inter-arrival gaps — a Poisson process).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_hz: f64,
    },
    /// Fixed inter-arrival interval.
    Uniform {
        /// Gap between consecutive arrivals.
        interval: Duration,
    },
    /// All requests arrive immediately (no pacing) — an offered load far
    /// above capacity, useful for exercising admission control.
    Immediate,
}

impl ArrivalProcess {
    fn validate(&self) {
        if let ArrivalProcess::Poisson { rate_hz } = *self {
            assert!(
                rate_hz > 0.0 && rate_hz.is_finite(),
                "Poisson rate must be positive and finite"
            );
        }
    }

    fn next_gap(&self, rng: &mut StdRng) -> Duration {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => {
                // Inverse-CDF sample of Exp(rate): u ∈ [0, 1) keeps the
                // argument of ln strictly positive.
                let u: f64 = rng.gen_range(0.0..1.0);
                Duration::from_secs_f64(-(1.0 - u).ln() / rate_hz)
            }
            ArrivalProcess::Uniform { interval } => interval,
            ArrivalProcess::Immediate => Duration::ZERO,
        }
    }
}

/// Shared pacing state of the generated sources: a virtual clock advanced
/// by the arrival process.
#[derive(Debug)]
struct Pacer {
    clock: Duration,
    arrivals: ArrivalProcess,
    rng: StdRng,
}

impl Pacer {
    fn new(arrivals: ArrivalProcess, seed: u64) -> Self {
        arrivals.validate();
        Pacer {
            clock: Duration::ZERO,
            arrivals,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn next_arrival(&mut self) -> Duration {
        self.clock += self.arrivals.next_gap(&mut self.rng);
        self.clock
    }
}

/// Back-compat source over pre-materialized batches: every batch is a
/// request arriving at stream start (offset zero), so ingestion never
/// sleeps and the session serves exactly like the old blocking `serve()`.
#[derive(Debug)]
pub struct BatchSource {
    batches: Vec<Vec<VectorKey>>,
    next: usize,
    deadline: Option<Duration>,
}

impl BatchSource {
    /// Wraps borrowed batch slices (the historical `serve` signature).
    pub fn new(batches: &[&[VectorKey]]) -> Self {
        Self::from_vecs(batches.iter().map(|b| b.to_vec()).collect())
    }

    /// Wraps owned batches.
    pub fn from_vecs(batches: Vec<Vec<VectorKey>>) -> Self {
        BatchSource {
            batches,
            next: 0,
            deadline: None,
        }
    }

    /// Attaches a deadline (relative to arrival) to every batch.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl RequestSource for BatchSource {
    fn next_request(&mut self) -> Option<Request> {
        let i = self.next;
        if i >= self.batches.len() {
            return None;
        }
        self.next += 1;
        Some(Request {
            id: i as u64,
            keys: std::mem::take(&mut self.batches[i]),
            arrival: Duration::ZERO,
            deadline: self.deadline,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.batches.len() - self.next)
    }
}

/// Synthetic open-loop arrival stream: request keys come from a
/// [`WorkloadSpec`] (tables × rows × skew), arrival times from an
/// [`ArrivalProcess`].
#[derive(Debug)]
pub struct SyntheticSource {
    spec: WorkloadSpec,
    input_len: usize,
    remaining: usize,
    next_id: u64,
    pacer: Pacer,
    deadline: Option<Duration>,
}

impl SyntheticSource {
    /// A stream of `requests` requests of `input_len` keys each.
    ///
    /// # Panics
    ///
    /// Panics if the spec or arrival process is invalid, or `input_len`
    /// is zero.
    pub fn new(
        spec: WorkloadSpec,
        input_len: usize,
        requests: usize,
        arrivals: ArrivalProcess,
        seed: u64,
    ) -> Self {
        spec.validate();
        assert!(input_len > 0, "input_len must be positive");
        SyntheticSource {
            spec,
            input_len,
            remaining: requests,
            next_id: 0,
            pacer: Pacer::new(arrivals, seed),
            deadline: None,
        }
    }

    /// Attaches a deadline (relative to arrival) to every request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl RequestSource for SyntheticSource {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        let keys = (0..self.input_len)
            .map(|i| self.spec.key(id as usize, i))
            .collect();
        Some(Request {
            id,
            keys,
            arrival: self.pacer.next_arrival(),
            deadline: self.deadline,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Replays a recorded [`Trace`] as a request stream: each request is
/// `queries_per_request` consecutive queries, paced by an
/// [`ArrivalProcess`] (external DLRM traces rarely carry wall-clock
/// timestamps, so the arrival process is supplied).
#[derive(Debug)]
pub struct TraceReplaySource {
    requests: Vec<Vec<VectorKey>>,
    next: usize,
    pacer: Pacer,
    deadline: Option<Duration>,
}

impl TraceReplaySource {
    /// Builds the replay stream.
    ///
    /// # Panics
    ///
    /// Panics if `queries_per_request` is zero or the arrival process is
    /// invalid.
    pub fn new(
        trace: &Trace,
        queries_per_request: usize,
        arrivals: ArrivalProcess,
        seed: u64,
    ) -> Self {
        assert!(
            queries_per_request > 0,
            "queries_per_request must be positive"
        );
        TraceReplaySource {
            requests: trace
                .batches(queries_per_request)
                .into_iter()
                .map(|b| b.to_vec())
                .collect(),
            next: 0,
            pacer: Pacer::new(arrivals, seed),
            deadline: None,
        }
    }

    /// Attaches a deadline (relative to arrival) to every request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl RequestSource for TraceReplaySource {
    fn next_request(&mut self) -> Option<Request> {
        let i = self.next;
        if i >= self.requests.len() {
            return None;
        }
        self.next += 1;
        Some(Request {
            id: i as u64,
            keys: std::mem::take(&mut self.requests[i]),
            arrival: self.pacer.next_arrival(),
            deadline: self.deadline,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.requests.len() - self.next)
    }
}

/// Cheap, clonable view of a running session's progress counters. Holds a
/// weak reference: it never keeps the session's shared state alive past
/// [`ServingSession::drain`], and reads against a drained session saturate
/// (every request counts as finished) so a [`ClosedLoopSource`] can never
/// deadlock on a session that went away.
#[derive(Debug, Clone)]
pub struct SessionProgress {
    shared: Weak<SessionShared>,
}

impl SessionProgress {
    /// Requests served to completion so far.
    pub fn completed(&self) -> u64 {
        self.shared
            .upgrade()
            .map_or(u64::MAX, |s| s.completed_requests.load(Ordering::Acquire))
    }

    /// Requests whose lifecycle is over: completed, rejected at submit
    /// (queue full / blown deadline), or shed in queue. This is the
    /// closed-loop "a slot freed up" signal — rejections free a slot just
    /// like completions, otherwise an overloaded closed loop would hang.
    pub fn finished(&self) -> u64 {
        self.shared.upgrade().map_or(u64::MAX, |s| {
            s.completed_requests.load(Ordering::Acquire)
                + s.rejected_queue_full.load(Ordering::Relaxed)
                + s.rejected_deadline.load(Ordering::Relaxed)
                + s.shed_in_queue.load(Ordering::Relaxed)
        })
    }
}

/// Closed-loop arrival process over any inner source: at most
/// `outstanding` requests are in flight, and the next request "arrives"
/// the moment a slot frees up (completion, rejection, or shed) — the
/// classic N-client closed loop, versus the open-loop sources above whose
/// arrivals ignore the server entirely.
///
/// The inner source's arrival offsets are ignored; each emitted request's
/// arrival is the instant its slot opened, so latency percentiles measure
/// service + queueing under self-limiting load.
#[derive(Debug)]
pub struct ClosedLoopSource<S> {
    inner: S,
    outstanding: u64,
    progress: SessionProgress,
    issued: u64,
    epoch: Option<Instant>,
}

impl<S: RequestSource> ClosedLoopSource<S> {
    /// Wraps `inner`, keeping at most `outstanding` requests in flight in
    /// the session observed through `progress`
    /// ([`ServingSession::progress`]).
    ///
    /// # Panics
    ///
    /// Panics if `outstanding` is zero.
    pub fn new(inner: S, outstanding: usize, progress: SessionProgress) -> Self {
        assert!(outstanding > 0, "need at least one outstanding request");
        ClosedLoopSource {
            inner,
            outstanding: outstanding as u64,
            progress,
            issued: 0,
            epoch: None,
        }
    }
}

impl<S: RequestSource> RequestSource for ClosedLoopSource<S> {
    fn next_request(&mut self) -> Option<Request> {
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        // Wait for a free slot. `finished()` saturates to u64::MAX if the
        // session is gone, so this cannot hang on a drained session.
        let mut spins = 0u32;
        while self.issued.saturating_sub(self.progress.finished()) >= self.outstanding {
            spins += 1;
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        let mut request = self.inner.next_request()?;
        request.arrival = epoch.elapsed();
        self.issued += 1;
        Some(request)
    }

    fn remaining_hint(&self) -> Option<usize> {
        self.inner.remaining_hint()
    }
}

// ---------------------------------------------------------------------------
// Session internals
// ---------------------------------------------------------------------------

/// A chunk handed to the background guidance plane.
pub(crate) struct GuidanceJob {
    shard: usize,
    chunk: Vec<VectorKey>,
    armed: bool,
}

/// Computed guidance waiting to be applied to a shard.
pub(crate) struct GuidanceUpdate {
    pub(crate) chunk: Vec<VectorKey>,
    pub(crate) bits: Vec<bool>,
    pub(crate) prefetched: Vec<VectorKey>,
}

/// Per-shard mailbox of computed guidance. `len` mirrors the vector length
/// (both only change under the mutex) so the serving fast path can check
/// "anything to apply?" with one atomic load instead of taking the lock on
/// every access.
#[derive(Default)]
struct CompletedSlot {
    updates: Mutex<Vec<GuidanceUpdate>>,
    len: AtomicUsize,
}

impl CompletedSlot {
    /// Applies (and clears) every parked update. `keep_prefetch: false`
    /// strips prefetch lists (the [`DegradeLevel::PrefetchOff`] case).
    fn apply_to(&self, shard: &mut Shard, keep_prefetch: bool) {
        let mut updates = self.updates.lock().expect("completed lock");
        for u in updates.drain(..) {
            let prefetched: &[VectorKey] = if keep_prefetch { &u.prefetched } else { &[] };
            shard.apply_guidance(&u.chunk, &u.bits, prefetched);
        }
        self.len.store(0, Ordering::Release);
    }
}

/// Background guidance plane state shared by workers and plane threads.
struct PlaneState {
    rx: Mutex<mpsc::Receiver<GuidanceJob>>,
    completed: Vec<CompletedSlot>,
    in_flight: Vec<AtomicUsize>,
    /// Exact-wakeup gate for producer pacing: the plane notifies after
    /// every drained batch; a worker whose shard is at the lag limit waits
    /// here instead of sleeping blind, so it resumes the moment the
    /// backlog clears rather than a sleep-quantum later.
    lag_gate: Mutex<()>,
    lag_cv: Condvar,
    max_lag: usize,
    max_batch: usize,
    /// Batched model forwards run (one per model invocation per drain).
    model_forwards: AtomicU64,
    /// Drain iterations that processed at least one chunk.
    drains: AtomicU64,
    /// Chunks computed by the plane.
    chunks: AtomicU64,
    /// Largest coalesced batch observed.
    max_batch_seen: AtomicU64,
}

impl PlaneState {
    /// Chunks offered to the plane whose guidance has not been computed
    /// yet, across shards.
    fn pending(&self) -> usize {
        self.in_flight
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }
}

/// An admitted request waiting in the session queue.
struct Admitted {
    id: u64,
    keys: Vec<VectorKey>,
    arrival_at: Instant,
    deadline_at: Option<Instant>,
}

/// State shared between the submitting side, serving workers, and the
/// guidance plane.
struct SessionShared {
    ctx: GuidanceCtx,
    router: ShardRouter,
    shards: Vec<Mutex<Shard>>,
    queue: Mutex<VecDeque<Admitted>>,
    available: Condvar,
    closed: AtomicBool,
    admission: AdmissionPolicy,
    sla: Option<SlaBudget>,
    plane: Option<PlaneState>,
    /// Live-migration state when the session was built with
    /// [`SessionBuilder::live`]; `None` keeps the serving path free of
    /// route pins entirely.
    live: Option<LiveState>,
    submitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    shed_in_queue: AtomicU64,
    completed_requests: AtomicU64,
}

/// Per-worker serving log. Workers append to their own log without taking
/// any lock on the serving path; logs are merged once at drain.
#[derive(Default)]
struct WorkerLog {
    stats: BatchAccessStats,
    samples: Vec<RequestSample>,
}

/// Why [`ServingSession::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is at [`AdmissionPolicy::queue_depth`].
    QueueFull,
    /// The request's deadline had already passed at submission.
    DeadlineBlown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull => write!(f, "request queue is full"),
            Rejection::DeadlineBlown => write!(f, "deadline already blown at submission"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Latency record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSample {
    /// The request's caller-assigned id.
    pub id: u64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time a worker spent serving the request.
    pub service: Duration,
    /// End-to-end latency (arrival → completion).
    pub latency: Duration,
    /// Whether the request's own deadline was met (`None` if it had none).
    pub deadline_met: Option<bool>,
    /// The degradation level the request was served at.
    pub degrade: DegradeLevel,
}

/// Order statistics over a set of durations (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes `samples` (empty input yields an all-zero summary).
    pub fn from_durations(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let total: Duration = samples.iter().sum();
        LatencySummary {
            count: n,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: total / n as u32,
            max: samples[n - 1],
        }
    }

    fn to_json_ms(self) -> String {
        format!(
            concat!(
                "{{\"count\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, ",
                "\"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}"
            ),
            self.count,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.mean.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        )
    }
}

/// SLA section of a [`SessionReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaOutcome {
    /// The configured latency budget.
    pub budget: Duration,
    /// Completed requests whose end-to-end latency met the budget.
    pub met: u64,
    /// Completed requests over budget.
    pub missed: u64,
    /// Requests served at [`DegradeLevel::SkipAhead`].
    pub degraded_skip_ahead: u64,
    /// Requests served at [`DegradeLevel::PrefetchOff`].
    pub degraded_prefetch_off: u64,
}

impl SlaOutcome {
    /// Fraction of completed requests within budget.
    pub fn attainment(&self) -> f64 {
        let total = self.met + self.missed;
        if total == 0 {
            1.0
        } else {
            self.met as f64 / total as f64
        }
    }
}

/// Outcome of a drained [`ServingSession`]: the batch-mode
/// [`EngineReport`] plus admission accounting, latency percentiles, and
/// the SLA section.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Merged access stats, guidance accounting, and wall-clock — the
    /// fields the batch API reported (`batches` counts completed
    /// requests).
    pub engine: EngineReport,
    /// Requests offered to [`ServingSession::submit`].
    pub submitted: u64,
    /// Requests rejected because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Requests rejected because their deadline was blown at submission.
    pub rejected_deadline: u64,
    /// Admitted requests shed at dequeue (deadline expired while queued).
    pub shed_in_queue: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// End-to-end latency percentiles over completed requests.
    pub latency: LatencySummary,
    /// Queueing-delay percentiles over completed requests.
    pub queue_wait: LatencySummary,
    /// SLA accounting, when the session had a budget.
    pub sla: Option<SlaOutcome>,
}

impl SessionReport {
    /// Fraction of submitted requests that were not served (rejected or
    /// shed).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.rejected_queue_full + self.rejected_deadline + self.shed_in_queue) as f64
                / self.submitted as f64
        }
    }

    /// Machine-readable summary with fixed field names; embeds
    /// [`EngineReport::to_json`] under `"engine"`.
    pub fn to_json(&self) -> String {
        let sla = match &self.sla {
            None => "null".to_string(),
            Some(s) => format!(
                concat!(
                    "{{\"budget_ms\": {:.3}, \"met\": {}, \"missed\": {}, ",
                    "\"attainment\": {:.4}, \"degraded_skip_ahead\": {}, ",
                    "\"degraded_prefetch_off\": {}}}"
                ),
                s.budget.as_secs_f64() * 1e3,
                s.met,
                s.missed,
                s.attainment(),
                s.degraded_skip_ahead,
                s.degraded_prefetch_off,
            ),
        };
        format!(
            concat!(
                "{{\"engine\": {}, \"submitted\": {}, \"completed\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_deadline\": {}, ",
                "\"shed_in_queue\": {}, \"shed_rate\": {:.4}, ",
                "\"latency\": {}, \"queue_wait\": {}, \"sla\": {}}}"
            ),
            self.engine.to_json(),
            self.submitted,
            self.completed,
            self.rejected_queue_full,
            self.rejected_deadline,
            self.shed_in_queue,
            self.shed_rate(),
            self.latency.to_json_ms(),
            self.queue_wait.to_json_ms(),
            sla,
        )
    }
}

// ---------------------------------------------------------------------------
// Builder and session
// ---------------------------------------------------------------------------

/// Configures and starts a [`ServingSession`] over a
/// [`ShardedRecMgSystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionBuilder {
    workers: usize,
    guidance: Option<GuidanceMode>,
    admission: AdmissionPolicy,
    sla: Option<SlaBudget>,
    live: Option<LiveRebalanceConfig>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// One worker, guidance inherited from the system
    /// ([`SystemBuilder::guidance`]), default admission, no SLA.
    pub fn new() -> Self {
        SessionBuilder {
            workers: 1,
            guidance: None,
            admission: AdmissionPolicy::default(),
            sla: None,
            live: None,
        }
    }

    /// Serving worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Guidance scheduling ([`GuidanceMode`]), overriding the system's
    /// default ([`SystemBuilder::guidance`]).
    pub fn guidance(mut self, guidance: GuidanceMode) -> Self {
        self.guidance = Some(guidance);
        self
    }

    /// Admission control for the request queue.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Latency budget; enables the SLA section of the report and
    /// pressure degradation.
    pub fn sla(mut self, sla: SlaBudget) -> Self {
        self.sla = Some(sla);
        self
    }

    /// Enables zero-quiescence live rebalancing: a background thread
    /// watches the shards' sketches and re-places / replicates them while
    /// requests flow ([`crate::migrate`]).
    pub fn live(mut self, cfg: LiveRebalanceConfig) -> Self {
        self.live = Some(cfg);
        self
    }

    /// Builds the system from a [`SystemBuilder`] and starts the session
    /// over it — the fluent end-to-end construction path. The session
    /// inherits the system builder's guidance mode unless
    /// [`guidance`](SessionBuilder::guidance) set one explicitly.
    ///
    /// # Panics
    ///
    /// As [`SessionBuilder::build`] and [`SystemBuilder::build`].
    pub fn build_system(self, system: SystemBuilder<'_>) -> ServingSession {
        self.build(system.build())
    }

    /// Consumes `system` and starts the session's worker (and, in
    /// background guidance mode, plane) threads. [`ServingSession::drain`]
    /// returns the system. Guidance scheduling falls back to the system's
    /// build-time default when not set on this builder.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, background guidance is configured with
    /// zero threads, or the SLA budget is invalid.
    pub fn build(self, system: ShardedRecMgSystem) -> ServingSession {
        assert!(self.workers > 0, "need at least one serving worker");
        if let Some(sla) = &self.sla {
            sla.validate();
        }
        let guidance = self.guidance.unwrap_or(system.default_guidance());
        let tiers_before = system.tier_usage();
        let fills_before = system.fill_report();
        let ShardedRecMgSystem {
            ctx,
            router,
            shards,
        } = system;
        let num_shards = router.num_shards();
        let guided_before: u64 = shards.iter().map(|s| s.guided_chunks).sum();
        let chunks_before: u64 = shards.iter().map(|s| s.chunk_counter as u64).sum();

        let (plane, proto_tx, plane_cfg) = match guidance {
            GuidanceMode::Inline => (None, None, None),
            GuidanceMode::Background {
                threads,
                max_lag,
                max_batch,
            } => {
                assert!(threads > 0, "need at least one guidance thread");
                assert!(max_batch > 0, "need a positive guidance batch size");
                let (tx, rx) = mpsc::channel::<GuidanceJob>();
                let plane = PlaneState {
                    rx: Mutex::new(rx),
                    completed: (0..num_shards).map(|_| CompletedSlot::default()).collect(),
                    in_flight: (0..num_shards).map(|_| AtomicUsize::new(0)).collect(),
                    lag_gate: Mutex::new(()),
                    lag_cv: Condvar::new(),
                    max_lag,
                    max_batch,
                    model_forwards: AtomicU64::new(0),
                    drains: AtomicU64::new(0),
                    chunks: AtomicU64::new(0),
                    max_batch_seen: AtomicU64::new(0),
                };
                (Some(plane), Some(tx), Some(threads))
            }
        };

        let shared = Arc::new(SessionShared {
            ctx,
            router,
            shards: shards.into_iter().map(Mutex::new).collect(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
            admission: self.admission,
            sla: self.sla,
            plane,
            live: self.live.map(|cfg| LiveState::new(num_shards, cfg)),
            submitted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            shed_in_queue: AtomicU64::new(0),
            completed_requests: AtomicU64::new(0),
        });

        let plane_threads = plane_cfg
            .map(|threads| {
                (0..threads)
                    .map(|_| {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || plane_loop(&shared))
                    })
                    .collect()
            })
            .unwrap_or_default();

        let workers = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = proto_tx.clone();
                std::thread::spawn(move || worker_loop(&shared, tx))
            })
            .collect();

        let rebalancer = shared.live.is_some().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let live = shared.live.as_ref().expect("live state checked above");
                migrate::live_loop(live, &shared.shards, &shared.ctx, &shared.router);
            })
        });

        // Async fill plane: re-arm the queue (a prior session's drain
        // closed it) and spawn the fill threads that promote queued
        // slow-tier misses into residency.
        let fill_threads = match (&shared.ctx.fill_queue, shared.ctx.fill_mode) {
            (Some(queue), FillMode::Async { threads, .. }) => {
                queue.open();
                (0..threads.max(1))
                    .map(|_| {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || fill_loop(&shared))
                    })
                    .collect()
            }
            _ => Vec::new(),
        };

        ServingSession {
            shared,
            workers,
            plane_threads,
            rebalancer,
            fill_threads,
            proto_tx,
            epoch: Instant::now(),
            guided_before,
            chunks_before,
            tiers_before,
            fills_before,
        }
    }
}

/// A running streaming-serving instance: owns the shards and threads of a
/// [`ShardedRecMgSystem`] between [`SessionBuilder::build`] and
/// [`ServingSession::drain`].
pub struct ServingSession {
    shared: Arc<SessionShared>,
    workers: Vec<JoinHandle<WorkerLog>>,
    plane_threads: Vec<JoinHandle<()>>,
    rebalancer: Option<JoinHandle<()>>,
    fill_threads: Vec<JoinHandle<()>>,
    proto_tx: Option<mpsc::Sender<GuidanceJob>>,
    epoch: Instant,
    guided_before: u64,
    chunks_before: u64,
    tiers_before: Vec<TierUsage>,
    fills_before: FillPlaneReport,
}

impl std::fmt::Debug for ServingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSession")
            .field("workers", &self.workers.len())
            .field("plane_threads", &self.plane_threads.len())
            .field("queue_len", &self.queue_len())
            .finish_non_exhaustive()
    }
}

impl ServingSession {
    /// Offers one request; returns immediately. The request is admitted to
    /// the bounded queue or rejected per the [`AdmissionPolicy`].
    pub fn submit(&self, request: Request) -> Result<(), Rejection> {
        self.submit_at(request, Instant::now())
    }

    /// Admission with an explicit arrival instant (ingest passes the
    /// scheduled arrival so queueing delay is measured from when the
    /// request *arrived*, not from when the submission loop got to it).
    fn submit_at(&self, request: Request, arrival_at: Instant) -> Result<(), Rejection> {
        let shared = &*self.shared;
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        let deadline_at = request.deadline.map(|d| arrival_at + d);
        if shared.admission.reject_blown {
            if let Some(d) = deadline_at {
                if Instant::now() > d {
                    shared.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    return Err(Rejection::DeadlineBlown);
                }
            }
        }
        {
            let mut queue = shared.queue.lock().expect("queue lock");
            if queue.len() >= shared.admission.queue_depth {
                shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::QueueFull);
            }
            queue.push_back(Admitted {
                id: request.id,
                keys: request.keys,
                arrival_at,
                deadline_at,
            });
        }
        shared.available.notify_one();
        Ok(())
    }

    /// Pulls `source` dry, pacing submissions to each request's arrival
    /// offset (sleeping until `start + arrival`). Returns the number of
    /// requests pulled; admission outcomes land in the final
    /// [`SessionReport`].
    pub fn ingest<S: RequestSource + ?Sized>(&self, source: &mut S) -> usize {
        let start = Instant::now();
        let mut pulled = 0usize;
        while let Some(request) = source.next_request() {
            pulled += 1;
            let arrival_at = start + request.arrival;
            let now = Instant::now();
            if arrival_at > now {
                std::thread::sleep(arrival_at - now);
            }
            let _ = self.submit_at(request, arrival_at);
        }
        pulled
    }

    /// Requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }

    /// Requests served to completion so far.
    pub fn completed_requests(&self) -> u64 {
        self.shared.completed_requests.load(Ordering::Acquire)
    }

    /// A clonable progress view for feedback-driven sources
    /// ([`ClosedLoopSource`]). The view is weak: it never keeps session
    /// state alive, and saturates once the session is drained.
    pub fn progress(&self) -> SessionProgress {
        SessionProgress {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Chunks offered to the background guidance plane whose guidance has
    /// not been computed yet (0 in inline mode). Together with
    /// [`completed_requests`](ServingSession::completed_requests) this lets
    /// a caller wait for full guidance quiescence — the lockstep oracle of
    /// `tests/integration_streaming.rs`.
    pub fn plane_pending(&self) -> usize {
        self.shared.plane.as_ref().map_or(0, PlaneState::pending)
    }

    /// Manually live-migrates shard `shard` to `placement` while requests
    /// flow — the same double-buffered dance the background rebalancer
    /// runs, blocking until the migration commits (or is abandoned by a
    /// concurrent drain). Returns whether the migration committed; `false`
    /// also when the session was built without [`SessionBuilder::live`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `placement.tier` is out of range.
    pub fn migrate_shard(&self, shard: usize, placement: ShardPlacement) -> bool {
        let Some(live) = &self.shared.live else {
            return false;
        };
        assert!(shard < self.shared.shards.len(), "shard out of range");
        migrate::migrate_shard(
            live,
            &self.shared.shards,
            &self.shared.ctx.topology,
            shard,
            &placement,
        )
    }

    /// Manually installs (or, with `capacity == 0`, removes) a fast-tier
    /// replica on shard `shard`. Returns whether anything changed; `false`
    /// also when the session was built without [`SessionBuilder::live`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn replicate_shard(&self, shard: usize, capacity: usize) -> bool {
        let Some(live) = &self.shared.live else {
            return false;
        };
        assert!(shard < self.shared.shards.len(), "shard out of range");
        let ttl_epochs = live.cfg.replication.unwrap_or_default().ttl_epochs;
        migrate::set_replica(
            live,
            &self.shared.shards,
            &self.shared.ctx.topology,
            shard,
            capacity,
            ttl_epochs,
        )
    }

    /// The current route epoch (0 when live rebalancing is off or the
    /// route never changed).
    pub fn route_epoch(&self) -> u64 {
        self.shared
            .live
            .as_ref()
            .map_or(0, |live| live.routes.current_epoch())
    }

    /// Publishes a no-op route epoch — advances the epoch clock that
    /// replica-entry TTLs are measured against (useful for tests pinning
    /// decay behaviour). Returns the new epoch; 0 when live rebalancing
    /// is off.
    pub fn refresh_routes(&self) -> u64 {
        self.shared
            .live
            .as_ref()
            .map_or(0, |live| live.routes.publish_with(|_| {}))
    }

    /// Closes the queue, serves everything already admitted, joins all
    /// threads, and returns the (warm) system together with the session
    /// report.
    pub fn drain(mut self) -> (ShardedRecMgSystem, SessionReport) {
        // Stop the live rebalancer before anything else: a warm-up loop
        // mid-flight abandons its staging (the primary never stopped being
        // authoritative), so teardown never waits on a fill schedule.
        if let Some(live) = &self.shared.live {
            live.stop.store(true, Ordering::Release);
        }
        if let Some(handle) = self.rebalancer.take() {
            handle.join().expect("live rebalancer does not panic");
        }
        {
            // Set `closed` under the queue lock: a worker holds that lock
            // from its empty-check to its condvar wait, so the flag cannot
            // slip into that window and lose the wakeup.
            let _queue = self.shared.queue.lock().expect("queue lock");
            self.shared.closed.store(true, Ordering::Release);
        }
        self.shared.available.notify_all();

        let mut stats = BatchAccessStats::default();
        let mut samples: Vec<RequestSample> = Vec::new();
        for handle in self.workers.drain(..) {
            let log = handle.join().expect("session worker does not panic");
            stats.accumulate(log.stats);
            samples.extend(log.samples);
        }
        // All worker-held senders are dropped; dropping the prototype
        // closes the channel and lets the plane exit.
        drop(self.proto_tx.take());
        for handle in self.plane_threads.drain(..) {
            handle.join().expect("guidance plane does not panic");
        }
        // Close the fill queue last among the planes: `close` lets the
        // fill threads drain the backlog, so every queued fill either
        // lands as a promotion or stays counted in the report.
        if let Some(queue) = &self.shared.ctx.fill_queue {
            queue.close();
        }
        for handle in self.fill_threads.drain(..) {
            handle.join().expect("fill plane does not panic");
        }
        let elapsed_secs = self.epoch.elapsed().as_secs_f64();

        let shared = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared,
            Err(_) => unreachable!("all session threads joined"),
        };
        let SessionShared {
            ctx,
            router,
            shards,
            plane,
            live,
            submitted,
            rejected_queue_full,
            rejected_deadline,
            shed_in_queue,
            sla,
            ..
        } = shared;
        let mut shards: Vec<Shard> = shards
            .into_iter()
            .map(|m| m.into_inner().expect("shard lock"))
            .collect();
        // Strip replicas before handing the system back: replicas are a
        // session-lifetime accelerator, not part of the durable placement.
        // Their counters fold into the replication report.
        let mut migration = MigrationReport::default();
        let mut replication = ReplicationReport::default();
        if let Some(live) = &live {
            let mut replicated_shards = 0u64;
            for shard in &mut shards {
                if let Some(replica) = shard.replica.take() {
                    replicated_shards += 1;
                    live.fold_replica(&replica);
                }
            }
            migration = live.migration_report();
            replication = live.replication_report();
            replication.replicated_shards = replicated_shards;
        }
        // Guidance computed after its shard went idle is still valid
        // buffer reprioritization — apply it so the returned system starts
        // warm. The model ran and the update lands exactly as an inline
        // apply between batches would, so it counts as guided; it is
        // *also* tallied as plane lag (`late_chunks`: it landed after the
        // last access of this session), which is the metric a capacity
        // planner should watch.
        let mut plane_report = GuidancePlaneReport {
            kernel_lane: ctx.kernel_label(),
            ..GuidancePlaneReport::default()
        };
        if let Some(plane) = plane {
            plane_report = GuidancePlaneReport {
                model_forwards: plane.model_forwards.into_inner(),
                drains: plane.drains.into_inner(),
                chunks: plane.chunks.into_inner(),
                max_batch: plane.max_batch_seen.into_inner(),
                late_chunks: 0,
                kernel_lane: ctx.kernel_label(),
            };
            for (sid, slot) in plane.completed.into_iter().enumerate() {
                for u in slot.updates.into_inner().expect("completed lock") {
                    plane_report.late_chunks += 1;
                    shards[sid].apply_guidance(&u.chunk, &u.bits, &u.prefetched);
                }
            }
        }
        let system = ShardedRecMgSystem {
            ctx,
            router,
            shards,
        };
        // Per-tier report: occupancy at drain, traffic as the delta over
        // this session (tier counters are cumulative on the buffers).
        let tiers: Vec<TierUsage> = system
            .tier_usage()
            .iter()
            .zip(&self.tiers_before)
            .map(|(now, before)| now.delta_since(before))
            .collect();

        let latency = LatencySummary::from_durations(samples.iter().map(|s| s.latency).collect());
        let queue_wait =
            LatencySummary::from_durations(samples.iter().map(|s| s.queue_wait).collect());
        let sla_outcome = sla.map(|budget| {
            let met = samples
                .iter()
                .filter(|s| s.latency <= budget.target)
                .count() as u64;
            SlaOutcome {
                budget: budget.target,
                met,
                missed: samples.len() as u64 - met,
                degraded_skip_ahead: samples
                    .iter()
                    .filter(|s| s.degrade == DegradeLevel::SkipAhead)
                    .count() as u64,
                degraded_prefetch_off: samples
                    .iter()
                    .filter(|s| s.degrade == DegradeLevel::PrefetchOff)
                    .count() as u64,
            }
        });
        let report = SessionReport {
            engine: EngineReport {
                stats,
                batches: samples.len(),
                guided_chunks: system.guided_chunks() - self.guided_before,
                total_chunks: system.total_chunks() - self.chunks_before,
                elapsed_secs,
                plane: plane_report,
                tiers,
                unique_keys: system.unique_keys(),
                max_phase_score: system.max_phase_score(),
                migration,
                replication,
                tables: system.table_report(),
                calibration: system.calibration_report().clone(),
                fills: system.fill_report().delta_since(&self.fills_before),
            },
            submitted: submitted.into_inner(),
            rejected_queue_full: rejected_queue_full.into_inner(),
            rejected_deadline: rejected_deadline.into_inner(),
            shed_in_queue: shed_in_queue.into_inner(),
            completed: samples.len() as u64,
            latency,
            queue_wait,
            sla: sla_outcome,
        };
        (system, report)
    }
}

// ---------------------------------------------------------------------------
// Worker and plane loops
// ---------------------------------------------------------------------------

/// Blocks until a request is available or the session is closed and the
/// queue is empty.
fn pop_request(shared: &SessionShared) -> Option<Admitted> {
    let mut queue = shared.queue.lock().expect("queue lock");
    loop {
        if let Some(request) = queue.pop_front() {
            return Some(request);
        }
        if shared.closed.load(Ordering::Acquire) {
            return None;
        }
        queue = shared.available.wait(queue).expect("queue lock");
    }
}

fn worker_loop(shared: &SessionShared, tx: Option<mpsc::Sender<GuidanceJob>>) -> WorkerLog {
    let mut log = WorkerLog::default();
    // Per-worker shard-split scratch: the router refills these vectors on
    // every request, so the per-request path allocates nothing once the
    // per-shard capacities have warmed up.
    let mut parts: Vec<Vec<VectorKey>> = Vec::new();
    while let Some(request) = pop_request(shared) {
        let dequeued = Instant::now();
        if shared.admission.shed_blown {
            if let Some(d) = request.deadline_at {
                if dequeued > d {
                    shared.shed_in_queue.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
        let queue_wait = dequeued.saturating_duration_since(request.arrival_at);
        let degrade = shared
            .sla
            .map_or(DegradeLevel::None, |sla| sla.level(queue_wait));
        serve_request(
            shared,
            &request.keys,
            degrade,
            tx.as_ref(),
            &mut log.stats,
            &mut parts,
        );
        let finished = Instant::now();
        log.samples.push(RequestSample {
            id: request.id,
            queue_wait,
            service: finished.saturating_duration_since(dequeued),
            latency: finished.saturating_duration_since(request.arrival_at),
            deadline_met: request.deadline_at.map(|d| finished <= d),
            degrade,
        });
        shared.completed_requests.fetch_add(1, Ordering::AcqRel);
    }
    // Dropping `tx` here (worker exit) releases the plane channel.
    log
}

/// Serves one request's keys across its home shards at the chosen
/// degradation level. `parts` is the worker's reusable split scratch
/// ([`ShardRouter::split_into`]).
fn serve_request(
    shared: &SessionShared,
    keys: &[VectorKey],
    degrade: DegradeLevel,
    tx: Option<&mpsc::Sender<GuidanceJob>>,
    stats: &mut BatchAccessStats,
    parts: &mut Vec<Vec<VectorKey>>,
) {
    shared.router.split_into(keys, parts);
    // One route pin covers the whole request: the snapshot cannot tear,
    // and a concurrent migration commit waits at its epoch fence until
    // this guard drops (so a mirror below never races the buffer swap).
    let route = shared.live.as_ref().map(|live| live.routes.pin());
    for (sid, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let mut shard = shared.shards[sid].lock().expect("shard lock");
        match degrade {
            DegradeLevel::None => match (&shared.plane, tx) {
                (Some(plane), Some(tx)) => {
                    serve_shard_background(&mut shard, part, stats, &shared.ctx, tx, plane, sid)
                }
                _ => stats.accumulate(shard.process_keys(part, &shared.ctx, &shared.router)),
            },
            DegradeLevel::SkipAhead | DegradeLevel::PrefetchOff => {
                // Degraded: no fresh guidance for this request (§VI-C
                // skip-ahead on purpose). Background guidance that already
                // finished is still applied — with its prefetch list
                // stripped at PrefetchOff.
                if let Some(plane) = &shared.plane {
                    let keep_prefetch = degrade == DegradeLevel::SkipAhead;
                    if plane.completed[sid].len.load(Ordering::Acquire) > 0 {
                        plane.completed[sid].apply_to(&mut shard, keep_prefetch);
                    }
                }
                shard.process_keys_unguided(part, shared.ctx.cfg.input_len, stats);
            }
        }
        // Copy-on-access warming: a shard mid-migration gets the keys this
        // request just demanded mirrored into its staging buffer, still
        // under the shard mutex (the primary stayed authoritative above).
        if let Some(route) = &route {
            if route.route(sid) == ShardRoute::Migrating {
                shared
                    .live
                    .as_ref()
                    .expect("route pin implies live state")
                    .mirror(&mut shard, part);
            }
        }
    }
}

/// Fill-plane thread body: pops coalesced slow-tier misses off the
/// bounded queue and installs each row into its shard at the fill cost
/// the entry carried from its origin miss
/// ([`crate::RecMgBuffer`]`::promote_fill`). Exits once `drain` closes
/// the queue and the backlog is dry, so every queued fill either lands
/// as a promotion or stays counted (`coalesced`/`dropped`) in the
/// [`FillPlaneReport`].
fn fill_loop(shared: &SessionShared) {
    let queue = shared
        .ctx
        .fill_queue
        .as_ref()
        .expect("fill threads only run in async fill mode");
    while let Some((sid, key, fill_ns)) = queue.pop_wait() {
        let mut shard = shared.shards[sid].lock().expect("shard mutex poisoned");
        if shard.buffer.promote_fill(key, fill_ns) {
            queue.note_promoted();
        }
    }
}

/// Guidance-plane thread body: coalesce every pending chunk (up to
/// `max_batch`) into one batched model forward per model, then scatter the
/// per-shard updates. Exits when every sender (worker) is gone.
///
/// This is the tentpole of the batched plane: under multi-shard load the
/// plane's weight traffic is O(drained batches), not O(chunks) — while a
/// drain is being computed, workers keep appending jobs to the channel, so
/// the next drain naturally coalesces the backlog.
fn plane_loop(shared: &SessionShared) {
    let plane = shared
        .plane
        .as_ref()
        .expect("plane threads only run in background mode");
    let mut jobs: Vec<GuidanceJob> = Vec::with_capacity(plane.max_batch);
    let mut scratch = FastScratch::default();
    loop {
        jobs.clear();
        {
            // Hold the receiver only while draining; the batched forward
            // below runs lock-free so sibling plane threads can drain the
            // next backlog concurrently.
            let rx = plane.rx.lock().expect("rx lock");
            match rx.recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break, // all workers done
            }
            while jobs.len() < plane.max_batch {
                match rx.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        plane.drains.fetch_add(1, Ordering::Relaxed);
        plane.chunks.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        plane
            .max_batch_seen
            .fetch_max(jobs.len() as u64, Ordering::Relaxed);

        let batch: Vec<(&[VectorKey], bool, usize)> = jobs
            .iter()
            .map(|j| (j.chunk.as_slice(), j.armed, j.shard))
            .collect();
        let (guidance, forwards) =
            Shard::compute_guidance_batch(&batch, &shared.ctx, &shared.router, &mut scratch);
        plane.model_forwards.fetch_add(forwards, Ordering::Relaxed);

        for (job, (bits, prefetched)) in jobs.drain(..).zip(guidance) {
            let slot = &plane.completed[job.shard];
            {
                let mut updates = slot.updates.lock().expect("completed lock");
                updates.push(GuidanceUpdate {
                    chunk: job.chunk,
                    bits,
                    prefetched,
                });
                slot.len.store(updates.len(), Ordering::Release);
            }
            // Decrement only after the update is visible, so a shard never
            // sees "plane idle" with its guidance still un-parked.
            plane.in_flight[job.shard].fetch_sub(1, Ordering::AcqRel);
        }
        // Wake producers pacing on the lag gate. Taking (and dropping) the
        // gate lock orders this notify after any in-flight check a waiter
        // made before blocking, so the wakeup cannot be missed.
        drop(plane.lag_gate.lock().expect("lag gate lock"));
        plane.lag_cv.notify_all();
    }
}

/// Serves one shard sub-batch under the background guidance plane: demand
/// accesses never wait; completed guidance is applied as soon as it is
/// available (one atomic load on the fast path); new chunks are offered to
/// the plane unless it lags more than `max_lag` (the paper's §VI-C
/// skip-ahead rule).
fn serve_shard_background(
    shard: &mut Shard,
    keys: &[VectorKey],
    stats: &mut BatchAccessStats,
    ctx: &GuidanceCtx,
    tx: &mpsc::Sender<GuidanceJob>,
    plane: &PlaneState,
    sid: usize,
) {
    let input_len = ctx.cfg.input_len;
    let slot = &plane.completed[sid];
    let in_flight = &plane.in_flight[sid];
    for &key in keys {
        if slot.len.load(Ordering::Acquire) > 0 {
            // Apply whatever the plane has finished before this access
            // (bounded staleness, never blocking).
            slot.apply_to(shard, true);
        }
        shard.record_access(key, stats);
        shard.pending.push(key);
        while shard.pending.len() >= input_len {
            let chunk: Vec<VectorKey> = shard.pending.drain(..input_len).collect();
            shard.chunk_counter += 1;
            if in_flight.load(Ordering::Acquire) >= plane.max_lag {
                // The shard is at the plane's lag limit: this chunk runs
                // on stale guidance (the §VI-C skip, verbatim). What
                // changes with the coalescing plane is what happens
                // *next*: instead of racing further ahead and converting
                // every following chunk into a skip too (which is how
                // `guided_fraction` collapsed under multi-shard load), the
                // producer paces itself on the lag gate until the plane
                // has drained the backlog to a low-water mark. The
                // hysteresis makes production bursty on purpose — one
                // wake/sleep cycle per `max_lag - low_water` chunks, so
                // context switches amortize over the burst and the plane
                // always wakes to a full coalescing batch. Under sustained
                // saturation the steady state is one skipped chunk per
                // burst (guided fraction ≈ 1 - 1/burst); when the plane
                // keeps up nothing is skipped at all.
                shard.unguided_chunks += 1;
                if plane.max_lag == 0 {
                    // The plane accepts no work: plain skip-ahead.
                    continue;
                }
                let low_water = plane.max_lag / 4;
                let mut gate = plane.lag_gate.lock().expect("lag gate lock");
                let mut waits = 0u32;
                // The pacing wait runs with this shard's mutex held, so it
                // must stay short: a healthy plane drains a batch in well
                // under a timeout quantum (the notify is what actually
                // wakes the producer), and if it has made no progress
                // after a few quanta we fall back to racing ahead (more
                // §VI-C skips) rather than stalling sibling workers' —
                // including SLA-degraded — demand accesses on the lock.
                while in_flight.load(Ordering::Acquire) > low_water && waits < 5 {
                    let (g, _) = plane
                        .lag_cv
                        .wait_timeout(gate, Duration::from_millis(5))
                        .expect("lag gate lock");
                    gate = g;
                    waits += 1;
                }
                drop(gate);
                continue;
            }
            if slot.len.load(Ordering::Acquire) > 0 {
                slot.apply_to(shard, true);
            }
            // Plane-pressure degradation, mirroring the SLA ladder
            // ([`DegradeLevel::PrefetchOff`]): when the plane's total
            // backlog has built past an eighth of its aggregate lag budget
            // (`shards × max_lag`, so the threshold scales with the shard
            // count instead of choking prefetch at high shard counts),
            // send the chunk for caching guidance only. The autoregressive
            // prefetch forward is ~2× the caching forward; shedding it
            // first keeps the plane's priority signal fresh for everyone
            // instead of letting speculative work starve it. With an idle
            // plane (backlog 0) arming is exactly the sequential system's
            // rule, which is what the 1-shard lockstep oracle pins.
            // `.max(1)` guards the integer-division cliff: with a tiny
            // aggregate budget (e.g. 1 shard × max_lag 1) the threshold
            // would otherwise be 0 and prefetch would be shed on *any*
            // in-flight chunk, starving the warmup counter forever.
            let shed_at = (plane.completed.len() * plane.max_lag / 8).max(1);
            let armed = shard.prefetch_armed(ctx) && plane.pending() <= shed_at;
            in_flight.fetch_add(1, Ordering::AcqRel);
            if tx
                .send(GuidanceJob {
                    shard: shard.id,
                    chunk,
                    armed,
                })
                .is_err()
            {
                // Plane already shut down (can only happen at teardown).
                in_flight.fetch_sub(1, Ordering::AcqRel);
                shard.unguided_chunks += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::codec::FrequencyRankCodec;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;
    use recmg_trace::SyntheticConfig;

    fn system(num_shards: usize) -> ShardedRecMgSystem {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let prefetch = PrefetchModel::new(&cfg);
        let trace = SyntheticConfig::tiny(5).generate();
        let codec = FrequencyRankCodec::from_accesses(&trace.accesses()[..500]);
        ShardedRecMgSystem::builder(&caching, Some(&prefetch), codec)
            .shards(num_shards)
            .capacity(64)
            .build()
    }

    #[test]
    fn batch_source_yields_every_batch_at_time_zero() {
        let trace = SyntheticConfig::tiny(7).generate();
        let batches = trace.batches(10);
        let mut src = BatchSource::new(&batches);
        assert_eq!(src.remaining_hint(), Some(batches.len()));
        let mut total = 0usize;
        let mut count = 0usize;
        while let Some(req) = src.next_request() {
            assert_eq!(req.id, count as u64);
            assert_eq!(req.arrival, Duration::ZERO);
            assert_eq!(req.deadline, None);
            total += req.keys.len();
            count += 1;
        }
        assert_eq!(count, batches.len());
        assert_eq!(total, trace.len());
        assert_eq!(src.remaining_hint(), Some(0));
    }

    #[test]
    fn synthetic_poisson_arrivals_are_monotone() {
        let spec = WorkloadSpec::default();
        let mut src = SyntheticSource::new(
            spec,
            8,
            50,
            ArrivalProcess::Poisson { rate_hz: 10_000.0 },
            42,
        )
        .with_deadline(Duration::from_millis(5));
        let mut last = Duration::ZERO;
        let mut n = 0usize;
        while let Some(req) = src.next_request() {
            assert_eq!(req.keys.len(), 8);
            assert!(req.arrival >= last, "arrivals must be non-decreasing");
            assert_eq!(req.deadline, Some(Duration::from_millis(5)));
            last = req.arrival;
            n += 1;
        }
        assert_eq!(n, 50);
        assert!(last > Duration::ZERO, "Poisson gaps are a.s. positive");
    }

    #[test]
    fn trace_replay_covers_the_trace() {
        let trace = SyntheticConfig::tiny(9).generate();
        let mut src = TraceReplaySource::new(
            &trace,
            5,
            ArrivalProcess::Uniform {
                interval: Duration::from_micros(3),
            },
            0,
        );
        let mut total = 0usize;
        let mut i = 0usize;
        while let Some(req) = src.next_request() {
            total += req.keys.len();
            assert_eq!(req.arrival, Duration::from_micros(3) * (i as u32 + 1));
            i += 1;
        }
        assert_eq!(total, trace.len());
    }

    #[test]
    fn batch_backed_session_serves_everything() {
        let trace = SyntheticConfig::tiny(11).generate();
        let batches = trace.batches(10);
        let session = SessionBuilder::new()
            .workers(2)
            .guidance(GuidanceMode::Background {
                threads: 1,
                max_lag: 4,
                max_batch: 8,
            })
            .admission(AdmissionPolicy::unbounded())
            .build(system(4));
        session.ingest(&mut BatchSource::new(&batches));
        let (sys, report) = session.drain();
        assert_eq!(report.submitted, batches.len() as u64);
        assert_eq!(report.completed, batches.len() as u64);
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.latency.count, batches.len());
        assert!(report.latency.p50 <= report.latency.p95);
        assert!(report.latency.p95 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
        assert!(sys.total_chunks() > 0);
        assert!(report.to_json().contains("\"shed_rate\": 0.0000"));
    }

    #[test]
    fn zero_depth_queue_rejects_every_submit() {
        let session = SessionBuilder::new()
            .admission(AdmissionPolicy {
                queue_depth: 0,
                ..AdmissionPolicy::default()
            })
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        for i in 0..5u64 {
            let got = session.submit(Request {
                id: i,
                keys: vec![],
                arrival: Duration::ZERO,
                deadline: None,
            });
            assert_eq!(got, Err(Rejection::QueueFull));
        }
        let (_sys, report) = session.drain();
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected_queue_full, 5);
        assert_eq!(report.completed, 0);
        assert_eq!(report.shed_rate(), 1.0);
    }

    #[test]
    fn blown_deadline_is_rejected_at_submit() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        // An arrival far enough in the past that its deadline has expired.
        let Some(past) = Instant::now().checked_sub(Duration::from_millis(50)) else {
            return; // process younger than 50ms; cannot construct the case
        };
        let got = session.submit_at(
            Request {
                id: 0,
                keys: vec![],
                arrival: Duration::ZERO,
                deadline: Some(Duration::from_millis(1)),
            },
            past,
        );
        assert_eq!(got, Err(Rejection::DeadlineBlown));
        let (_sys, report) = session.drain();
        assert_eq!(report.rejected_deadline, 1);
    }

    #[test]
    fn forced_sla_pressure_degrades_to_prefetch_off() {
        let trace = SyntheticConfig::tiny(13).generate();
        let batches = trace.batches(10);
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .sla(SlaBudget {
                target: Duration::from_nanos(1),
                skip_ahead_at: 0.0,
                prefetch_off_at: 0.0,
            })
            .build(system(2));
        session.ingest(&mut BatchSource::new(&batches));
        let (sys, report) = session.drain();
        // Zero queue-wait already exceeds both thresholds: every request
        // runs at PrefetchOff, so no chunk ever receives fresh guidance.
        assert_eq!(report.engine.guided_chunks, 0);
        assert!(report.engine.total_chunks > 0);
        assert_eq!(sys.prefetches_issued(), 0);
        let sla = report.sla.expect("sla configured");
        assert_eq!(sla.degraded_prefetch_off, report.completed);
        assert_eq!(sla.met, 0);
        assert!((sla.attainment() - 0.0).abs() < 1e-9);
        // Every access is still served — degradation sheds model work,
        // never demand accesses.
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
    }

    #[test]
    fn latency_summary_nearest_rank() {
        let ms = Duration::from_millis;
        let s = LatencySummary::from_durations((1..=100).map(ms).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        assert_eq!(LatencySummary::from_durations(vec![]).count, 0);
        let one = LatencySummary::from_durations(vec![ms(7)]);
        assert_eq!(one.p50, ms(7));
        assert_eq!(one.p99, ms(7));
        assert_eq!(one.mean, ms(7));
    }

    #[test]
    #[should_panic(expected = "at least one serving worker")]
    fn zero_worker_builder_panics() {
        let _ = SessionBuilder::new().workers(0).build(system(1));
    }

    #[test]
    fn closed_loop_source_bounds_outstanding_and_serves_all() {
        let trace = SyntheticConfig::tiny(17).generate();
        let batches = trace.batches(10);
        let requests = batches.len();
        let session = SessionBuilder::new()
            .workers(1)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy {
                // Queue depth below the request count: only the closed
                // loop's self-limiting keeps everything admitted.
                queue_depth: 2,
                ..AdmissionPolicy::default()
            })
            .build(system(2));
        let mut source = ClosedLoopSource::new(BatchSource::new(&batches), 2, session.progress());
        let pulled = session.ingest(&mut source);
        let (_sys, report) = session.drain();
        assert_eq!(pulled, requests);
        assert_eq!(report.submitted, requests as u64);
        // With 2 outstanding and 1 worker, at most 1 request queues at a
        // time — nothing is ever rejected despite the tiny queue.
        assert_eq!(report.rejected_queue_full, 0);
        assert_eq!(report.completed, requests as u64);
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
    }

    #[test]
    fn closed_loop_arrivals_are_monotone() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let inner =
            SyntheticSource::new(WorkloadSpec::default(), 4, 10, ArrivalProcess::Immediate, 3);
        let mut src = ClosedLoopSource::new(inner, 4, session.progress());
        assert_eq!(src.remaining_hint(), Some(10));
        let mut last = Duration::ZERO;
        let mut n = 0usize;
        while let Some(req) = src.next_request() {
            assert!(req.arrival >= last, "closed-loop arrivals move forward");
            last = req.arrival;
            n += 1;
            session.submit(req).expect("admitted");
        }
        assert_eq!(n, 10);
        let (_sys, report) = session.drain();
        assert_eq!(report.completed, 10);
    }

    #[test]
    #[should_panic(expected = "at least one outstanding")]
    fn closed_loop_zero_outstanding_panics() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let _ = ClosedLoopSource::new(BatchSource::from_vecs(vec![]), 0, session.progress());
    }

    #[test]
    fn progress_saturates_after_drain() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let progress = session.progress();
        assert_eq!(progress.completed(), 0);
        assert_eq!(progress.finished(), 0);
        let (_sys, _report) = session.drain();
        // The weak view saturates: a closed loop can never hang on it.
        assert_eq!(progress.completed(), u64::MAX);
        assert_eq!(progress.finished(), u64::MAX);
    }

    #[test]
    fn session_inherits_system_guidance_default() {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let trace = SyntheticConfig::tiny(5).generate();
        let codec = FrequencyRankCodec::from_accesses(&trace.accesses()[..200]);
        // Inline set on the *system* builder: the session without an
        // explicit mode spawns no plane threads.
        let session = SessionBuilder::new().build_system(
            ShardedRecMgSystem::builder(&caching, None, codec)
                .shards(2)
                .capacity(64)
                .guidance(GuidanceMode::Inline),
        );
        assert_eq!(session.plane_threads.len(), 0);
        session.ingest(&mut BatchSource::new(&trace.batches(10)));
        let (_sys, report) = session.drain();
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
        // Per-tier stats surfaced through the session report.
        assert_eq!(report.engine.tiers.len(), 1);
        assert_eq!(report.engine.tiers[0].name, "dram");
        assert_eq!(report.engine.tiers[0].traffic.demand(), trace.len() as u64);
        assert!(report.engine.access_cost_ns() > 0);
        assert!(report.to_json().contains("\"tiers\""));
    }
}
