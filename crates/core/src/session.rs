//! Streaming request serving: [`RequestSource`] → [`ServingSession`] →
//! [`SessionReport`].
//!
//! The paper's online pipeline serves a continuous inference stream; DLRM
//! serving is judged on *per-request latency* under an SLA, not only on
//! throughput (the framing of the Software-Defined-Memory line of work).
//! This module replaces the blocking batch-slice entry point with a
//! streaming API:
//!
//! * a [`RequestSource`] produces timestamped [`Request`]s — from
//!   pre-materialized batches ([`BatchSource`], the back-compat path), a
//!   synthetic arrival process ([`SyntheticSource`], Poisson or uniform
//!   inter-arrivals over a [`WorkloadSpec`]), or an external-trace replay
//!   ([`TraceReplaySource`]);
//! * a [`ServingSession`] (built by [`SessionBuilder`]) owns the shards
//!   and worker threads of a [`ShardedRecMgSystem`] and exposes
//!   non-blocking [`submit`](ServingSession::submit) /
//!   [`drain`](ServingSession::drain) over a bounded queue with admission
//!   control ([`AdmissionPolicy`]): requests are rejected when the queue is
//!   full or their deadline is already blown, and shed at dequeue when the
//!   deadline expired while queueing;
//! * a [`SessionReport`] extends [`EngineReport`] with per-request latency
//!   percentiles (p50/p95/p99, from per-worker sample logs that take no
//!   locks on the serving path and are merged at drain) and an SLA section:
//!   under latency pressure the guidance plane degrades per request —
//!   skip-ahead first, then prefetch-off — reusing the paper's §VI-C
//!   skip machinery ([`SlaBudget`], [`DegradeLevel`]).
//!
//! The batch API is a thin wrapper:
//! [`ShardedRecMgSystem::serve`](crate::ShardedRecMgSystem::serve) builds a
//! 1:1 batch-backed session, so there is exactly one serving path. With one
//! worker, inline guidance, and an unbounded queue, a session reproduces
//! the sequential [`RecMgSystem`](crate::RecMgSystem) counts exactly — the
//! parity oracle of `tests/integration_streaming.rs`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recmg_dlrm::BatchAccessStats;
use recmg_trace::{Trace, VectorKey};

use crate::backend::{FillMode, FillPlaneReport};
use crate::builder::SystemBuilder;
use crate::config::{AdmissionPolicy, DegradeLevel, SlaBudget, TenantSpec};
use crate::engine::{EngineReport, GuidanceMode, GuidancePlaneReport};
use crate::fast::FastScratch;
use crate::migrate::{
    self, LiveRebalanceConfig, LiveState, MigrationReport, ReplicationReport, ShardRoute,
};
use crate::serving::WorkloadSpec;
use crate::sharding::{GuidanceCtx, Shard, ShardRouter, ShardedRecMgSystem};
use crate::tier::{ShardPlacement, TierUsage};

// ---------------------------------------------------------------------------
// Requests and sources
// ---------------------------------------------------------------------------

/// One inference request: a batch of embedding-vector keys with a stream
/// timestamp and an optional latency deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned identifier, echoed in [`RequestSample`].
    pub id: u64,
    /// The embedding accesses of this request, in access order.
    pub keys: Vec<VectorKey>,
    /// Arrival offset from the start of the stream. [`ServingSession::ingest`]
    /// paces submission to this schedule; a direct
    /// [`submit`](ServingSession::submit) treats "now" as the arrival.
    pub arrival: Duration,
    /// Latency budget relative to arrival; `None` means best-effort.
    pub deadline: Option<Duration>,
    /// Index into the session's tenant table
    /// ([`SessionBuilder::tenants`]). Sessions built without tenants have
    /// exactly one (index 0, the default every source emits), so
    /// single-tenant callers never touch this field.
    pub tenant: usize,
}

/// A stream of timestamped requests.
///
/// Sources are pull-based iterators so replay, synthesis, and
/// pre-materialized batches share one ingestion path
/// ([`ServingSession::ingest`]).
pub trait RequestSource {
    /// The next request, or `None` when the stream is exhausted.
    fn next_request(&mut self) -> Option<Request>;

    /// Requests still to come, when known (used for sizing logs).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// Inter-arrival process of a synthetic or replayed request stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_hz` requests per second (exponential
    /// inter-arrival gaps — a Poisson process).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_hz: f64,
    },
    /// Fixed inter-arrival interval.
    Uniform {
        /// Gap between consecutive arrivals.
        interval: Duration,
    },
    /// All requests arrive immediately (no pacing) — an offered load far
    /// above capacity, useful for exercising admission control.
    Immediate,
    /// Markov-modulated arrivals ([`MarkovArrivals`]): a discrete state
    /// chain where each state carries its own simple arrival process and
    /// the chain steps after every arrival — the MMPP-style model behind
    /// flash-crowd and diurnal load shapes
    /// ([`ArrivalProcess::flash_crowd`], [`ArrivalProcess::diurnal`]).
    MarkovModulated(MarkovArrivals),
}

impl ArrivalProcess {
    fn validate(&self) {
        match self {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!(
                    *rate_hz > 0.0 && rate_hz.is_finite(),
                    "Poisson rate must be positive and finite"
                );
            }
            ArrivalProcess::MarkovModulated(chain) => chain.validate(),
            ArrivalProcess::Uniform { .. } | ArrivalProcess::Immediate => {}
        }
    }

    fn next_gap(&mut self, rng: &mut StdRng) -> Duration {
        match self {
            ArrivalProcess::Poisson { rate_hz } => {
                // Inverse-CDF sample of Exp(rate). The unit sample is
                // clamped away from both endpoints: at u → 1 the ln
                // argument hits zero and the gap diverges to infinity (a
                // permanently stalled source); at u → 0 the gap collapses
                // to zero and defeats pacing. The 1 ns floor keeps the
                // virtual clock strictly monotone even at rates where the
                // exponential gap rounds below timer resolution.
                let u: f64 = rng.gen_range(0.0..1.0);
                let u = u.clamp(1e-12, 1.0 - 1e-12);
                Duration::from_secs_f64(-(1.0 - u).ln() / *rate_hz).max(Duration::from_nanos(1))
            }
            ArrivalProcess::Uniform { interval } => *interval,
            ArrivalProcess::Immediate => Duration::ZERO,
            ArrivalProcess::MarkovModulated(chain) => chain.next_gap(rng),
        }
    }

    /// Two-state flash-crowd preset: a `steady` state at `steady_hz` and a
    /// `flash` state at `spike_factor × steady_hz`, with geometric dwell
    /// times of `steady_arrivals` and `spike_arrivals` requests
    /// respectively (the chain steps once per arrival).
    ///
    /// # Panics
    ///
    /// Panics if a rate, factor, or dwell length is not positive.
    pub fn flash_crowd(
        steady_hz: f64,
        spike_factor: f64,
        steady_arrivals: u64,
        spike_arrivals: u64,
    ) -> Self {
        assert!(
            spike_factor > 1.0 && spike_factor.is_finite(),
            "spike factor must exceed 1"
        );
        assert!(
            steady_arrivals > 0 && spike_arrivals > 0,
            "dwell lengths must be positive"
        );
        let leave_steady = 1.0 / steady_arrivals as f64;
        let leave_spike = 1.0 / spike_arrivals as f64;
        ArrivalProcess::MarkovModulated(MarkovArrivals::new(
            vec![
                ("steady", ArrivalProcess::Poisson { rate_hz: steady_hz }),
                (
                    "flash",
                    ArrivalProcess::Poisson {
                        rate_hz: steady_hz * spike_factor,
                    },
                ),
            ],
            vec![
                vec![1.0 - leave_steady, leave_steady],
                vec![leave_spike, 1.0 - leave_spike],
            ],
        ))
    }

    /// Four-state diurnal preset: a trough → ramp → peak → ramp cycle
    /// between `trough_hz` and `peak_hz` (the ramp runs at the geometric
    /// mean), advancing with probability `1 / dwell_arrivals` per arrival.
    ///
    /// # Panics
    ///
    /// Panics if a rate or the dwell length is not positive.
    pub fn diurnal(trough_hz: f64, peak_hz: f64, dwell_arrivals: u64) -> Self {
        assert!(dwell_arrivals > 0, "dwell length must be positive");
        assert!(
            trough_hz > 0.0 && peak_hz > trough_hz,
            "need peak_hz > trough_hz > 0"
        );
        let ramp_hz = (trough_hz * peak_hz).sqrt();
        let advance = 1.0 / dwell_arrivals as f64;
        let stay = 1.0 - advance;
        let p = |rate_hz: f64| ArrivalProcess::Poisson { rate_hz };
        ArrivalProcess::MarkovModulated(MarkovArrivals::new(
            vec![
                ("trough", p(trough_hz)),
                ("rise", p(ramp_hz)),
                ("peak", p(peak_hz)),
                ("fall", p(ramp_hz)),
            ],
            vec![
                vec![stay, advance, 0.0, 0.0],
                vec![0.0, stay, advance, 0.0],
                vec![0.0, 0.0, stay, advance],
                vec![advance, 0.0, 0.0, stay],
            ],
        ))
    }
}

/// A Markov-modulated arrival chain: named states each holding a *simple*
/// [`ArrivalProcess`] (Poisson / Uniform / Immediate — nesting another
/// chain is rejected), plus a row-stochastic transition matrix sampled
/// once per emitted arrival. The state is exposed
/// ([`MarkovArrivals::state`]) so a workload generator can couple key
/// choice to the regime — a flash crowd that also flips the hot set.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovArrivals {
    states: Vec<(String, ArrivalProcess)>,
    transitions: Vec<Vec<f64>>,
    current: usize,
}

impl MarkovArrivals {
    /// Builds the chain, starting in state 0.
    ///
    /// # Panics
    ///
    /// Panics (via [`MarkovArrivals::validate`]) if there are no states, a
    /// state nests another chain, the matrix is not square over the
    /// states, or a row is not a probability distribution.
    pub fn new(states: Vec<(&str, ArrivalProcess)>, transitions: Vec<Vec<f64>>) -> Self {
        let chain = MarkovArrivals {
            states: states
                .into_iter()
                .map(|(name, p)| (name.to_string(), p))
                .collect(),
            transitions,
            current: 0,
        };
        chain.validate();
        chain
    }

    /// Validates the chain shape.
    ///
    /// # Panics
    ///
    /// See [`MarkovArrivals::new`].
    pub fn validate(&self) {
        let n = self.states.len();
        assert!(n > 0, "Markov chain needs at least one state");
        for (name, process) in &self.states {
            assert!(
                !matches!(process, ArrivalProcess::MarkovModulated(_)),
                "state {name:?} nests a Markov chain"
            );
            process.validate();
        }
        assert_eq!(self.transitions.len(), n, "transition matrix must be n×n");
        for (i, row) in self.transitions.iter().enumerate() {
            assert_eq!(row.len(), n, "transition row {i} must have {n} entries");
            let mut sum = 0.0;
            for &p in row {
                assert!(
                    (0.0..=1.0).contains(&p) && p.is_finite(),
                    "transition probabilities must be in [0, 1]"
                );
                sum += p;
            }
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "transition row {i} must sum to 1 (got {sum})"
            );
        }
    }

    /// Index of the current state.
    pub fn state(&self) -> usize {
        self.current
    }

    /// Name of the current state.
    pub fn state_name(&self) -> &str {
        &self.states[self.current].0
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Samples one inter-arrival gap from the current state's process,
    /// then steps the chain. Public so a workload generator can drive the
    /// chain itself and read [`MarkovArrivals::state`] between arrivals.
    pub fn next_gap(&mut self, rng: &mut StdRng) -> Duration {
        let gap = self.states[self.current].1.next_gap(rng);
        let u: f64 = rng.gen_range(0.0..1.0);
        let row = &self.transitions[self.current];
        let mut acc = 0.0;
        for (next, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                self.current = next;
                break;
            }
        }
        gap
    }
}

/// Shared pacing state of the generated sources: a virtual clock advanced
/// by the arrival process.
#[derive(Debug)]
pub(crate) struct Pacer {
    clock: Duration,
    arrivals: ArrivalProcess,
    rng: StdRng,
}

impl Pacer {
    pub(crate) fn new(arrivals: ArrivalProcess, seed: u64) -> Self {
        arrivals.validate();
        Pacer {
            clock: Duration::ZERO,
            arrivals,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub(crate) fn next_arrival(&mut self) -> Duration {
        self.clock += self.arrivals.next_gap(&mut self.rng);
        self.clock
    }
}

/// Back-compat source over pre-materialized batches: every batch is a
/// request arriving at stream start (offset zero), so ingestion never
/// sleeps and the session serves exactly like the old blocking `serve()`.
#[derive(Debug)]
pub struct BatchSource {
    batches: Vec<Vec<VectorKey>>,
    next: usize,
    deadline: Option<Duration>,
    tenant: usize,
}

impl BatchSource {
    /// Wraps borrowed batch slices (the historical `serve` signature).
    pub fn new(batches: &[&[VectorKey]]) -> Self {
        Self::from_vecs(batches.iter().map(|b| b.to_vec()).collect())
    }

    /// Wraps owned batches.
    pub fn from_vecs(batches: Vec<Vec<VectorKey>>) -> Self {
        BatchSource {
            batches,
            next: 0,
            deadline: None,
            tenant: 0,
        }
    }

    /// Attaches a deadline (relative to arrival) to every batch.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags every request with a tenant index ([`SessionBuilder::tenants`]).
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant;
        self
    }
}

impl RequestSource for BatchSource {
    fn next_request(&mut self) -> Option<Request> {
        let i = self.next;
        if i >= self.batches.len() {
            return None;
        }
        self.next += 1;
        Some(Request {
            id: i as u64,
            keys: std::mem::take(&mut self.batches[i]),
            arrival: Duration::ZERO,
            deadline: self.deadline,
            tenant: self.tenant,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.batches.len() - self.next)
    }
}

/// Synthetic open-loop arrival stream: request keys come from a
/// [`WorkloadSpec`] (tables × rows × skew), arrival times from an
/// [`ArrivalProcess`].
#[derive(Debug)]
pub struct SyntheticSource {
    spec: WorkloadSpec,
    input_len: usize,
    remaining: usize,
    next_id: u64,
    pacer: Pacer,
    deadline: Option<Duration>,
    tenant: usize,
}

impl SyntheticSource {
    /// A stream of `requests` requests of `input_len` keys each.
    ///
    /// # Panics
    ///
    /// Panics if the spec or arrival process is invalid, or `input_len`
    /// is zero.
    pub fn new(
        spec: WorkloadSpec,
        input_len: usize,
        requests: usize,
        arrivals: ArrivalProcess,
        seed: u64,
    ) -> Self {
        spec.validate();
        assert!(input_len > 0, "input_len must be positive");
        SyntheticSource {
            spec,
            input_len,
            remaining: requests,
            next_id: 0,
            pacer: Pacer::new(arrivals, seed),
            deadline: None,
            tenant: 0,
        }
    }

    /// Attaches a deadline (relative to arrival) to every request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags every request with a tenant index ([`SessionBuilder::tenants`]).
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant;
        self
    }
}

impl RequestSource for SyntheticSource {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let id = self.next_id;
        self.next_id += 1;
        let keys = (0..self.input_len)
            .map(|i| self.spec.key(id as usize, i))
            .collect();
        Some(Request {
            id,
            keys,
            arrival: self.pacer.next_arrival(),
            deadline: self.deadline,
            tenant: self.tenant,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Replays a recorded [`Trace`] as a request stream: each request is
/// `queries_per_request` consecutive queries, paced by an
/// [`ArrivalProcess`] (external DLRM traces rarely carry wall-clock
/// timestamps, so the arrival process is supplied).
#[derive(Debug)]
pub struct TraceReplaySource {
    requests: Vec<Vec<VectorKey>>,
    next: usize,
    pacer: Pacer,
    deadline: Option<Duration>,
    tenant: usize,
}

impl TraceReplaySource {
    /// Builds the replay stream.
    ///
    /// # Panics
    ///
    /// Panics if `queries_per_request` is zero or the arrival process is
    /// invalid.
    pub fn new(
        trace: &Trace,
        queries_per_request: usize,
        arrivals: ArrivalProcess,
        seed: u64,
    ) -> Self {
        assert!(
            queries_per_request > 0,
            "queries_per_request must be positive"
        );
        TraceReplaySource {
            requests: trace
                .batches(queries_per_request)
                .into_iter()
                .map(|b| b.to_vec())
                .collect(),
            next: 0,
            pacer: Pacer::new(arrivals, seed),
            deadline: None,
            tenant: 0,
        }
    }

    /// Attaches a deadline (relative to arrival) to every request.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags every request with a tenant index ([`SessionBuilder::tenants`]).
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant;
        self
    }
}

impl RequestSource for TraceReplaySource {
    fn next_request(&mut self) -> Option<Request> {
        let i = self.next;
        if i >= self.requests.len() {
            return None;
        }
        self.next += 1;
        Some(Request {
            id: i as u64,
            keys: std::mem::take(&mut self.requests[i]),
            arrival: self.pacer.next_arrival(),
            deadline: self.deadline,
            tenant: self.tenant,
        })
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.requests.len() - self.next)
    }
}

/// Cheap, clonable view of a running session's progress counters. Holds a
/// weak reference: it never keeps the session's shared state alive past
/// [`ServingSession::drain`], and reads against a drained session saturate
/// (every request counts as finished) so a [`ClosedLoopSource`] can never
/// deadlock on a session that went away.
#[derive(Debug, Clone)]
pub struct SessionProgress {
    shared: Weak<SessionShared>,
}

impl SessionProgress {
    /// Requests served to completion so far.
    pub fn completed(&self) -> u64 {
        self.shared
            .upgrade()
            .map_or(u64::MAX, |s| s.completed_requests.load(Ordering::Acquire))
    }

    /// Requests whose lifecycle is over: completed, rejected at submit
    /// (queue full / blown deadline), or shed in queue. This is the
    /// closed-loop "a slot freed up" signal — rejections free a slot just
    /// like completions, otherwise an overloaded closed loop would hang.
    pub fn finished(&self) -> u64 {
        self.shared.upgrade().map_or(u64::MAX, |s| {
            s.completed_requests.load(Ordering::Acquire)
                + s.rejected_queue_full.load(Ordering::Relaxed)
                + s.rejected_deadline.load(Ordering::Relaxed)
                + s.shed_in_queue.load(Ordering::Relaxed)
        })
    }
}

/// Closed-loop arrival process over any inner source: at most
/// `outstanding` requests are in flight, and the next request "arrives"
/// the moment a slot frees up (completion, rejection, or shed) — the
/// classic N-client closed loop, versus the open-loop sources above whose
/// arrivals ignore the server entirely.
///
/// The inner source's arrival offsets are ignored; each emitted request's
/// arrival is the instant its slot opened, so latency percentiles measure
/// service + queueing under self-limiting load.
#[derive(Debug)]
pub struct ClosedLoopSource<S> {
    inner: S,
    outstanding: u64,
    progress: SessionProgress,
    issued: u64,
    epoch: Option<Instant>,
}

impl<S: RequestSource> ClosedLoopSource<S> {
    /// Wraps `inner`, keeping at most `outstanding` requests in flight in
    /// the session observed through `progress`
    /// ([`ServingSession::progress`]).
    ///
    /// # Panics
    ///
    /// Panics if `outstanding` is zero.
    pub fn new(inner: S, outstanding: usize, progress: SessionProgress) -> Self {
        assert!(outstanding > 0, "need at least one outstanding request");
        ClosedLoopSource {
            inner,
            outstanding: outstanding as u64,
            progress,
            issued: 0,
            epoch: None,
        }
    }
}

impl<S: RequestSource> RequestSource for ClosedLoopSource<S> {
    fn next_request(&mut self) -> Option<Request> {
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        // Wait for a free slot on a spin → yield → sleep ladder (the
        // migration epoch fence's backoff shape): a few pipeline-hint
        // spins catch the common case where a worker retires a request
        // within a service time, a yield burst hands the core to that
        // worker on a loaded box, and past that the source parks in
        // bounded sleep quanta — a saturated closed loop costs a timer
        // tick, not a core. `finished()` saturates to u64::MAX if the
        // session is gone, so this cannot hang on a drained session.
        let mut spins = 0u32;
        while self.issued.saturating_sub(self.progress.finished()) >= self.outstanding {
            spins = spins.saturating_add(1);
            if spins < 16 {
                std::hint::spin_loop();
            } else if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        let mut request = self.inner.next_request()?;
        request.arrival = epoch.elapsed();
        self.issued += 1;
        Some(request)
    }

    fn remaining_hint(&self) -> Option<usize> {
        self.inner.remaining_hint()
    }
}

// ---------------------------------------------------------------------------
// Session internals
// ---------------------------------------------------------------------------

/// A chunk handed to the background guidance plane.
pub(crate) struct GuidanceJob {
    shard: usize,
    chunk: Vec<VectorKey>,
    armed: bool,
}

/// Computed guidance waiting to be applied to a shard.
pub(crate) struct GuidanceUpdate {
    pub(crate) chunk: Vec<VectorKey>,
    pub(crate) bits: Vec<bool>,
    pub(crate) prefetched: Vec<VectorKey>,
}

/// Per-shard mailbox of computed guidance. `len` mirrors the vector length
/// (both only change under the mutex) so the serving fast path can check
/// "anything to apply?" with one atomic load instead of taking the lock on
/// every access.
#[derive(Default)]
struct CompletedSlot {
    updates: Mutex<Vec<GuidanceUpdate>>,
    len: AtomicUsize,
}

impl CompletedSlot {
    /// Applies (and clears) every parked update. `keep_prefetch: false`
    /// strips prefetch lists (the [`DegradeLevel::PrefetchOff`] case).
    fn apply_to(&self, shard: &mut Shard, keep_prefetch: bool) {
        let mut updates = self.updates.lock().expect("completed lock");
        for u in updates.drain(..) {
            let prefetched: &[VectorKey] = if keep_prefetch { &u.prefetched } else { &[] };
            shard.apply_guidance(&u.chunk, &u.bits, prefetched);
        }
        self.len.store(0, Ordering::Release);
    }
}

/// Background guidance plane state shared by workers and plane threads.
struct PlaneState {
    rx: Mutex<mpsc::Receiver<GuidanceJob>>,
    completed: Vec<CompletedSlot>,
    in_flight: Vec<AtomicUsize>,
    /// Exact-wakeup gate for producer pacing: the plane notifies after
    /// every drained batch; a worker whose shard is at the lag limit waits
    /// here instead of sleeping blind, so it resumes the moment the
    /// backlog clears rather than a sleep-quantum later.
    lag_gate: Mutex<()>,
    lag_cv: Condvar,
    max_lag: usize,
    max_batch: usize,
    /// Batched model forwards run (one per model invocation per drain).
    model_forwards: AtomicU64,
    /// Drain iterations that processed at least one chunk.
    drains: AtomicU64,
    /// Chunks computed by the plane.
    chunks: AtomicU64,
    /// Largest coalesced batch observed.
    max_batch_seen: AtomicU64,
}

impl PlaneState {
    /// Chunks offered to the plane whose guidance has not been computed
    /// yet, across shards.
    fn pending(&self) -> usize {
        self.in_flight
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum()
    }
}

/// An admitted request waiting in the session queue.
struct Admitted {
    id: u64,
    tenant: usize,
    keys: Vec<VectorKey>,
    arrival_at: Instant,
    deadline_at: Option<Instant>,
}

/// Per-tenant admission/shed counters, incremented alongside the session
/// globals under the same events so the per-tenant sums always equal the
/// global totals exactly (the conservation law the admission proptests
/// pin).
#[derive(Default)]
struct TenantCounters {
    submitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    shed_in_queue: AtomicU64,
    completed: AtomicU64,
}

/// The session's per-tenant request queues plus the weighted-fair
/// bookkeeping, all under the one queue mutex (so `closed` and the
/// condvar protocol are unchanged from the single-queue session).
struct TenantQueues {
    queues: Vec<VecDeque<Admitted>>,
    /// Requests dequeued per tenant — the weighted-fair share history.
    served: Vec<u64>,
}

impl TenantQueues {
    fn new(tenants: usize) -> Self {
        TenantQueues {
            queues: (0..tenants).map(|_| VecDeque::new()).collect(),
            served: vec![0; tenants],
        }
    }

    fn total_len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Weighted-fair dequeue: among tenants with queued requests, pop from
    /// the one with the smallest `served / weight` — the tenant furthest
    /// below its weighted share. A burst from one tenant can grow only its
    /// own queue; it cannot starve another tenant's dequeues, because the
    /// burster's normalized share races ahead and the quiet tenant wins
    /// every contested pop until the shares level out. With one tenant
    /// this is exactly the old FIFO.
    fn pop_fair(&mut self, tenants: &[TenantSpec]) -> Option<Admitted> {
        let mut best: Option<usize> = None;
        let mut best_score = f64::INFINITY;
        for (t, q) in self.queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            let score = self.served[t] as f64 / tenants[t].weight;
            if score < best_score {
                best_score = score;
                best = Some(t);
            }
        }
        let t = best?;
        self.served[t] += 1;
        self.queues[t].pop_front()
    }
}

/// State shared between the submitting side, serving workers, and the
/// guidance plane.
struct SessionShared {
    ctx: GuidanceCtx,
    router: ShardRouter,
    shards: Vec<Mutex<Shard>>,
    queue: Mutex<TenantQueues>,
    available: Condvar,
    closed: AtomicBool,
    admission: AdmissionPolicy,
    sla: Option<SlaBudget>,
    /// The tenant table (always at least the one default tenant); index =
    /// [`Request::tenant`].
    tenants: Vec<TenantSpec>,
    tenant_counters: Vec<TenantCounters>,
    plane: Option<PlaneState>,
    /// Live-migration state when the session was built with
    /// [`SessionBuilder::live`]; `None` keeps the serving path free of
    /// route pins entirely.
    live: Option<LiveState>,
    submitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_deadline: AtomicU64,
    shed_in_queue: AtomicU64,
    completed_requests: AtomicU64,
}

/// Per-worker serving log. Workers append to their own log without taking
/// any lock on the serving path; logs are merged once at drain.
#[derive(Default)]
struct WorkerLog {
    stats: BatchAccessStats,
    samples: Vec<RequestSample>,
}

/// Why [`ServingSession::submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The bounded queue is at [`AdmissionPolicy::queue_depth`].
    QueueFull,
    /// The request's deadline had already passed at submission.
    DeadlineBlown,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull => write!(f, "request queue is full"),
            Rejection::DeadlineBlown => write!(f, "deadline already blown at submission"),
        }
    }
}

impl std::error::Error for Rejection {}

/// Latency record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSample {
    /// The request's caller-assigned id.
    pub id: u64,
    /// The request's tenant index ([`Request::tenant`]).
    pub tenant: usize,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time a worker spent serving the request.
    pub service: Duration,
    /// End-to-end latency (arrival → completion).
    pub latency: Duration,
    /// Whether the request's own deadline was met (`None` if it had none).
    pub deadline_met: Option<bool>,
    /// The degradation level the request was served at.
    pub degrade: DegradeLevel,
}

/// Order statistics over a set of durations (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Maximum.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes `samples` (empty input yields an all-zero summary).
    pub fn from_durations(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        let total: Duration = samples.iter().sum();
        LatencySummary {
            count: n,
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: total / n as u32,
            max: samples[n - 1],
        }
    }

    fn to_json_ms(self) -> String {
        format!(
            concat!(
                "{{\"count\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, ",
                "\"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}"
            ),
            self.count,
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.mean.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        )
    }
}

/// SLA section of a [`SessionReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaOutcome {
    /// The configured latency budget.
    pub budget: Duration,
    /// Completed requests whose end-to-end latency met the budget.
    pub met: u64,
    /// Completed requests over budget.
    pub missed: u64,
    /// Requests served at [`DegradeLevel::SkipAhead`].
    pub degraded_skip_ahead: u64,
    /// Requests served at [`DegradeLevel::PrefetchOff`].
    pub degraded_prefetch_off: u64,
}

impl SlaOutcome {
    /// Fraction of completed requests within budget.
    pub fn attainment(&self) -> f64 {
        let total = self.met + self.missed;
        if total == 0 {
            1.0
        } else {
            self.met as f64 / total as f64
        }
    }

    /// Computes the outcome of `budget` over a sample set.
    fn over<'a>(budget: SlaBudget, samples: impl Iterator<Item = &'a RequestSample>) -> Self {
        let mut outcome = SlaOutcome {
            budget: budget.target,
            met: 0,
            missed: 0,
            degraded_skip_ahead: 0,
            degraded_prefetch_off: 0,
        };
        for s in samples {
            if s.latency <= budget.target {
                outcome.met += 1;
            } else {
                outcome.missed += 1;
            }
            match s.degrade {
                DegradeLevel::SkipAhead => outcome.degraded_skip_ahead += 1,
                DegradeLevel::PrefetchOff => outcome.degraded_prefetch_off += 1,
                DegradeLevel::None => {}
            }
        }
        outcome
    }

    /// JSON object (stable field names, asserted in CI).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"budget_ms\": {:.3}, \"met\": {}, \"missed\": {}, ",
                "\"attainment\": {:.4}, \"degraded_skip_ahead\": {}, ",
                "\"degraded_prefetch_off\": {}}}"
            ),
            self.budget.as_secs_f64() * 1e3,
            self.met,
            self.missed,
            self.attainment(),
            self.degraded_skip_ahead,
            self.degraded_prefetch_off,
        )
    }
}

/// Per-tenant slice of a [`SessionReport`]: admission/shed accounting,
/// latency percentiles, and the tenant's SLA outcome (under its own
/// budget when its [`TenantSpec`] set one, else the session budget). The
/// counters obey the same conservation law as the session totals —
/// `completed + rejected_queue_full + rejected_deadline + shed_in_queue
/// == submitted` — and summing any field across tenants reproduces the
/// session-level value exactly.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant's name ([`TenantSpec::name`]).
    pub name: String,
    /// The tenant's weighted-fair dequeue weight.
    pub weight: f64,
    /// Requests this tenant offered to [`ServingSession::submit`].
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected at submit: session queue at capacity, or this
    /// tenant at its [`TenantSpec::queue_quota`].
    pub rejected_queue_full: u64,
    /// Requests rejected at submit with an already-blown deadline.
    pub rejected_deadline: u64,
    /// Admitted requests shed at dequeue (deadline expired while queued).
    pub shed_in_queue: u64,
    /// End-to-end latency percentiles over this tenant's completions.
    pub latency: LatencySummary,
    /// Queueing-delay percentiles over this tenant's completions.
    pub queue_wait: LatencySummary,
    /// SLA accounting under the tenant's effective budget, when one
    /// applies.
    pub sla: Option<SlaOutcome>,
}

impl TenantReport {
    /// Requests not served: rejected at submit plus shed in queue.
    pub fn unserved(&self) -> u64 {
        self.rejected_queue_full + self.rejected_deadline + self.shed_in_queue
    }

    /// JSON object (stable field names, asserted in CI).
    pub fn to_json(&self) -> String {
        let sla = match &self.sla {
            None => "null".to_string(),
            Some(s) => s.to_json(),
        };
        format!(
            concat!(
                "{{\"name\": \"{}\", \"weight\": {}, \"submitted\": {}, ",
                "\"completed\": {}, \"rejected_queue_full\": {}, ",
                "\"rejected_deadline\": {}, \"shed_in_queue\": {}, ",
                "\"latency\": {}, \"queue_wait\": {}, \"sla\": {}}}"
            ),
            self.name,
            self.weight,
            self.submitted,
            self.completed,
            self.rejected_queue_full,
            self.rejected_deadline,
            self.shed_in_queue,
            self.latency.to_json_ms(),
            self.queue_wait.to_json_ms(),
            sla,
        )
    }
}

/// Outcome of a drained [`ServingSession`]: the batch-mode
/// [`EngineReport`] plus admission accounting, latency percentiles, and
/// the SLA section.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Merged access stats, guidance accounting, and wall-clock — the
    /// fields the batch API reported (`batches` counts completed
    /// requests).
    pub engine: EngineReport,
    /// Requests offered to [`ServingSession::submit`].
    pub submitted: u64,
    /// Requests rejected because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Requests rejected because their deadline was blown at submission.
    pub rejected_deadline: u64,
    /// Admitted requests shed at dequeue (deadline expired while queued).
    pub shed_in_queue: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// End-to-end latency percentiles over completed requests.
    pub latency: LatencySummary,
    /// Queueing-delay percentiles over completed requests.
    pub queue_wait: LatencySummary,
    /// SLA accounting, when the session had a budget.
    pub sla: Option<SlaOutcome>,
    /// Per-tenant accounting, one entry per [`SessionBuilder::tenants`]
    /// entry (a single default tenant when none were configured).
    pub tenants: Vec<TenantReport>,
}

impl SessionReport {
    /// Fraction of submitted requests that were not served (rejected or
    /// shed).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.rejected_queue_full + self.rejected_deadline + self.shed_in_queue) as f64
                / self.submitted as f64
        }
    }

    /// Machine-readable summary with fixed field names; embeds
    /// [`EngineReport::to_json`] under `"engine"`.
    pub fn to_json(&self) -> String {
        let sla = match &self.sla {
            None => "null".to_string(),
            Some(s) => s.to_json(),
        };
        let tenants: Vec<String> = self.tenants.iter().map(TenantReport::to_json).collect();
        format!(
            concat!(
                "{{\"engine\": {}, \"submitted\": {}, \"completed\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_deadline\": {}, ",
                "\"shed_in_queue\": {}, \"shed_rate\": {:.4}, ",
                "\"latency\": {}, \"queue_wait\": {}, \"sla\": {}, ",
                "\"tenants\": [{}]}}"
            ),
            self.engine.to_json(),
            self.submitted,
            self.completed,
            self.rejected_queue_full,
            self.rejected_deadline,
            self.shed_in_queue,
            self.shed_rate(),
            self.latency.to_json_ms(),
            self.queue_wait.to_json_ms(),
            sla,
            tenants.join(", "),
        )
    }
}

// ---------------------------------------------------------------------------
// Builder and session
// ---------------------------------------------------------------------------

/// Configures and starts a [`ServingSession`] over a
/// [`ShardedRecMgSystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionBuilder {
    workers: usize,
    guidance: Option<GuidanceMode>,
    admission: AdmissionPolicy,
    sla: Option<SlaBudget>,
    tenants: Vec<TenantSpec>,
    live: Option<LiveRebalanceConfig>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// One worker, guidance inherited from the system
    /// ([`SystemBuilder::guidance`]), default admission, no SLA, one
    /// default tenant.
    pub fn new() -> Self {
        SessionBuilder {
            workers: 1,
            guidance: None,
            admission: AdmissionPolicy::default(),
            sla: None,
            tenants: Vec::new(),
            live: None,
        }
    }

    /// Serving worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Guidance scheduling ([`GuidanceMode`]), overriding the system's
    /// default ([`SystemBuilder::guidance`]).
    pub fn guidance(mut self, guidance: GuidanceMode) -> Self {
        self.guidance = Some(guidance);
        self
    }

    /// Admission control for the request queue.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Latency budget; enables the SLA section of the report and
    /// pressure degradation.
    pub fn sla(mut self, sla: SlaBudget) -> Self {
        self.sla = Some(sla);
        self
    }

    /// Multi-tenant mode: the session tracks admission, shed, latency
    /// percentiles, and SLA outcomes per tenant, and dequeues
    /// weighted-fair across tenants so one tenant's burst cannot starve
    /// another's deadline. [`Request::tenant`] indexes into this table.
    /// Unset (or empty) leaves the session single-tenant with one
    /// implicit `"default"` tenant at index 0.
    pub fn tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Enables zero-quiescence live rebalancing: a background thread
    /// watches the shards' sketches and re-places / replicates them while
    /// requests flow ([`crate::migrate`]).
    pub fn live(mut self, cfg: LiveRebalanceConfig) -> Self {
        self.live = Some(cfg);
        self
    }

    /// Builds the system from a [`SystemBuilder`] and starts the session
    /// over it — the fluent end-to-end construction path. The session
    /// inherits the system builder's guidance mode unless
    /// [`guidance`](SessionBuilder::guidance) set one explicitly.
    ///
    /// # Panics
    ///
    /// As [`SessionBuilder::build`] and [`SystemBuilder::build`].
    pub fn build_system(self, system: SystemBuilder<'_>) -> ServingSession {
        self.build(system.build())
    }

    /// Consumes `system` and starts the session's worker (and, in
    /// background guidance mode, plane) threads. [`ServingSession::drain`]
    /// returns the system. Guidance scheduling falls back to the system's
    /// build-time default when not set on this builder.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, background guidance is configured with
    /// zero threads, or the SLA budget is invalid.
    pub fn build(self, system: ShardedRecMgSystem) -> ServingSession {
        assert!(self.workers > 0, "need at least one serving worker");
        if let Some(sla) = &self.sla {
            sla.validate();
        }
        let tenants = if self.tenants.is_empty() {
            vec![TenantSpec::new("default")]
        } else {
            self.tenants.clone()
        };
        for tenant in &tenants {
            tenant.validate();
        }
        let guidance = self.guidance.unwrap_or(system.default_guidance());
        let tiers_before = system.tier_usage();
        let fills_before = system.fill_report();
        let ShardedRecMgSystem {
            ctx,
            router,
            shards,
        } = system;
        let num_shards = router.num_shards();
        let guided_before: u64 = shards.iter().map(|s| s.guided_chunks).sum();
        let chunks_before: u64 = shards.iter().map(|s| s.chunk_counter as u64).sum();

        let (plane, proto_tx, plane_cfg) = match guidance {
            GuidanceMode::Inline => (None, None, None),
            GuidanceMode::Background {
                threads,
                max_lag,
                max_batch,
            } => {
                assert!(threads > 0, "need at least one guidance thread");
                assert!(max_batch > 0, "need a positive guidance batch size");
                let (tx, rx) = mpsc::channel::<GuidanceJob>();
                let plane = PlaneState {
                    rx: Mutex::new(rx),
                    completed: (0..num_shards).map(|_| CompletedSlot::default()).collect(),
                    in_flight: (0..num_shards).map(|_| AtomicUsize::new(0)).collect(),
                    lag_gate: Mutex::new(()),
                    lag_cv: Condvar::new(),
                    max_lag,
                    max_batch,
                    model_forwards: AtomicU64::new(0),
                    drains: AtomicU64::new(0),
                    chunks: AtomicU64::new(0),
                    max_batch_seen: AtomicU64::new(0),
                };
                (Some(plane), Some(tx), Some(threads))
            }
        };

        let shared = Arc::new(SessionShared {
            ctx,
            router,
            shards: shards.into_iter().map(Mutex::new).collect(),
            queue: Mutex::new(TenantQueues::new(tenants.len())),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
            admission: self.admission,
            sla: self.sla,
            tenant_counters: (0..tenants.len())
                .map(|_| TenantCounters::default())
                .collect(),
            tenants,
            plane,
            live: self.live.map(|cfg| LiveState::new(num_shards, cfg)),
            submitted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            shed_in_queue: AtomicU64::new(0),
            completed_requests: AtomicU64::new(0),
        });

        let plane_threads = plane_cfg
            .map(|threads| {
                (0..threads)
                    .map(|_| {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || plane_loop(&shared))
                    })
                    .collect()
            })
            .unwrap_or_default();

        let workers = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let tx = proto_tx.clone();
                std::thread::spawn(move || worker_loop(&shared, tx))
            })
            .collect();

        let rebalancer = shared.live.is_some().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let live = shared.live.as_ref().expect("live state checked above");
                migrate::live_loop(live, &shared.shards, &shared.ctx, &shared.router);
            })
        });

        // Async fill plane: re-arm the queue (a prior session's drain
        // closed it) and spawn the fill threads that promote queued
        // slow-tier misses into residency.
        let fill_threads = match (&shared.ctx.fill_queue, shared.ctx.fill_mode) {
            (Some(queue), FillMode::Async { threads, .. }) => {
                queue.open();
                (0..threads.max(1))
                    .map(|_| {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || fill_loop(&shared))
                    })
                    .collect()
            }
            _ => Vec::new(),
        };

        ServingSession {
            shared,
            workers,
            plane_threads,
            rebalancer,
            fill_threads,
            proto_tx,
            epoch: Instant::now(),
            guided_before,
            chunks_before,
            tiers_before,
            fills_before,
        }
    }
}

/// A running streaming-serving instance: owns the shards and threads of a
/// [`ShardedRecMgSystem`] between [`SessionBuilder::build`] and
/// [`ServingSession::drain`].
pub struct ServingSession {
    shared: Arc<SessionShared>,
    workers: Vec<JoinHandle<WorkerLog>>,
    plane_threads: Vec<JoinHandle<()>>,
    rebalancer: Option<JoinHandle<()>>,
    fill_threads: Vec<JoinHandle<()>>,
    proto_tx: Option<mpsc::Sender<GuidanceJob>>,
    epoch: Instant,
    guided_before: u64,
    chunks_before: u64,
    tiers_before: Vec<TierUsage>,
    fills_before: FillPlaneReport,
}

impl std::fmt::Debug for ServingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSession")
            .field("workers", &self.workers.len())
            .field("plane_threads", &self.plane_threads.len())
            .field("queue_len", &self.queue_len())
            .finish_non_exhaustive()
    }
}

impl ServingSession {
    /// Offers one request; returns immediately. The request is admitted to
    /// the bounded queue or rejected per the [`AdmissionPolicy`].
    pub fn submit(&self, request: Request) -> Result<(), Rejection> {
        self.submit_at(request, Instant::now())
    }

    /// Admission with an explicit arrival instant (ingest passes the
    /// scheduled arrival so queueing delay is measured from when the
    /// request *arrived*, not from when the submission loop got to it).
    fn submit_at(&self, request: Request, arrival_at: Instant) -> Result<(), Rejection> {
        let shared = &*self.shared;
        let tenant = request.tenant;
        assert!(
            tenant < shared.tenants.len(),
            "request tenant {} out of range ({} tenants configured)",
            tenant,
            shared.tenants.len()
        );
        let counters = &shared.tenant_counters[tenant];
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        let deadline_at = request.deadline.map(|d| arrival_at + d);
        if shared.admission.reject_blown {
            if let Some(d) = deadline_at {
                if Instant::now() > d {
                    shared.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    counters.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    return Err(Rejection::DeadlineBlown);
                }
            }
        }
        {
            let mut queue = shared.queue.lock().expect("queue lock");
            let over_quota = shared.tenants[tenant]
                .queue_quota
                .is_some_and(|quota| queue.queues[tenant].len() >= quota);
            if over_quota || queue.total_len() >= shared.admission.queue_depth {
                shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                counters.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                return Err(Rejection::QueueFull);
            }
            queue.queues[tenant].push_back(Admitted {
                id: request.id,
                tenant,
                keys: request.keys,
                arrival_at,
                deadline_at,
            });
        }
        shared.available.notify_one();
        Ok(())
    }

    /// Pulls `source` dry, pacing submissions to each request's arrival
    /// offset (sleeping until `start + arrival`). Returns the number of
    /// requests pulled; admission outcomes land in the final
    /// [`SessionReport`].
    pub fn ingest<S: RequestSource + ?Sized>(&self, source: &mut S) -> usize {
        let start = Instant::now();
        let mut pulled = 0usize;
        while let Some(request) = source.next_request() {
            pulled += 1;
            let arrival_at = start + request.arrival;
            let now = Instant::now();
            if arrival_at > now {
                std::thread::sleep(arrival_at - now);
            }
            let _ = self.submit_at(request, arrival_at);
        }
        pulled
    }

    /// Pulls several sources dry concurrently in arrival order: a k-way
    /// merge on each source's next arrival offset, so interleaved tenants
    /// share one paced submission clock. Returns the number of requests
    /// pulled across all sources.
    pub fn ingest_multi(&self, sources: &mut [&mut dyn RequestSource]) -> usize {
        let start = Instant::now();
        let mut pulled = 0usize;
        // One lookahead head per source; refill the head we consume.
        let mut heads: Vec<Option<Request>> =
            sources.iter_mut().map(|s| s.next_request()).collect();
        loop {
            let next = heads
                .iter()
                .enumerate()
                .filter_map(|(i, h)| h.as_ref().map(|r| (i, r.arrival)))
                .min_by_key(|&(_, arrival)| arrival)
                .map(|(i, _)| i);
            let Some(i) = next else { break };
            let request = heads[i].take().expect("head checked nonempty");
            heads[i] = sources[i].next_request();
            pulled += 1;
            let arrival_at = start + request.arrival;
            let now = Instant::now();
            if arrival_at > now {
                std::thread::sleep(arrival_at - now);
            }
            let _ = self.submit_at(request, arrival_at);
        }
        pulled
    }

    /// Requests currently waiting in the queue (all tenants).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").total_len()
    }

    /// Requests served to completion so far.
    pub fn completed_requests(&self) -> u64 {
        self.shared.completed_requests.load(Ordering::Acquire)
    }

    /// A clonable progress view for feedback-driven sources
    /// ([`ClosedLoopSource`]). The view is weak: it never keeps session
    /// state alive, and saturates once the session is drained.
    pub fn progress(&self) -> SessionProgress {
        SessionProgress {
            shared: Arc::downgrade(&self.shared),
        }
    }

    /// Chunks offered to the background guidance plane whose guidance has
    /// not been computed yet (0 in inline mode). Together with
    /// [`completed_requests`](ServingSession::completed_requests) this lets
    /// a caller wait for full guidance quiescence — the lockstep oracle of
    /// `tests/integration_streaming.rs`.
    pub fn plane_pending(&self) -> usize {
        self.shared.plane.as_ref().map_or(0, PlaneState::pending)
    }

    /// Manually live-migrates shard `shard` to `placement` while requests
    /// flow — the same double-buffered dance the background rebalancer
    /// runs, blocking until the migration commits (or is abandoned by a
    /// concurrent drain). Returns whether the migration committed; `false`
    /// also when the session was built without [`SessionBuilder::live`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `placement.tier` is out of range.
    pub fn migrate_shard(&self, shard: usize, placement: ShardPlacement) -> bool {
        let Some(live) = &self.shared.live else {
            return false;
        };
        assert!(shard < self.shared.shards.len(), "shard out of range");
        migrate::migrate_shard(
            live,
            &self.shared.shards,
            &self.shared.ctx.topology,
            shard,
            &placement,
        )
    }

    /// Manually installs (or, with `capacity == 0`, removes) a fast-tier
    /// replica on shard `shard`. Returns whether anything changed; `false`
    /// also when the session was built without [`SessionBuilder::live`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn replicate_shard(&self, shard: usize, capacity: usize) -> bool {
        let Some(live) = &self.shared.live else {
            return false;
        };
        assert!(shard < self.shared.shards.len(), "shard out of range");
        let ttl_epochs = live.cfg.replication.unwrap_or_default().ttl_epochs;
        migrate::set_replica(
            live,
            &self.shared.shards,
            &self.shared.ctx.topology,
            shard,
            capacity,
            ttl_epochs,
        )
    }

    /// The current route epoch (0 when live rebalancing is off or the
    /// route never changed).
    pub fn route_epoch(&self) -> u64 {
        self.shared
            .live
            .as_ref()
            .map_or(0, |live| live.routes.current_epoch())
    }

    /// Publishes a no-op route epoch — advances the epoch clock that
    /// replica-entry TTLs are measured against (useful for tests pinning
    /// decay behaviour). Returns the new epoch; 0 when live rebalancing
    /// is off.
    pub fn refresh_routes(&self) -> u64 {
        self.shared
            .live
            .as_ref()
            .map_or(0, |live| live.routes.publish_with(|_| {}))
    }

    /// Closes the queue, serves everything already admitted, joins all
    /// threads, and returns the (warm) system together with the session
    /// report.
    pub fn drain(mut self) -> (ShardedRecMgSystem, SessionReport) {
        // Stop the live rebalancer before anything else: a warm-up loop
        // mid-flight abandons its staging (the primary never stopped being
        // authoritative), so teardown never waits on a fill schedule.
        if let Some(live) = &self.shared.live {
            live.stop.store(true, Ordering::Release);
        }
        if let Some(handle) = self.rebalancer.take() {
            handle.join().expect("live rebalancer does not panic");
        }
        {
            // Set `closed` under the queue lock: a worker holds that lock
            // from its empty-check to its condvar wait, so the flag cannot
            // slip into that window and lose the wakeup.
            let _queue = self.shared.queue.lock().expect("queue lock");
            self.shared.closed.store(true, Ordering::Release);
        }
        self.shared.available.notify_all();

        let mut stats = BatchAccessStats::default();
        let mut samples: Vec<RequestSample> = Vec::new();
        for handle in self.workers.drain(..) {
            let log = handle.join().expect("session worker does not panic");
            stats.accumulate(log.stats);
            samples.extend(log.samples);
        }
        // All worker-held senders are dropped; dropping the prototype
        // closes the channel and lets the plane exit.
        drop(self.proto_tx.take());
        for handle in self.plane_threads.drain(..) {
            handle.join().expect("guidance plane does not panic");
        }
        // Close the fill queue last among the planes: `close` lets the
        // fill threads drain the backlog, so every queued fill either
        // lands as a promotion or stays counted in the report.
        if let Some(queue) = &self.shared.ctx.fill_queue {
            queue.close();
        }
        for handle in self.fill_threads.drain(..) {
            handle.join().expect("fill plane does not panic");
        }
        let elapsed_secs = self.epoch.elapsed().as_secs_f64();

        let shared = match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared,
            Err(_) => unreachable!("all session threads joined"),
        };
        let SessionShared {
            ctx,
            router,
            shards,
            plane,
            live,
            submitted,
            rejected_queue_full,
            rejected_deadline,
            shed_in_queue,
            sla,
            tenants,
            tenant_counters,
            ..
        } = shared;
        let mut shards: Vec<Shard> = shards
            .into_iter()
            .map(|m| m.into_inner().expect("shard lock"))
            .collect();
        // Strip replicas before handing the system back: replicas are a
        // session-lifetime accelerator, not part of the durable placement.
        // Their counters fold into the replication report.
        let mut migration = MigrationReport::default();
        let mut replication = ReplicationReport::default();
        if let Some(live) = &live {
            let mut replicated_shards = 0u64;
            for shard in &mut shards {
                if let Some(replica) = shard.replica.take() {
                    replicated_shards += 1;
                    live.fold_replica(&replica);
                }
            }
            migration = live.migration_report();
            replication = live.replication_report();
            replication.replicated_shards = replicated_shards;
        }
        // Guidance computed after its shard went idle is still valid
        // buffer reprioritization — apply it so the returned system starts
        // warm. The model ran and the update lands exactly as an inline
        // apply between batches would, so it counts as guided; it is
        // *also* tallied as plane lag (`late_chunks`: it landed after the
        // last access of this session), which is the metric a capacity
        // planner should watch.
        let mut plane_report = GuidancePlaneReport {
            kernel_lane: ctx.kernel_label(),
            ..GuidancePlaneReport::default()
        };
        if let Some(plane) = plane {
            plane_report = GuidancePlaneReport {
                model_forwards: plane.model_forwards.into_inner(),
                drains: plane.drains.into_inner(),
                chunks: plane.chunks.into_inner(),
                max_batch: plane.max_batch_seen.into_inner(),
                late_chunks: 0,
                kernel_lane: ctx.kernel_label(),
            };
            for (sid, slot) in plane.completed.into_iter().enumerate() {
                for u in slot.updates.into_inner().expect("completed lock") {
                    plane_report.late_chunks += 1;
                    shards[sid].apply_guidance(&u.chunk, &u.bits, &u.prefetched);
                }
            }
        }
        let system = ShardedRecMgSystem {
            ctx,
            router,
            shards,
        };
        // Per-tier report: occupancy at drain, traffic as the delta over
        // this session (tier counters are cumulative on the buffers).
        let tiers: Vec<TierUsage> = system
            .tier_usage()
            .iter()
            .zip(&self.tiers_before)
            .map(|(now, before)| now.delta_since(before))
            .collect();

        let latency = LatencySummary::from_durations(samples.iter().map(|s| s.latency).collect());
        let queue_wait =
            LatencySummary::from_durations(samples.iter().map(|s| s.queue_wait).collect());
        let sla_outcome = sla.map(|budget| SlaOutcome::over(budget, samples.iter()));
        let tenant_reports: Vec<TenantReport> = tenants
            .iter()
            .zip(&tenant_counters)
            .enumerate()
            .map(|(t, (spec, counters))| {
                let own: Vec<&RequestSample> = samples.iter().filter(|s| s.tenant == t).collect();
                let budget = spec.sla.or(sla);
                TenantReport {
                    name: spec.name.clone(),
                    weight: spec.weight,
                    submitted: counters.submitted.load(Ordering::Relaxed),
                    completed: counters.completed.load(Ordering::Relaxed),
                    rejected_queue_full: counters.rejected_queue_full.load(Ordering::Relaxed),
                    rejected_deadline: counters.rejected_deadline.load(Ordering::Relaxed),
                    shed_in_queue: counters.shed_in_queue.load(Ordering::Relaxed),
                    latency: LatencySummary::from_durations(
                        own.iter().map(|s| s.latency).collect(),
                    ),
                    queue_wait: LatencySummary::from_durations(
                        own.iter().map(|s| s.queue_wait).collect(),
                    ),
                    sla: budget.map(|b| SlaOutcome::over(b, own.iter().copied())),
                }
            })
            .collect();
        let report = SessionReport {
            engine: EngineReport {
                stats,
                batches: samples.len(),
                guided_chunks: system.guided_chunks() - self.guided_before,
                total_chunks: system.total_chunks() - self.chunks_before,
                elapsed_secs,
                plane: plane_report,
                tiers,
                unique_keys: system.unique_keys(),
                max_phase_score: system.max_phase_score(),
                migration,
                replication,
                tables: system.table_report(),
                calibration: system.calibration_report().clone(),
                fills: system.fill_report().delta_since(&self.fills_before),
            },
            submitted: submitted.into_inner(),
            rejected_queue_full: rejected_queue_full.into_inner(),
            rejected_deadline: rejected_deadline.into_inner(),
            shed_in_queue: shed_in_queue.into_inner(),
            completed: samples.len() as u64,
            latency,
            queue_wait,
            sla: sla_outcome,
            tenants: tenant_reports,
        };
        (system, report)
    }
}

// ---------------------------------------------------------------------------
// Worker and plane loops
// ---------------------------------------------------------------------------

/// Blocks until a request is available or the session is closed and the
/// queue is empty. Dequeues weighted-fair across tenants
/// ([`TenantQueues::pop_fair`]); with one tenant this is plain FIFO.
fn pop_request(shared: &SessionShared) -> Option<Admitted> {
    let mut queue = shared.queue.lock().expect("queue lock");
    loop {
        if let Some(request) = queue.pop_fair(&shared.tenants) {
            return Some(request);
        }
        if shared.closed.load(Ordering::Acquire) {
            return None;
        }
        queue = shared.available.wait(queue).expect("queue lock");
    }
}

fn worker_loop(shared: &SessionShared, tx: Option<mpsc::Sender<GuidanceJob>>) -> WorkerLog {
    let mut log = WorkerLog::default();
    // Per-worker shard-split scratch: the router refills these vectors on
    // every request, so the per-request path allocates nothing once the
    // per-shard capacities have warmed up.
    let mut parts: Vec<Vec<VectorKey>> = Vec::new();
    while let Some(request) = pop_request(shared) {
        let dequeued = Instant::now();
        let counters = &shared.tenant_counters[request.tenant];
        if shared.admission.shed_blown {
            if let Some(d) = request.deadline_at {
                if dequeued > d {
                    shared.shed_in_queue.fetch_add(1, Ordering::Relaxed);
                    counters.shed_in_queue.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        }
        let queue_wait = dequeued.saturating_duration_since(request.arrival_at);
        // A tenant's own budget overrides the session-wide one for
        // pressure degradation (and later, its report's SLA section).
        let budget = shared.tenants[request.tenant].sla.or(shared.sla);
        let degrade = budget.map_or(DegradeLevel::None, |sla| sla.level(queue_wait));
        serve_request(
            shared,
            &request.keys,
            degrade,
            tx.as_ref(),
            &mut log.stats,
            &mut parts,
        );
        let finished = Instant::now();
        log.samples.push(RequestSample {
            id: request.id,
            tenant: request.tenant,
            queue_wait,
            service: finished.saturating_duration_since(dequeued),
            latency: finished.saturating_duration_since(request.arrival_at),
            deadline_met: request.deadline_at.map(|d| finished <= d),
            degrade,
        });
        counters.completed.fetch_add(1, Ordering::Relaxed);
        shared.completed_requests.fetch_add(1, Ordering::AcqRel);
    }
    // Dropping `tx` here (worker exit) releases the plane channel.
    log
}

/// Serves one request's keys across its home shards at the chosen
/// degradation level. `parts` is the worker's reusable split scratch
/// ([`ShardRouter::split_into`]).
fn serve_request(
    shared: &SessionShared,
    keys: &[VectorKey],
    degrade: DegradeLevel,
    tx: Option<&mpsc::Sender<GuidanceJob>>,
    stats: &mut BatchAccessStats,
    parts: &mut Vec<Vec<VectorKey>>,
) {
    shared.router.split_into(keys, parts);
    // One route pin covers the whole request: the snapshot cannot tear,
    // and a concurrent migration commit waits at its epoch fence until
    // this guard drops (so a mirror below never races the buffer swap).
    let route = shared.live.as_ref().map(|live| live.routes.pin());
    for (sid, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let mut shard = shared.shards[sid].lock().expect("shard lock");
        match degrade {
            DegradeLevel::None => match (&shared.plane, tx) {
                (Some(plane), Some(tx)) => {
                    serve_shard_background(&mut shard, part, stats, &shared.ctx, tx, plane, sid)
                }
                _ => stats.accumulate(shard.process_keys(part, &shared.ctx, &shared.router)),
            },
            DegradeLevel::SkipAhead | DegradeLevel::PrefetchOff => {
                // Degraded: no fresh guidance for this request (§VI-C
                // skip-ahead on purpose). Background guidance that already
                // finished is still applied — with its prefetch list
                // stripped at PrefetchOff.
                if let Some(plane) = &shared.plane {
                    let keep_prefetch = degrade == DegradeLevel::SkipAhead;
                    if plane.completed[sid].len.load(Ordering::Acquire) > 0 {
                        plane.completed[sid].apply_to(&mut shard, keep_prefetch);
                    }
                }
                shard.process_keys_unguided(part, shared.ctx.cfg.input_len, stats);
            }
        }
        // Copy-on-access warming: a shard mid-migration gets the keys this
        // request just demanded mirrored into its staging buffer, still
        // under the shard mutex (the primary stayed authoritative above).
        if let Some(route) = &route {
            if route.route(sid) == ShardRoute::Migrating {
                shared
                    .live
                    .as_ref()
                    .expect("route pin implies live state")
                    .mirror(&mut shard, part);
            }
        }
    }
}

/// Fill-plane thread body: pops coalesced slow-tier misses off the
/// bounded queue and installs each row into its shard at the fill cost
/// the entry carried from its origin miss
/// ([`crate::RecMgBuffer`]`::promote_fill`). Exits once `drain` closes
/// the queue and the backlog is dry, so every queued fill either lands
/// as a promotion or stays counted (`coalesced`/`dropped`) in the
/// [`FillPlaneReport`].
fn fill_loop(shared: &SessionShared) {
    let queue = shared
        .ctx
        .fill_queue
        .as_ref()
        .expect("fill threads only run in async fill mode");
    while let Some((sid, key, fill_ns)) = queue.pop_wait() {
        let mut shard = shared.shards[sid].lock().expect("shard mutex poisoned");
        if shard.buffer.promote_fill(key, fill_ns) {
            queue.note_promoted();
        }
    }
}

/// Guidance-plane thread body: coalesce every pending chunk (up to
/// `max_batch`) into one batched model forward per model, then scatter the
/// per-shard updates. Exits when every sender (worker) is gone.
///
/// This is the tentpole of the batched plane: under multi-shard load the
/// plane's weight traffic is O(drained batches), not O(chunks) — while a
/// drain is being computed, workers keep appending jobs to the channel, so
/// the next drain naturally coalesces the backlog.
fn plane_loop(shared: &SessionShared) {
    let plane = shared
        .plane
        .as_ref()
        .expect("plane threads only run in background mode");
    let mut jobs: Vec<GuidanceJob> = Vec::with_capacity(plane.max_batch);
    let mut scratch = FastScratch::default();
    loop {
        jobs.clear();
        {
            // Hold the receiver only while draining; the batched forward
            // below runs lock-free so sibling plane threads can drain the
            // next backlog concurrently.
            let rx = plane.rx.lock().expect("rx lock");
            match rx.recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break, // all workers done
            }
            while jobs.len() < plane.max_batch {
                match rx.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
        }
        plane.drains.fetch_add(1, Ordering::Relaxed);
        plane.chunks.fetch_add(jobs.len() as u64, Ordering::Relaxed);
        plane
            .max_batch_seen
            .fetch_max(jobs.len() as u64, Ordering::Relaxed);

        let batch: Vec<(&[VectorKey], bool, usize)> = jobs
            .iter()
            .map(|j| (j.chunk.as_slice(), j.armed, j.shard))
            .collect();
        let (guidance, forwards) =
            Shard::compute_guidance_batch(&batch, &shared.ctx, &shared.router, &mut scratch);
        plane.model_forwards.fetch_add(forwards, Ordering::Relaxed);

        for (job, (bits, prefetched)) in jobs.drain(..).zip(guidance) {
            let slot = &plane.completed[job.shard];
            {
                let mut updates = slot.updates.lock().expect("completed lock");
                updates.push(GuidanceUpdate {
                    chunk: job.chunk,
                    bits,
                    prefetched,
                });
                slot.len.store(updates.len(), Ordering::Release);
            }
            // Decrement only after the update is visible, so a shard never
            // sees "plane idle" with its guidance still un-parked.
            plane.in_flight[job.shard].fetch_sub(1, Ordering::AcqRel);
        }
        // Wake producers pacing on the lag gate. Taking (and dropping) the
        // gate lock orders this notify after any in-flight check a waiter
        // made before blocking, so the wakeup cannot be missed.
        drop(plane.lag_gate.lock().expect("lag gate lock"));
        plane.lag_cv.notify_all();
    }
}

/// Serves one shard sub-batch under the background guidance plane: demand
/// accesses never wait; completed guidance is applied as soon as it is
/// available (one atomic load on the fast path); new chunks are offered to
/// the plane unless it lags more than `max_lag` (the paper's §VI-C
/// skip-ahead rule).
fn serve_shard_background(
    shard: &mut Shard,
    keys: &[VectorKey],
    stats: &mut BatchAccessStats,
    ctx: &GuidanceCtx,
    tx: &mpsc::Sender<GuidanceJob>,
    plane: &PlaneState,
    sid: usize,
) {
    let input_len = ctx.cfg.input_len;
    let slot = &plane.completed[sid];
    let in_flight = &plane.in_flight[sid];
    for &key in keys {
        if slot.len.load(Ordering::Acquire) > 0 {
            // Apply whatever the plane has finished before this access
            // (bounded staleness, never blocking).
            slot.apply_to(shard, true);
        }
        shard.record_access(key, stats);
        shard.pending.push(key);
        while shard.pending.len() >= input_len {
            let chunk: Vec<VectorKey> = shard.pending.drain(..input_len).collect();
            shard.chunk_counter += 1;
            if in_flight.load(Ordering::Acquire) >= plane.max_lag {
                // The shard is at the plane's lag limit: this chunk runs
                // on stale guidance (the §VI-C skip, verbatim). What
                // changes with the coalescing plane is what happens
                // *next*: instead of racing further ahead and converting
                // every following chunk into a skip too (which is how
                // `guided_fraction` collapsed under multi-shard load), the
                // producer paces itself on the lag gate until the plane
                // has drained the backlog to a low-water mark. The
                // hysteresis makes production bursty on purpose — one
                // wake/sleep cycle per `max_lag - low_water` chunks, so
                // context switches amortize over the burst and the plane
                // always wakes to a full coalescing batch. Under sustained
                // saturation the steady state is one skipped chunk per
                // burst (guided fraction ≈ 1 - 1/burst); when the plane
                // keeps up nothing is skipped at all.
                shard.unguided_chunks += 1;
                if plane.max_lag == 0 {
                    // The plane accepts no work: plain skip-ahead.
                    continue;
                }
                let low_water = plane.max_lag / 4;
                let mut gate = plane.lag_gate.lock().expect("lag gate lock");
                let mut waits = 0u32;
                // The pacing wait runs with this shard's mutex held, so it
                // must stay short: a healthy plane drains a batch in well
                // under a timeout quantum (the notify is what actually
                // wakes the producer), and if it has made no progress
                // after a few quanta we fall back to racing ahead (more
                // §VI-C skips) rather than stalling sibling workers' —
                // including SLA-degraded — demand accesses on the lock.
                while in_flight.load(Ordering::Acquire) > low_water && waits < 5 {
                    let (g, _) = plane
                        .lag_cv
                        .wait_timeout(gate, Duration::from_millis(5))
                        .expect("lag gate lock");
                    gate = g;
                    waits += 1;
                }
                drop(gate);
                continue;
            }
            if slot.len.load(Ordering::Acquire) > 0 {
                slot.apply_to(shard, true);
            }
            // Plane-pressure degradation, mirroring the SLA ladder
            // ([`DegradeLevel::PrefetchOff`]): when the plane's total
            // backlog has built past an eighth of its aggregate lag budget
            // (`shards × max_lag`, so the threshold scales with the shard
            // count instead of choking prefetch at high shard counts),
            // send the chunk for caching guidance only. The autoregressive
            // prefetch forward is ~2× the caching forward; shedding it
            // first keeps the plane's priority signal fresh for everyone
            // instead of letting speculative work starve it. With an idle
            // plane (backlog 0) arming is exactly the sequential system's
            // rule, which is what the 1-shard lockstep oracle pins.
            // `.max(1)` guards the integer-division cliff: with a tiny
            // aggregate budget (e.g. 1 shard × max_lag 1) the threshold
            // would otherwise be 0 and prefetch would be shed on *any*
            // in-flight chunk, starving the warmup counter forever.
            let shed_at = (plane.completed.len() * plane.max_lag / 8).max(1);
            let armed = shard.prefetch_armed(ctx) && plane.pending() <= shed_at;
            in_flight.fetch_add(1, Ordering::AcqRel);
            if tx
                .send(GuidanceJob {
                    shard: shard.id,
                    chunk,
                    armed,
                })
                .is_err()
            {
                // Plane already shut down (can only happen at teardown).
                in_flight.fetch_sub(1, Ordering::AcqRel);
                shard.unguided_chunks += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caching_model::CachingModel;
    use crate::codec::FrequencyRankCodec;
    use crate::config::RecMgConfig;
    use crate::prefetch_model::PrefetchModel;
    use recmg_trace::SyntheticConfig;

    fn system(num_shards: usize) -> ShardedRecMgSystem {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let prefetch = PrefetchModel::new(&cfg);
        let trace = SyntheticConfig::tiny(5).generate();
        let codec = FrequencyRankCodec::from_accesses(&trace.accesses()[..500]);
        ShardedRecMgSystem::builder(&caching, Some(&prefetch), codec)
            .shards(num_shards)
            .capacity(64)
            .build()
    }

    #[test]
    fn batch_source_yields_every_batch_at_time_zero() {
        let trace = SyntheticConfig::tiny(7).generate();
        let batches = trace.batches(10);
        let mut src = BatchSource::new(&batches);
        assert_eq!(src.remaining_hint(), Some(batches.len()));
        let mut total = 0usize;
        let mut count = 0usize;
        while let Some(req) = src.next_request() {
            assert_eq!(req.id, count as u64);
            assert_eq!(req.arrival, Duration::ZERO);
            assert_eq!(req.deadline, None);
            total += req.keys.len();
            count += 1;
        }
        assert_eq!(count, batches.len());
        assert_eq!(total, trace.len());
        assert_eq!(src.remaining_hint(), Some(0));
    }

    #[test]
    fn synthetic_poisson_arrivals_are_monotone() {
        let spec = WorkloadSpec::default();
        let mut src = SyntheticSource::new(
            spec,
            8,
            50,
            ArrivalProcess::Poisson { rate_hz: 10_000.0 },
            42,
        )
        .with_deadline(Duration::from_millis(5));
        let mut last = Duration::ZERO;
        let mut n = 0usize;
        while let Some(req) = src.next_request() {
            assert_eq!(req.keys.len(), 8);
            assert!(req.arrival >= last, "arrivals must be non-decreasing");
            assert_eq!(req.deadline, Some(Duration::from_millis(5)));
            last = req.arrival;
            n += 1;
        }
        assert_eq!(n, 50);
        assert!(last > Duration::ZERO, "Poisson gaps are a.s. positive");
    }

    #[test]
    fn trace_replay_covers_the_trace() {
        let trace = SyntheticConfig::tiny(9).generate();
        let mut src = TraceReplaySource::new(
            &trace,
            5,
            ArrivalProcess::Uniform {
                interval: Duration::from_micros(3),
            },
            0,
        );
        let mut total = 0usize;
        let mut i = 0usize;
        while let Some(req) = src.next_request() {
            total += req.keys.len();
            assert_eq!(req.arrival, Duration::from_micros(3) * (i as u32 + 1));
            i += 1;
        }
        assert_eq!(total, trace.len());
    }

    #[test]
    fn batch_backed_session_serves_everything() {
        let trace = SyntheticConfig::tiny(11).generate();
        let batches = trace.batches(10);
        let session = SessionBuilder::new()
            .workers(2)
            .guidance(GuidanceMode::Background {
                threads: 1,
                max_lag: 4,
                max_batch: 8,
            })
            .admission(AdmissionPolicy::unbounded())
            .build(system(4));
        session.ingest(&mut BatchSource::new(&batches));
        let (sys, report) = session.drain();
        assert_eq!(report.submitted, batches.len() as u64);
        assert_eq!(report.completed, batches.len() as u64);
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.latency.count, batches.len());
        assert!(report.latency.p50 <= report.latency.p95);
        assert!(report.latency.p95 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
        assert!(sys.total_chunks() > 0);
        assert!(report.to_json().contains("\"shed_rate\": 0.0000"));
    }

    #[test]
    fn zero_depth_queue_rejects_every_submit() {
        let session = SessionBuilder::new()
            .admission(AdmissionPolicy {
                queue_depth: 0,
                ..AdmissionPolicy::default()
            })
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        for i in 0..5u64 {
            let got = session.submit(Request {
                id: i,
                keys: vec![],
                arrival: Duration::ZERO,
                deadline: None,
                tenant: 0,
            });
            assert_eq!(got, Err(Rejection::QueueFull));
        }
        let (_sys, report) = session.drain();
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected_queue_full, 5);
        assert_eq!(report.completed, 0);
        assert_eq!(report.shed_rate(), 1.0);
    }

    #[test]
    fn blown_deadline_is_rejected_at_submit() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        // An arrival far enough in the past that its deadline has expired.
        let Some(past) = Instant::now().checked_sub(Duration::from_millis(50)) else {
            return; // process younger than 50ms; cannot construct the case
        };
        let got = session.submit_at(
            Request {
                id: 0,
                keys: vec![],
                arrival: Duration::ZERO,
                deadline: Some(Duration::from_millis(1)),
                tenant: 0,
            },
            past,
        );
        assert_eq!(got, Err(Rejection::DeadlineBlown));
        let (_sys, report) = session.drain();
        assert_eq!(report.rejected_deadline, 1);
    }

    #[test]
    fn forced_sla_pressure_degrades_to_prefetch_off() {
        let trace = SyntheticConfig::tiny(13).generate();
        let batches = trace.batches(10);
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .sla(SlaBudget {
                target: Duration::from_nanos(1),
                skip_ahead_at: 0.0,
                prefetch_off_at: 0.0,
            })
            .build(system(2));
        session.ingest(&mut BatchSource::new(&batches));
        let (sys, report) = session.drain();
        // Zero queue-wait already exceeds both thresholds: every request
        // runs at PrefetchOff, so no chunk ever receives fresh guidance.
        assert_eq!(report.engine.guided_chunks, 0);
        assert!(report.engine.total_chunks > 0);
        assert_eq!(sys.prefetches_issued(), 0);
        let sla = report.sla.expect("sla configured");
        assert_eq!(sla.degraded_prefetch_off, report.completed);
        assert_eq!(sla.met, 0);
        assert!((sla.attainment() - 0.0).abs() < 1e-9);
        // Every access is still served — degradation sheds model work,
        // never demand accesses.
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
    }

    #[test]
    fn latency_summary_nearest_rank() {
        let ms = Duration::from_millis;
        let s = LatencySummary::from_durations((1..=100).map(ms).collect());
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, ms(50));
        assert_eq!(s.p95, ms(95));
        assert_eq!(s.p99, ms(99));
        assert_eq!(s.max, ms(100));
        assert_eq!(LatencySummary::from_durations(vec![]).count, 0);
        let one = LatencySummary::from_durations(vec![ms(7)]);
        assert_eq!(one.p50, ms(7));
        assert_eq!(one.p99, ms(7));
        assert_eq!(one.mean, ms(7));
    }

    #[test]
    #[should_panic(expected = "at least one serving worker")]
    fn zero_worker_builder_panics() {
        let _ = SessionBuilder::new().workers(0).build(system(1));
    }

    #[test]
    fn closed_loop_source_bounds_outstanding_and_serves_all() {
        let trace = SyntheticConfig::tiny(17).generate();
        let batches = trace.batches(10);
        let requests = batches.len();
        let session = SessionBuilder::new()
            .workers(1)
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy {
                // Queue depth below the request count: only the closed
                // loop's self-limiting keeps everything admitted.
                queue_depth: 2,
                ..AdmissionPolicy::default()
            })
            .build(system(2));
        let mut source = ClosedLoopSource::new(BatchSource::new(&batches), 2, session.progress());
        let pulled = session.ingest(&mut source);
        let (_sys, report) = session.drain();
        assert_eq!(pulled, requests);
        assert_eq!(report.submitted, requests as u64);
        // With 2 outstanding and 1 worker, at most 1 request queues at a
        // time — nothing is ever rejected despite the tiny queue.
        assert_eq!(report.rejected_queue_full, 0);
        assert_eq!(report.completed, requests as u64);
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
    }

    #[test]
    fn closed_loop_arrivals_are_monotone() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let inner =
            SyntheticSource::new(WorkloadSpec::default(), 4, 10, ArrivalProcess::Immediate, 3);
        let mut src = ClosedLoopSource::new(inner, 4, session.progress());
        assert_eq!(src.remaining_hint(), Some(10));
        let mut last = Duration::ZERO;
        let mut n = 0usize;
        while let Some(req) = src.next_request() {
            assert!(req.arrival >= last, "closed-loop arrivals move forward");
            last = req.arrival;
            n += 1;
            session.submit(req).expect("admitted");
        }
        assert_eq!(n, 10);
        let (_sys, report) = session.drain();
        assert_eq!(report.completed, 10);
    }

    #[test]
    #[should_panic(expected = "at least one outstanding")]
    fn closed_loop_zero_outstanding_panics() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let _ = ClosedLoopSource::new(BatchSource::from_vecs(vec![]), 0, session.progress());
    }

    #[test]
    fn progress_saturates_after_drain() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let progress = session.progress();
        assert_eq!(progress.completed(), 0);
        assert_eq!(progress.finished(), 0);
        let (_sys, _report) = session.drain();
        // The weak view saturates: a closed loop can never hang on it.
        assert_eq!(progress.completed(), u64::MAX);
        assert_eq!(progress.finished(), u64::MAX);
    }

    #[test]
    fn session_inherits_system_guidance_default() {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let trace = SyntheticConfig::tiny(5).generate();
        let codec = FrequencyRankCodec::from_accesses(&trace.accesses()[..200]);
        // Inline set on the *system* builder: the session without an
        // explicit mode spawns no plane threads.
        let session = SessionBuilder::new().build_system(
            ShardedRecMgSystem::builder(&caching, None, codec)
                .shards(2)
                .capacity(64)
                .guidance(GuidanceMode::Inline),
        );
        assert_eq!(session.plane_threads.len(), 0);
        session.ingest(&mut BatchSource::new(&trace.batches(10)));
        let (_sys, report) = session.drain();
        assert_eq!(report.engine.stats.total(), trace.len() as u64);
        // Per-tier stats surfaced through the session report.
        assert_eq!(report.engine.tiers.len(), 1);
        assert_eq!(report.engine.tiers[0].name, "dram");
        assert_eq!(report.engine.tiers[0].traffic.demand(), trace.len() as u64);
        assert!(report.engine.access_cost_ns() > 0);
        assert!(report.to_json().contains("\"tiers\""));
    }

    // -- Poisson gap sampler (bugfix pin) ---------------------------------

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The inverse-CDF exponential sampler must never emit an
        /// infinite gap (u → 1 stalls the source forever), a zero gap
        /// (defeats pacing), or a NaN — at any rate and seed.
        #[test]
        fn poisson_gaps_are_always_finite_and_positive(
            seed in 0u64..u64::MAX,
            rate_exp in -3i32..9,
        ) {
            let rate_hz = 10f64.powi(rate_exp);
            let mut arrivals = ArrivalProcess::Poisson { rate_hz };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut clock = Duration::ZERO;
            for _ in 0..256 {
                let gap = arrivals.next_gap(&mut rng);
                proptest::prop_assert!(gap > Duration::ZERO, "gap must be positive");
                // ~27.7 mean gaps is the clamp ceiling: -ln(1e-12)/rate.
                proptest::prop_assert!(
                    gap.as_secs_f64() <= 28.0 / rate_hz,
                    "gap {:?} exceeds the clamp ceiling at rate {rate_hz}",
                    gap
                );
                let next = clock + gap;
                proptest::prop_assert!(next > clock, "virtual clock must advance");
                clock = next;
            }
        }
    }

    // -- LatencySummary nearest-rank indexing (bugfix pin) ----------------

    fn summary_of_millis(ms: &[u64]) -> LatencySummary {
        LatencySummary::from_durations(ms.iter().map(|&m| Duration::from_millis(m)).collect())
    }

    #[test]
    fn latency_summary_empty_is_all_zero() {
        let s = summary_of_millis(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, Duration::ZERO);
        assert_eq!(s.p95, Duration::ZERO);
        assert_eq!(s.p99, Duration::ZERO);
        assert_eq!(s.max, Duration::ZERO);
    }

    #[test]
    fn latency_summary_single_sample_is_every_percentile() {
        let s = summary_of_millis(&[7]);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, Duration::from_millis(7));
        assert_eq!(s.p95, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
        assert_eq!(s.max, Duration::from_millis(7));
    }

    #[test]
    fn latency_summary_two_samples_split_at_the_median() {
        // Nearest-rank: ceil(0.5 × 2) = rank 1 → the smaller sample;
        // ceil(0.95 × 2) = ceil(0.99 × 2) = rank 2 → the larger. The top
        // rank must index samples[1], not overflow to samples[2].
        let s = summary_of_millis(&[10, 20]);
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, Duration::from_millis(10));
        assert_eq!(s.p95, Duration::from_millis(20));
        assert_eq!(s.p99, Duration::from_millis(20));
        assert_eq!(s.max, Duration::from_millis(20));
    }

    #[test]
    fn latency_summary_hundred_samples_hit_exact_ranks() {
        // 1..=100 ms: nearest-rank percentile q over n=100 is exactly
        // the ceil(q·100)-th smallest, i.e. q·100 ms.
        let ms: Vec<u64> = (1..=100).rev().collect();
        let s = summary_of_millis(&ms);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p95, Duration::from_millis(95));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
    }

    // -- ClosedLoopSource backoff (bugfix pin) ----------------------------

    #[test]
    fn blocked_closed_loop_makes_progress_without_busy_spinning() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .build(system(1));
        let progress = session.progress();
        let (tx, rx) = mpsc::channel::<Request>();
        let puller = std::thread::spawn(move || {
            let inner = BatchSource::from_vecs(vec![vec![], vec![]]);
            let mut src = ClosedLoopSource::new(inner, 1, progress);
            // Request 1 issues immediately; request 2 blocks until the
            // session completes request 1.
            let first = src.next_request().expect("first request");
            tx.send(first).expect("main listening");
            let second = src.next_request().expect("second request unblocks");
            tx.send(second).expect("main listening");
            assert!(src.next_request().is_none());
        });
        let first = rx.recv().expect("first request arrives");
        // The puller is now blocked in the backoff loop (request 1 not
        // finished). Give it a beat, then unblock it by serving.
        assert!(rx.try_recv().is_err(), "second request must be blocked");
        session.submit(first).expect("admitted");
        let second = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("blocked source resumed after completion");
        session.submit(second).expect("admitted");
        puller.join().expect("puller exits cleanly");
        let (_sys, report) = session.drain();
        assert_eq!(report.completed, 2);
    }

    // -- Markov-modulated arrivals ----------------------------------------

    #[test]
    fn markov_arrivals_sample_finite_monotone_gaps_and_visit_states() {
        let mut arrivals = ArrivalProcess::flash_crowd(1000.0, 10.0, 20, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let ArrivalProcess::MarkovModulated(chain) = &mut arrivals else {
            panic!("flash_crowd builds a Markov chain");
        };
        assert_eq!(chain.num_states(), 2);
        assert_eq!(chain.state_name(), "steady");
        let mut visited = [false; 2];
        let mut clock = Duration::ZERO;
        for _ in 0..2000 {
            visited[chain.state()] = true;
            let gap = chain.next_gap(&mut rng);
            assert!(gap > Duration::ZERO);
            clock += gap;
        }
        assert!(visited[0] && visited[1], "chain must visit both states");
        assert!(clock > Duration::ZERO);
    }

    #[test]
    fn diurnal_preset_cycles_through_four_states() {
        let mut arrivals = ArrivalProcess::diurnal(100.0, 10_000.0, 8);
        let mut rng = StdRng::seed_from_u64(11);
        let ArrivalProcess::MarkovModulated(chain) = &mut arrivals else {
            panic!("diurnal builds a Markov chain");
        };
        assert_eq!(chain.num_states(), 4);
        let mut visited = [false; 4];
        for _ in 0..500 {
            visited[chain.state()] = true;
            chain.next_gap(&mut rng);
        }
        assert!(visited.iter().all(|&v| v), "cycle must reach every state");
    }

    #[test]
    #[should_panic(expected = "row")]
    fn markov_rejects_non_stochastic_rows() {
        let _ = MarkovArrivals::new(
            vec![
                ("a", ArrivalProcess::Immediate),
                ("b", ArrivalProcess::Immediate),
            ],
            vec![vec![0.7, 0.7], vec![0.5, 0.5]],
        );
    }

    #[test]
    #[should_panic(expected = "nests a Markov chain")]
    fn markov_rejects_nested_chains() {
        let inner = MarkovArrivals::new(vec![("x", ArrivalProcess::Immediate)], vec![vec![1.0]]);
        let _ = MarkovArrivals::new(
            vec![("outer", ArrivalProcess::MarkovModulated(inner))],
            vec![vec![1.0]],
        );
    }

    #[test]
    fn markov_source_arrivals_are_monotone() {
        let spec = WorkloadSpec::default();
        let mut src = SyntheticSource::new(
            spec,
            4,
            200,
            ArrivalProcess::flash_crowd(10_000.0, 20.0, 30, 10),
            5,
        );
        let mut last = Duration::ZERO;
        while let Some(req) = src.next_request() {
            assert!(req.arrival > last, "arrivals strictly increase");
            last = req.arrival;
        }
    }

    // -- Multi-tenant sessions --------------------------------------------

    #[test]
    fn default_session_reports_one_default_tenant() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        session.ingest(&mut BatchSource::from_vecs(vec![vec![], vec![]]));
        let (_sys, report) = session.drain();
        assert_eq!(report.tenants.len(), 1);
        let t = &report.tenants[0];
        assert_eq!(t.name, "default");
        assert_eq!(t.submitted, 2);
        assert_eq!(t.completed, 2);
        assert!(report.to_json().contains("\"tenants\""));
    }

    #[test]
    fn tenant_accounting_is_split_and_conserved() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .tenants(vec![
                TenantSpec::new("budgeted").with_weight(3.0),
                TenantSpec::new("besteffort"),
            ])
            .build(system(2));
        let mut a = BatchSource::from_vecs(vec![vec![]; 5]);
        let mut b = BatchSource::from_vecs(vec![vec![]; 3]).for_tenant(1);
        let pulled = session.ingest_multi(&mut [&mut a, &mut b]);
        assert_eq!(pulled, 8);
        let (_sys, report) = session.drain();
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].submitted, 5);
        assert_eq!(report.tenants[0].completed, 5);
        assert_eq!(report.tenants[1].submitted, 3);
        assert_eq!(report.tenants[1].completed, 3);
        // Cross-tenant sums match the global counters exactly.
        let sub: u64 = report.tenants.iter().map(|t| t.submitted).sum();
        let comp: u64 = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(sub, report.submitted);
        assert_eq!(comp, report.completed);
        assert_eq!(report.tenants[0].latency.count, 5);
        assert_eq!(report.tenants[1].latency.count, 3);
    }

    #[test]
    fn tenant_quota_rejects_before_global_depth() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .workers(1)
            .admission(AdmissionPolicy {
                queue_depth: 100,
                reject_blown: false,
                shed_blown: false,
            })
            .tenants(vec![
                TenantSpec::new("quota").with_quota(0),
                TenantSpec::new("free"),
            ])
            .build(system(1));
        // Quota 0: every submit for tenant 0 bounces even though the
        // global queue has room.
        let got = session.submit(Request {
            id: 0,
            keys: vec![],
            arrival: Duration::ZERO,
            deadline: None,
            tenant: 0,
        });
        assert_eq!(got, Err(Rejection::QueueFull));
        session
            .submit(Request {
                id: 1,
                keys: vec![],
                arrival: Duration::ZERO,
                deadline: None,
                tenant: 1,
            })
            .expect("unquota'd tenant admitted");
        let (_sys, report) = session.drain();
        assert_eq!(report.tenants[0].rejected_queue_full, 1);
        assert_eq!(report.tenants[0].completed, 0);
        assert_eq!(report.tenants[1].completed, 1);
        assert_eq!(report.rejected_queue_full, 1);
    }

    #[test]
    fn weighted_fair_pop_divides_service_by_weight() {
        let tenants = vec![
            TenantSpec::new("heavy").with_weight(3.0),
            TenantSpec::new("light"),
        ];
        let mut queues = TenantQueues::new(2);
        for i in 0..8u64 {
            let admitted = Admitted {
                id: i,
                tenant: (i % 2) as usize,
                keys: vec![],
                arrival_at: Instant::now(),
                deadline_at: None,
            };
            queues.queues[admitted.tenant].push_back(admitted);
        }
        // First four pops at weights 3:1 serve heavy 3 times for every
        // light serve (ratios 0/3 < 1/1 until heavy has 3 served).
        let order: Vec<usize> = (0..4)
            .map(|_| queues.pop_fair(&tenants).unwrap().tenant)
            .collect();
        assert_eq!(order.iter().filter(|&&t| t == 0).count(), 3);
        assert_eq!(order.iter().filter(|&&t| t == 1).count(), 1);
        // Drains completely.
        let mut rest = 0;
        while queues.pop_fair(&tenants).is_some() {
            rest += 1;
        }
        assert_eq!(rest, 4);
        assert!(queues.pop_fair(&tenants).is_none());
        assert_eq!(queues.total_len(), 0);
    }

    #[test]
    fn per_tenant_sla_overrides_session_budget_in_report() {
        let tight = SlaBudget::new(Duration::from_nanos(1));
        let loose = SlaBudget::new(Duration::from_secs(3600));
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .admission(AdmissionPolicy::unbounded())
            .sla(loose)
            .tenants(vec![
                TenantSpec::new("tight").with_sla(tight),
                TenantSpec::new("inherit"),
            ])
            .build(system(1));
        let mut a = BatchSource::from_vecs(vec![vec![]; 4]);
        let mut b = BatchSource::from_vecs(vec![vec![]; 4]).for_tenant(1);
        session.ingest_multi(&mut [&mut a, &mut b]);
        let (_sys, report) = session.drain();
        let tight_sla = report.tenants[0].sla.expect("tenant SLA present");
        let inherit_sla = report.tenants[1].sla.expect("inherited SLA present");
        assert_eq!(tight_sla.budget, Duration::from_nanos(1));
        assert_eq!(inherit_sla.budget, Duration::from_secs(3600));
        assert_eq!(inherit_sla.met, 4, "an hour budget is always met");
        assert_eq!(tight_sla.met + tight_sla.missed, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tenant_panics_at_submit() {
        let session = SessionBuilder::new()
            .guidance(GuidanceMode::Inline)
            .build(system(1));
        let _ = session.submit(Request {
            id: 0,
            keys: vec![],
            arrival: Duration::ZERO,
            deadline: None,
            tenant: 5,
        });
    }
}
