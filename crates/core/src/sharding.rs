//! Sharded model-guided buffer management.
//!
//! The paper's deployment serves DLRM batches against one logical GPU
//! buffer. To scale the online path across CPU workers (the ROADMAP's
//! production target, and the direction RecShard / SDM take for the same
//! bottleneck), the buffer is partitioned into N independent *shards*, each
//! a full [`RecMgBuffer`] with its own pending-chunk state, keyed by a hash
//! of [`VectorKey`]. Because shards are disjoint (the router is a
//! partition), per-shard hit/miss accounting merges losslessly, and with a
//! single shard the system is byte-for-byte the sequential [`RecMgSystem`]
//! — the reference oracle the integration tests pin it against.
//!
//! Concurrency lives one layer up in [`crate::engine`]: this module's
//! [`ShardedRecMgSystem::process_batch`] is deterministic and synchronous
//! (inline guidance at every chunk boundary, exactly like
//! [`RecMgSystem`]), which is what makes the parity guarantee testable.
//!
//! [`RecMgSystem`]: crate::RecMgSystem

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use recmg_cache::{BufferAccess, GpuBuffer};
use recmg_dlrm::{BatchAccessStats, BufferManager};
use recmg_trace::VectorKey;

use crate::buffer_mgmt::RecMgBuffer;
use crate::builder::SystemBuilder;
use crate::caching_model::{CachingModel, FastCachingModel};
use crate::codec::FrequencyRankCodec;
use crate::config::RecMgConfig;
use crate::engine::GuidanceMode;
use crate::fast::FastScratch;
use crate::prefetch_model::{FastPrefetchModel, PrefetchModel};
use crate::system::RecMgSystem;
use crate::table_profile::{TableDecision, TableProfile, TableProfiler};
use crate::tier::{PlacementPolicy, ShardPlacement, TierTopology, TierUsage};

/// Maps embedding-vector keys onto shards.
///
/// The mapping is a pure function of the key plus the router's *pin
/// directory*: by default every key is multiplicatively hashed over the
/// packed `u64`, but a table pinned by a statistical placement
/// ([`crate::StatisticalPlacement`]) resolves by one direct table-id
/// lookup instead — no hash rounds at all, the RecShard fast path for
/// tiny tables. Routing is still a partition: every key has exactly one
/// home shard at any instant. Clones share the pin directory, so a pin
/// installed through any clone is visible to all of them.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    num_shards: usize,
    /// Pin directory, indexed by table id: the pinned home shard, or −1
    /// for hash-routed. Empty (the default) disables pinning entirely —
    /// `shard_of` then never even branches on the table id beyond one
    /// always-false length check.
    pins: Arc<[AtomicI64]>,
    /// Per-table hot/cold row boundaries installed alongside pins
    /// (0 = unsplit). Reporting only — routing ignores it; placement
    /// uses it to size fast-tier capacity and reports surface it.
    hot_rows: Arc<[AtomicU64]>,
}

impl ShardRouter {
    /// Creates a router over `num_shards` shards (pinning disabled).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        Self::with_pin_capacity(num_shards, 0)
    }

    /// Creates a router with a pin directory covering table ids
    /// `0..pin_capacity` (0 disables pinning).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn with_pin_capacity(num_shards: usize, pin_capacity: usize) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        ShardRouter {
            num_shards,
            pins: (0..pin_capacity).map(|_| AtomicI64::new(-1)).collect(),
            hot_rows: (0..pin_capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Table-id capacity of the pin directory (0 = pinning disabled).
    pub fn pin_capacity(&self) -> usize {
        self.pins.len()
    }

    /// Pins every key of `table` to `shard` (direct-lookup routing).
    ///
    /// # Panics
    ///
    /// Panics if `table` is outside the pin directory or `shard` is out
    /// of range.
    pub fn pin_table(&self, table: u32, shard: usize) {
        assert!(
            (table as usize) < self.pins.len(),
            "table outside the pin directory"
        );
        assert!(shard < self.num_shards, "shard out of range");
        self.pins[table as usize].store(shard as i64, Ordering::Relaxed);
    }

    /// The shard `table` is pinned to, if any.
    pub fn pinned_shard(&self, table: u32) -> Option<usize> {
        let slot = self.pins.get(table as usize)?;
        let p = slot.load(Ordering::Relaxed);
        (p >= 0).then_some(p as usize)
    }

    /// Clears every pin and hot-row mark (back to pure hash routing).
    pub fn clear_pins(&self) {
        for slot in self.pins.iter() {
            slot.store(-1, Ordering::Relaxed);
        }
        for slot in self.hot_rows.iter() {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Records `table`'s hot/cold row boundary (0 = unsplit). No routing
    /// effect; out-of-directory tables are ignored.
    pub fn set_hot_rows(&self, table: u32, rows: u64) {
        if let Some(slot) = self.hot_rows.get(table as usize) {
            slot.store(rows, Ordering::Relaxed);
        }
    }

    /// The recorded hot/cold boundary of `table` (0 = unsplit/unknown).
    pub fn hot_rows(&self, table: u32) -> u64 {
        self.hot_rows
            .get(table as usize)
            .map_or(0, |s| s.load(Ordering::Relaxed))
    }

    /// Installs a placement's table decisions atomically enough for the
    /// demand path (per-slot atomics; a request split mid-install may mix
    /// old and new homes for *different* tables, never for one key).
    /// Returns whether any slot changed. Decisions for tables outside the
    /// directory are ignored.
    pub(crate) fn install(&self, decisions: &[TableDecision]) -> bool {
        let mut changed = false;
        // Reset-and-apply: a table pinned by the previous placement but
        // absent from this one reverts to hash routing.
        let mut new_pins: Vec<i64> = vec![-1; self.pins.len()];
        let mut new_hot: Vec<u64> = vec![0; self.hot_rows.len()];
        for d in decisions {
            let t = d.table as usize;
            if t >= new_pins.len() {
                continue;
            }
            if let Some(shard) = d.pinned_shard {
                assert!(shard < self.num_shards, "pin decision shard out of range");
                new_pins[t] = shard as i64;
            }
            new_hot[t] = d.hot_rows;
        }
        for (slot, pin) in self.pins.iter().zip(&new_pins) {
            changed |= slot.swap(*pin, Ordering::Relaxed) != *pin;
        }
        for (slot, hot) in self.hot_rows.iter().zip(&new_hot) {
            changed |= slot.swap(*hot, Ordering::Relaxed) != *hot;
        }
        changed
    }

    /// The home shard of `key`.
    pub fn shard_of(&self, key: VectorKey) -> usize {
        if self.num_shards == 1 {
            return 0;
        }
        // Pinned-table fast path: one bounds check + one relaxed load
        // instead of the two multiply-fold rounds below. The check lives
        // *here*, not in a caller, so every routing consumer — request
        // splitting, the guidance plane's prediction filter, parity
        // tests — sees the same partition.
        let t = key.table().0 as usize;
        if t < self.pins.len() {
            let p = self.pins[t].load(Ordering::Relaxed);
            if p >= 0 {
                return p as usize;
            }
        }
        self.hash_shard_of(key)
    }

    /// The hash half of [`ShardRouter::shard_of`], ignoring pins — what
    /// routing resolves to for every unpinned table (and the reference
    /// the pinned-bypass parity test compares against).
    pub fn hash_shard_of(&self, key: VectorKey) -> usize {
        if self.num_shards == 1 {
            return 0;
        }
        // Fibonacci-style multiplicative hash with a two-round
        // fold-multiply finalizer (splitmix64-style). A single
        // `h ^ (h >> 32)` fold is not enough here: the table id lives in
        // bits 48–63 of the packed key, so after one multiply it only
        // influences bits ≥ 48, the fold moves those to bits ≥ 16, and a
        // power-of-two `num_shards` (which reads the low bits) would
        // ignore the table entirely — every same-row key of every table
        // piled onto one shard. The second multiply spreads the folded
        // high bits across the whole word.
        let mut h = key.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 32;
        (h % self.num_shards as u64) as usize
    }

    /// Splits a batch into per-shard key sequences, preserving the relative
    /// order of keys within each shard. Allocates a fresh `Vec<Vec<_>>`
    /// per call — hot paths should hold a scratch vector and use
    /// [`ShardRouter::split_into`] instead.
    pub fn split(&self, batch: &[VectorKey]) -> Vec<Vec<VectorKey>> {
        let mut parts = Vec::new();
        self.split_into(batch, &mut parts);
        parts
    }

    /// Allocation-reusing [`ShardRouter::split`]: clears and refills
    /// `parts` (resizing it to the shard count), so a caller that serves
    /// many batches re-uses the per-shard vectors' capacity instead of
    /// allocating `1 + num_shards` vectors per call — the serving
    /// session's per-request path.
    pub fn split_into(&self, batch: &[VectorKey], parts: &mut Vec<Vec<VectorKey>>) {
        parts.resize_with(self.num_shards, Vec::new);
        for part in parts.iter_mut() {
            part.clear();
        }
        if self.num_shards == 1 {
            parts[0].extend_from_slice(batch);
            return;
        }
        for &key in batch {
            parts[self.shard_of(key)].push(key);
        }
    }
}

/// Immutable guidance context shared by every shard (and, in background
/// mode, by the guidance plane's threads): the compiled models, the codec,
/// and the serving knobs.
#[derive(Debug, Clone)]
pub(crate) struct GuidanceCtx {
    pub(crate) cfg: RecMgConfig,
    pub(crate) caching: Arc<FastCachingModel>,
    pub(crate) prefetch: Option<Arc<FastPrefetchModel>>,
    pub(crate) codec: Arc<FrequencyRankCodec>,
    pub(crate) guidance_stride: usize,
    pub(crate) prefetch_gate: f64,
    /// Per-shard prefetch warmup threshold:
    /// [`RecMgSystem::PREFETCH_WARMUP`] divided by the shard count. Each
    /// shard only issues the (shard-filtered) ~1/N share of predictions,
    /// so holding every shard to the global constant would keep the whole
    /// system in always-armed warmup ~N× longer than the sequential
    /// system — and the guidance plane paying the prefetch model on every
    /// chunk for the duration.
    pub(crate) prefetch_warmup: u64,
    /// The memory hierarchy the shards are placed onto.
    pub(crate) topology: Arc<TierTopology>,
    /// The placement policy that sized/routed the shards — kept so
    /// [`ShardedRecMgSystem::rebalance`] can re-apply it against live
    /// per-shard stats.
    pub(crate) placement: Arc<dyn PlacementPolicy>,
    /// Default guidance scheduling for sessions over this system.
    pub(crate) guidance_default: GuidanceMode,
    /// Bind-time calibration results of the topology's probed tiers
    /// (empty when nothing was marked calibrated).
    pub(crate) calibration: Arc<crate::backend::CalibrationReport>,
    /// How demand misses reach slow storage (blocking read-through or the
    /// async fill plane).
    pub(crate) fill_mode: crate::backend::FillMode,
    /// The shared miss queue of an async-fill system (`None` in blocking
    /// mode). Sessions spawn the fill threads that drain it.
    pub(crate) fill_queue: Option<Arc<crate::backend::FillQueue>>,
}

impl GuidanceCtx {
    /// The kernel-lane label reported by sessions over this context:
    /// the runtime-dispatched lane name plus an `+int8` suffix when the
    /// compiled models are quantized (`scalar`, `avx2`, `scalar+int8`,
    /// `avx2+int8`).
    pub(crate) fn kernel_label(&self) -> &'static str {
        use crate::fast::{active_lane, KernelLane};
        match (active_lane(), self.caching.is_quantized()) {
            (KernelLane::Scalar, false) => "scalar",
            (KernelLane::Scalar, true) => "scalar+int8",
            (KernelLane::Avx2, false) => "avx2",
            (KernelLane::Avx2, true) => "avx2+int8",
        }
    }
}

/// Guidance computed for one chunk: the caching model's keep bits plus the
/// shard-filtered prefetch predictions.
pub(crate) type ChunkGuidance = (Vec<bool>, Vec<VectorKey>);

/// One shard: an independent RecMG buffer plus the per-stream state the
/// sequential system keeps ([`RecMgSystem`]'s pending chunk, chunk counter,
/// and prefetch-gate counters), replicated per shard so shards never share
/// mutable state.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) id: usize,
    /// Index of the memory tier currently backing this shard's buffer.
    pub(crate) tier: usize,
    pub(crate) buffer: RecMgBuffer,
    pub(crate) pending: Vec<VectorKey>,
    pub(crate) chunk_counter: usize,
    pub(crate) prefetches_issued: u64,
    pub(crate) prefetch_hits_seen: u64,
    /// Chunks that received model guidance.
    pub(crate) guided_chunks: u64,
    /// Chunks skipped by the stride (inline) or the lagging guidance plane
    /// (background) — they ran with stale guidance, the paper's §VI-C case.
    pub(crate) unguided_chunks: u64,
    /// Reused model-forward buffers for this shard's inline guidance, so
    /// the inline hot path allocates nothing per chunk (the background
    /// plane holds its own per-thread scratch).
    scratch: FastScratch,
    /// Fast-tier replica of this shard's read-hot keys, installed by a
    /// live session's [`ReplicationPolicy`](crate::ReplicationPolicy).
    /// Lives under the same mutex as the shard, so replica bookkeeping is
    /// exact with respect to the demand stream; stripped (and its
    /// counters folded into the replication report) at session drain.
    pub(crate) replica: Option<crate::migrate::ReplicaState>,
    /// Per-table demand profiler, installed by the builder when the
    /// placement policy asks for table profiles
    /// ([`PlacementPolicy::table_capacity`] > 0). Observes every demand
    /// access under the shard's existing synchronization; merged across
    /// shards at rebalance/report time.
    pub(crate) profiler: Option<TableProfiler>,
}

impl Shard {
    /// A shard whose buffer lives in the placement's assigned tier,
    /// accounting under that tier's cost model, with the system's
    /// working-set sketch shape.
    pub(crate) fn placed(
        id: usize,
        eviction_speed: u64,
        placement: &ShardPlacement,
        topology: &TierTopology,
        sketch: crate::config::SketchConfig,
    ) -> Self {
        let tier = topology.tier(placement.tier);
        Shard {
            id,
            tier: placement.tier,
            buffer: RecMgBuffer::with_backend_spec(
                placement.capacity.max(1),
                eviction_speed,
                tier.cost,
                sketch,
                tier.backend,
            ),
            pending: Vec::new(),
            chunk_counter: 0,
            prefetches_issued: 0,
            prefetch_hits_seen: 0,
            guided_chunks: 0,
            unguided_chunks: 0,
            scratch: FastScratch::default(),
            replica: None,
            profiler: None,
        }
    }

    /// Applies a new placement in place: re-sizes the buffer (shrinking
    /// evicts coldest entries first) and/or moves it to another tier
    /// (charging the migration of the resident working set to the
    /// destination tier's cost). Returns whether anything changed.
    pub(crate) fn apply_placement(
        &mut self,
        placement: &ShardPlacement,
        topology: &TierTopology,
    ) -> bool {
        let mut changed = false;
        let capacity = placement.capacity.max(1);
        if capacity != self.buffer.capacity() {
            self.buffer.resize(capacity);
            changed = true;
        }
        if placement.tier != self.tier {
            let tier = topology.tier(placement.tier);
            self.buffer.charge_migration(tier.cost);
            self.buffer.set_cost(tier.cost);
            // The row bytes move too: rebuild the store on the
            // destination tier's storage backend.
            self.buffer.rebind_backend(tier.backend);
            self.tier = placement.tier;
            changed = true;
        }
        changed
    }

    /// Installs the RecShard pin set for this shard's buffer: vectors of
    /// these tables are exempt from victim selection, so a pinned table's
    /// whole footprint stays resident under miss churn (an empty slice
    /// clears the set).
    pub(crate) fn set_pinned_tables(&mut self, tables: &[u32]) {
        self.buffer.set_pinned_tables(tables);
    }

    /// Demand access bookkeeping shared by the inline and background paths.
    ///
    /// When a fast-tier replica is installed, a hit on a fresh
    /// replica-resident key is re-priced at the replica tier's cost
    /// (counts stay canonical on the home shard — replication never
    /// changes hit/miss totals), other hits are offered to the replica's
    /// two-touch admission (the second fresh hit copies the key in and
    /// charges the fill), and a miss write-invalidates the replica entry.
    pub(crate) fn record_access(&mut self, key: VectorKey, stats: &mut BatchAccessStats) {
        if let Some(profiler) = self.profiler.as_mut() {
            profiler.observe(key);
        }
        let outcome = self.buffer.access(key);
        match outcome {
            BufferAccess::CacheHit => stats.cache_hits += 1,
            BufferAccess::PrefetchHit => {
                stats.prefetch_hits += 1;
                self.prefetch_hits_seen += 1;
            }
            BufferAccess::Miss => stats.misses += 1,
        }
        if let Some(replica) = self.replica.as_mut() {
            if outcome == BufferAccess::Miss {
                replica.invalidate(key);
            } else if replica.probe(key) {
                let saved = self.buffer.refund_hit(replica.hit_ns());
                replica.hits += 1;
                replica.saved_cost_ns += saved;
            } else if replica.offer(key) {
                self.buffer.charge_cost_ns(replica.fill_ns());
            }
        }
    }

    /// Mirror of [`RecMgSystem`]'s `prefetch_armed`, evaluated against this
    /// shard's own counters (warmup scaled to the shard's share of the
    /// prediction stream — see [`GuidanceCtx::prefetch_warmup`]).
    pub(crate) fn prefetch_armed(&self, ctx: &GuidanceCtx) -> bool {
        if self.prefetches_issued < ctx.prefetch_warmup {
            return true;
        }
        let ratio = self.prefetch_hits_seen as f64 / self.prefetches_issued as f64;
        ratio >= ctx.prefetch_gate
            || self
                .chunk_counter
                .is_multiple_of(RecMgSystem::PREFETCH_PROBE_PERIOD)
    }

    /// Computes guidance for `chunk` (caching bits + prefetch predictions,
    /// with predictions filtered to this shard's key space so the partition
    /// invariant holds) — the CPU-side model work, over a caller-held
    /// scratch so the inline hot path allocates nothing per chunk.
    pub(crate) fn compute_guidance(
        chunk: &[VectorKey],
        armed: bool,
        shard_id: usize,
        ctx: &GuidanceCtx,
        router: &ShardRouter,
        scratch: &mut FastScratch,
    ) -> ChunkGuidance {
        let mut out =
            Self::compute_guidance_batch(&[(chunk, armed, shard_id)], ctx, router, scratch).0;
        out.pop().expect("one chunk in, one guidance out")
    }

    /// Batched counterpart of [`Shard::compute_guidance`]: computes
    /// caching bits for every chunk and prefetch predictions for the armed
    /// ones with *one* batched forward per model instead of one per chunk,
    /// amortizing weight traffic across shards. Entries are
    /// `(chunk, armed, home shard)`; predictions are filtered to each
    /// chunk's home shard. Returns per-chunk `(bits, prefetched)` in input
    /// order plus the number of model forwards run (for plane accounting).
    ///
    /// Per chunk the results are identical to [`Shard::compute_guidance`]:
    /// the batched kernels are lane-independent ([`crate::fast`]).
    pub(crate) fn compute_guidance_batch(
        batch: &[(&[VectorKey], bool, usize)],
        ctx: &GuidanceCtx,
        router: &ShardRouter,
        scratch: &mut FastScratch,
    ) -> (Vec<ChunkGuidance>, u64) {
        let chunks: Vec<&[VectorKey]> = batch.iter().map(|&(c, _, _)| c).collect();
        let bits = ctx.caching.predict_batch_with(&chunks, scratch);
        let mut forwards = 1u64;
        let mut prefetched: Vec<Vec<VectorKey>> = vec![Vec::new(); batch.len()];
        if let Some(pm) = &ctx.prefetch {
            let armed_idx: Vec<usize> = batch
                .iter()
                .enumerate()
                .filter(|&(_, &(_, armed, _))| armed)
                .map(|(i, _)| i)
                .collect();
            if !armed_idx.is_empty() {
                let armed_chunks: Vec<&[VectorKey]> =
                    armed_idx.iter().map(|&i| batch[i].0).collect();
                let preds = pm.predict_batch_with(&armed_chunks, ctx.codec.as_ref(), scratch);
                forwards += 1;
                for (&i, pred) in armed_idx.iter().zip(preds) {
                    let home = batch[i].2;
                    prefetched[i] = pred
                        .into_iter()
                        .filter(|&k| router.shard_of(k) == home)
                        .collect();
                }
            }
        }
        (bits.into_iter().zip(prefetched).collect(), forwards)
    }

    /// Applies computed guidance to the buffer — the GPU-side update.
    pub(crate) fn apply_guidance(
        &mut self,
        chunk: &[VectorKey],
        bits: &[bool],
        prefetched: &[VectorKey],
    ) {
        self.prefetches_issued += prefetched.len() as u64;
        self.buffer.load_embeddings(chunk, bits, prefetched);
        self.guided_chunks += 1;
    }

    /// Inline guidance at every completed chunk — the exact control flow of
    /// [`RecMgSystem::process_batch`], applied to this shard's sub-stream.
    pub(crate) fn run_guidance_inline(&mut self, ctx: &GuidanceCtx, router: &ShardRouter) {
        while self.pending.len() >= ctx.cfg.input_len {
            let chunk: Vec<VectorKey> = self.pending.drain(..ctx.cfg.input_len).collect();
            self.chunk_counter += 1;
            if !(self.chunk_counter - 1).is_multiple_of(ctx.guidance_stride) {
                self.unguided_chunks += 1;
                continue;
            }
            let armed = self.prefetch_armed(ctx);
            let sid = self.id;
            let (bits, prefetched) =
                Self::compute_guidance(&chunk, armed, sid, ctx, router, &mut self.scratch);
            self.apply_guidance(&chunk, &bits, &prefetched);
        }
    }

    /// Serves a sub-stream of keys with *no* fresh guidance: chunks are
    /// still formed and counted, but run on stale buffer priorities — the
    /// §VI-C skip-ahead applied deliberately, which is how an SLA-pressured
    /// session degrades a request ([`crate::config::DegradeLevel`]).
    pub(crate) fn process_keys_unguided(
        &mut self,
        keys: &[VectorKey],
        input_len: usize,
        stats: &mut BatchAccessStats,
    ) {
        for &key in keys {
            self.record_access(key, stats);
            self.pending.push(key);
            while self.pending.len() >= input_len {
                self.pending.drain(..input_len);
                self.chunk_counter += 1;
                self.unguided_chunks += 1;
            }
        }
    }

    /// Serves a sub-stream of keys with inline (synchronous) guidance.
    pub(crate) fn process_keys(
        &mut self,
        keys: &[VectorKey],
        ctx: &GuidanceCtx,
        router: &ShardRouter,
    ) -> BatchAccessStats {
        let mut stats = BatchAccessStats::default();
        for &key in keys {
            self.record_access(key, &mut stats);
            self.pending.push(key);
            if self.pending.len() >= ctx.cfg.input_len {
                self.run_guidance_inline(ctx, router);
            }
        }
        stats
    }
}

/// The sharded online RecMG system: N disjoint model-guided buffers.
///
/// With `num_shards == 1` this is behaviourally identical to
/// [`RecMgSystem`] (same hit/miss/prefetch counts on any access stream);
/// with more shards, the total buffer capacity is divided across shards and
/// each shard serves only its home keys. [`crate::engine`] drives the
/// shards from concurrent worker threads.
#[derive(Debug)]
pub struct ShardedRecMgSystem {
    pub(crate) ctx: GuidanceCtx,
    pub(crate) router: ShardRouter,
    pub(crate) shards: Vec<Shard>,
}

impl ShardedRecMgSystem {
    /// Starts a [`SystemBuilder`] over the given model parts — the
    /// construction API: explicit shards, [`TierTopology`], placement
    /// policy, and default guidance. Pass `prefetch: None` for the
    /// caching-model-only configuration.
    pub fn builder<'a>(
        caching: &'a CachingModel,
        prefetch: Option<&'a PrefetchModel>,
        codec: FrequencyRankCodec,
    ) -> SystemBuilder<'a> {
        SystemBuilder::new(caching, prefetch, codec)
    }

    /// The memory hierarchy the shards are placed onto.
    pub fn topology(&self) -> &TierTopology {
        &self.ctx.topology
    }

    /// The tier index backing shard `i`'s buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_tier(&self, i: usize) -> usize {
        self.shards[i].tier
    }

    /// Name of the placement policy that sized/routed the shards.
    pub fn placement_name(&self) -> &'static str {
        self.ctx.placement.name()
    }

    /// Default guidance scheduling configured at build time (sessions
    /// without an explicit mode inherit it).
    pub fn default_guidance(&self) -> GuidanceMode {
        self.ctx.guidance_default
    }

    /// Bind-time calibration results of the topology's probed tiers
    /// (empty when no tier was marked
    /// [`MemoryTier::calibrated`](crate::MemoryTier::calibrated)).
    pub fn calibration_report(&self) -> &crate::backend::CalibrationReport {
        &self.ctx.calibration
    }

    /// How demand misses reach slow storage (set at build via
    /// [`SystemBuilder::fill_mode`](crate::SystemBuilder::fill_mode)).
    pub fn fill_mode(&self) -> crate::backend::FillMode {
        self.ctx.fill_mode
    }

    /// Cumulative async-fill-plane counters (all zero in blocking mode).
    /// Reports snapshot-and-delta this per run.
    pub fn fill_report(&self) -> crate::backend::FillPlaneReport {
        self.ctx
            .fill_queue
            .as_ref()
            .map(|q| q.report())
            .unwrap_or_default()
    }

    /// Synchronously drains the async fill queue, promoting every queued
    /// key into its shard (the in-session equivalent runs on background
    /// fill threads). Returns the number of fills that landed. A no-op
    /// (0) in blocking mode — and for batch callers between sessions,
    /// since a drained session already fenced the queue.
    pub fn drain_fills(&mut self) -> u64 {
        let Some(queue) = self.ctx.fill_queue.clone() else {
            return 0;
        };
        let mut landed = 0;
        while let Some((sid, key, fill_ns)) = queue.pop_now() {
            if self.shards[sid].buffer.promote_fill(key, fill_ns) {
                queue.note_promoted();
                landed += 1;
            }
        }
        landed
    }

    /// Cumulative tier traffic of shard `i`'s buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_traffic(&self, i: usize) -> crate::buffer_mgmt::TierTraffic {
        self.shards[i].buffer.traffic()
    }

    /// Cumulative tier traffic of every shard buffer, in shard order —
    /// the stat vector the [`crate::Rebalancer`] snapshots and deltas.
    pub fn shard_traffics(&self) -> Vec<crate::buffer_mgmt::TierTraffic> {
        self.shards.iter().map(|s| s.buffer.traffic()).collect()
    }

    /// Point-in-time working-set statistics of shard `i`'s demand stream
    /// (sketched unique keys, last epoch footprint, phase score).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_working_set(&self, i: usize) -> crate::sketch::WorkingSetStats {
        self.shards[i].buffer.working_set()
    }

    /// Cumulative demand accesses of every shard buffer, in shard order —
    /// raw counters only (no sketch work), cheap enough to poll on every
    /// batch.
    pub fn shard_demands(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.buffer.demand_count())
            .collect()
    }

    /// Cached per-shard phase scores, in shard order — `O(shards)`, no
    /// sketch merges; the vector the phase trigger scans on every check.
    pub fn shard_phase_scores(&self) -> Vec<f64> {
        self.shards.iter().map(|s| s.buffer.phase_score()).collect()
    }

    /// The largest phase score across shards — the "did any shard's
    /// working set just flip?" signal the phase-reactive
    /// [`crate::Rebalancer`] trigger reads.
    pub fn max_phase_score(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.buffer.phase_score())
            .fold(0.0, f64::max)
    }

    /// Sketched unique-key footprint summed across shards (lossless: the
    /// router is a partition, so shard footprints are disjoint).
    pub fn unique_keys(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.buffer.working_set().unique_keys)
            .sum()
    }

    /// Cumulative demand accesses (hits + misses) observed across all
    /// shard buffers — the mass signal rebalancing runs on. Raw counters
    /// only: polling this never pays for sketch estimation.
    pub fn demand_accesses(&self) -> u64 {
        self.shards.iter().map(|s| s.buffer.demand_count()).sum()
    }

    /// Per-tier occupancy and cumulative traffic: which shards live
    /// where, how full each tier is, and what its traffic cost under the
    /// tier's cost model. Reports subtract snapshots of this to show
    /// per-run deltas.
    pub fn tier_usage(&self) -> Vec<TierUsage> {
        let mut usages: Vec<TierUsage> = self
            .ctx
            .topology
            .tiers()
            .iter()
            .map(|t| TierUsage {
                name: t.name.clone(),
                shards: 0,
                capacity: 0,
                resident: 0,
                traffic: Default::default(),
            })
            .collect();
        for shard in &self.shards {
            let u = &mut usages[shard.tier];
            u.shards += 1;
            u.capacity += shard.buffer.capacity();
            u.resident += shard.buffer.len();
            u.traffic.accumulate(shard.buffer.traffic());
        }
        usages
    }

    /// Re-places every shard by running the system's placement policy
    /// against the observed *cumulative* per-shard demand mass — see
    /// [`ShardedRecMgSystem::rebalance_from`] for the stat-vector form the
    /// [`crate::Rebalancer`] uses to feed epoch deltas instead. Returns
    /// whether anything moved. Call between serves/drains — the system
    /// must be quiescent.
    pub fn rebalance(&mut self) -> bool {
        let stats = self.shard_traffics();
        self.rebalance_from(&stats)
    }

    /// Re-places every shard by running the system's placement policy
    /// against a caller-supplied per-shard stat vector (typically the
    /// traffic observed since the last rebalance, so placement tracks the
    /// current phase instead of cumulative history), re-sizing buffers in
    /// place (shrinking evicts coldest entries; tier moves charge the
    /// migration to the destination tier). Returns whether anything
    /// moved. Call between serves/drains — the system must be quiescent.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not hold one entry per shard.
    pub fn rebalance_from(&mut self, stats: &[crate::buffer_mgmt::TierTraffic]) -> bool {
        assert_eq!(
            stats.len(),
            self.shards.len(),
            "need one stat entry per shard"
        );
        let tables = self.table_profiles();
        let placement = self.ctx.placement.place_with_tables(
            self.shards.len(),
            &self.ctx.topology,
            stats,
            &tables,
        );
        assert_eq!(
            placement.placements.len(),
            self.shards.len(),
            "placement policy must return one placement per shard"
        );
        // Publish routing decisions before shrinking any buffer, so a key
        // re-homed by a new pin stops landing on (and refilling) the shard
        // that is about to lose capacity. Copies stranded under the old
        // routing simply go cold and evict. Buffer pin sets install in the
        // same step (before any shrink) so a resize never displaces a
        // freshly pinned footprint.
        let mut changed = self.router.install(&placement.tables);
        let pins =
            crate::table_profile::pinned_tables_per_shard(&placement.tables, self.shards.len());
        for ((shard, shard_placement), shard_pins) in
            self.shards.iter_mut().zip(&placement.placements).zip(&pins)
        {
            shard.set_pinned_tables(shard_pins);
            changed |= shard.apply_placement(shard_placement, &self.ctx.topology);
        }
        changed
    }

    /// Merged per-table demand profiles across shards, sorted by table id
    /// — empty unless the placement policy enabled profiling
    /// ([`PlacementPolicy::table_capacity`] > 0).
    pub fn table_profiles(&self) -> Vec<TableProfile> {
        TableProfiler::merge(self.shards.iter().filter_map(|s| s.profiler.as_ref()))
    }

    /// Per-table report rows: each merged profile joined with the routing
    /// decision currently installed for it in the router's pin directory
    /// — what [`crate::EngineReport`] serializes.
    pub fn table_report(&self) -> Vec<crate::table_profile::TableReport> {
        self.table_profiles()
            .into_iter()
            .map(|p| {
                let pinned = self.router.pinned_shard(p.table);
                let hot = self.router.hot_rows(p.table);
                crate::table_profile::TableReport {
                    profile: p,
                    pinned_shard: pinned,
                    hot_rows: hot,
                }
            })
            .collect()
    }

    /// The shard router (a handle — clones share the pin directory).
    pub fn router(&self) -> ShardRouter {
        self.router.clone()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// Whether the prefetch model is active.
    pub fn has_prefetch(&self) -> bool {
        self.ctx.prefetch.is_some()
    }

    /// Whether the compiled guidance models carry int8-quantized weights
    /// (built with [`GuidancePrecision::Int8`](crate::GuidancePrecision)).
    pub fn guidance_models_quantized(&self) -> bool {
        self.ctx.caching.is_quantized()
    }

    /// The kernel lane label sessions over this system will report:
    /// the runtime-dispatched SIMD lane plus a `+int8` suffix when the
    /// guidance models are quantized.
    pub fn kernel_label(&self) -> &'static str {
        self.ctx.kernel_label()
    }

    /// Runs inline guidance only on every `stride`-th chunk per shard
    /// (mirrors [`RecMgSystem::set_guidance_stride`]).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn set_guidance_stride(&mut self, stride: usize) {
        assert!(stride > 0, "stride must be positive");
        self.ctx.guidance_stride = stride;
    }

    /// Sets the prefetch usefulness gate (mirrors
    /// [`RecMgSystem::set_prefetch_gate`]).
    ///
    /// # Panics
    ///
    /// Panics if `min_accuracy` is not in `[0, 1]`.
    pub fn set_prefetch_gate(&mut self, min_accuracy: f64) {
        assert!(
            (0.0..=1.0).contains(&min_accuracy),
            "gate must be in [0, 1]"
        );
        self.ctx.prefetch_gate = min_accuracy;
    }

    /// Read access to shard `i`'s buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_buffer(&self, i: usize) -> &GpuBuffer {
        self.shards[i].buffer.buffer()
    }

    /// Read access to shard `i`'s full tier-aware buffer (row storage,
    /// backend spec, traffic counters).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_recmg_buffer(&self, i: usize) -> &RecMgBuffer {
        &self.shards[i].buffer
    }

    /// Total resident vectors across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.buffer.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.buffer.is_empty())
    }

    /// Total capacity across shards (≥ the constructor capacity because of
    /// even splitting).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.buffer.capacity()).sum()
    }

    /// Prefetches issued across shards.
    pub fn prefetches_issued(&self) -> u64 {
        self.shards.iter().map(|s| s.prefetches_issued).sum()
    }

    /// Chunks that received model guidance, across shards.
    pub fn guided_chunks(&self) -> u64 {
        self.shards.iter().map(|s| s.guided_chunks).sum()
    }

    /// Chunks that ran on stale guidance (stride-skipped inline, or
    /// skipped by a lagging guidance plane), across shards. Background
    /// guidance still in flight at session teardown is computed and
    /// applied during drain (counted guided, reported as plane lag), so
    /// after a drained session `guided + unguided == total`.
    pub fn unguided_chunks(&self) -> u64 {
        self.shards.iter().map(|s| s.unguided_chunks).sum()
    }

    /// Chunks formed so far, across shards.
    pub fn total_chunks(&self) -> u64 {
        self.shards.iter().map(|s| s.chunk_counter as u64).sum()
    }

    /// Fraction of chunks that ran with fresh model guidance
    /// ([`recmg_dlrm::PipelineReport`] semantics).
    pub fn guided_fraction(&self) -> f64 {
        let total = self.total_chunks();
        if total == 0 {
            0.0
        } else {
            self.guided_chunks() as f64 / total as f64
        }
    }

    /// Processes one batch with shard-level parallelism (one scoped thread
    /// per non-empty shard). Hit/miss totals are identical to
    /// [`ShardedRecMgSystem::process_batch`]; only wall-clock differs.
    pub fn process_batch_parallel(&mut self, batch: &[VectorKey]) -> BatchAccessStats {
        assert_eq!(
            self.shards.len(),
            self.router.num_shards(),
            "shard count must match the router (was a serving session abandoned mid-panic?)"
        );
        if self.router.num_shards() == 1 {
            return self.process_batch(batch);
        }
        let parts = self.router.split(batch);
        let ctx = &self.ctx;
        let router = &self.router;
        let mut stats = BatchAccessStats::default();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, keys) in self.shards.iter_mut().zip(&parts) {
                if keys.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || shard.process_keys(keys, ctx, router)));
            }
            for h in handles {
                stats.accumulate(h.join().expect("shard worker does not panic"));
            }
        });
        stats
    }
}

impl BufferManager for ShardedRecMgSystem {
    fn name(&self) -> String {
        let base = if self.has_prefetch() { "RecMG" } else { "CM" };
        if self.num_shards() == 1 {
            base.to_string()
        } else {
            format!("{base}x{}", self.num_shards())
        }
    }

    fn process_batch(&mut self, batch: &[VectorKey]) -> BatchAccessStats {
        // A system whose shards were moved into a session that panicked
        // mid-serve has no shards; zipping against the empty vec would
        // silently drop every key, so fail loudly instead.
        assert_eq!(
            self.shards.len(),
            self.router.num_shards(),
            "shard count must match the router (was a serving session abandoned mid-panic?)"
        );
        // Deterministic sequential path: shards are disjoint, so serving
        // them one after another produces the same counts as any
        // interleaving that preserves per-shard order.
        if self.router.num_shards() == 1 {
            return self.shards[0].process_keys(batch, &self.ctx, &self.router);
        }
        let parts = self.router.split(batch);
        let mut stats = BatchAccessStats::default();
        for (shard, keys) in self.shards.iter_mut().zip(&parts) {
            if !keys.is_empty() {
                stats.accumulate(shard.process_keys(keys, &self.ctx, &self.router));
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, SyntheticConfig, TableId};

    fn key(t: u32, r: u64) -> VectorKey {
        VectorKey::new(TableId(t), RowId(r))
    }

    fn untrained_system(num_shards: usize, capacity: usize) -> ShardedRecMgSystem {
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let prefetch = PrefetchModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(&[key(0, 1), key(0, 2), key(1, 3)]);
        ShardedRecMgSystem::builder(&caching, Some(&prefetch), codec)
            .shards(num_shards)
            .capacity(capacity)
            .build()
    }

    #[test]
    fn router_is_a_partition() {
        let router = ShardRouter::new(4);
        for t in 0..8u32 {
            for r in 0..64u64 {
                let s = router.shard_of(key(t, r));
                assert!(s < 4);
                // Routing is a pure function.
                assert_eq!(s, router.shard_of(key(t, r)));
            }
        }
    }

    #[test]
    fn unpinned_routing_is_hash_routing_exactly() {
        // Parity: a router with a pin directory but nothing pinned must
        // route every key exactly like the plain hash router — the fast
        // path is a bypass, not a different partition.
        let plain = ShardRouter::new(8);
        let pinnable = ShardRouter::with_pin_capacity(8, 64);
        for t in 0..128u32 {
            for r in 0..256u64 {
                let k = key(t, r);
                assert_eq!(plain.shard_of(k), pinnable.shard_of(k));
                assert_eq!(pinnable.shard_of(k), pinnable.hash_shard_of(k));
            }
        }
    }

    #[test]
    fn pins_override_hash_and_preserve_the_partition() {
        let router = ShardRouter::with_pin_capacity(4, 8);
        router.pin_table(2, 3);
        router.pin_table(5, 0);
        assert_eq!(router.pinned_shard(2), Some(3));
        assert_eq!(router.pinned_shard(5), Some(0));
        assert_eq!(router.pinned_shard(0), None);
        // Out-of-directory tables have no pin slot and hash-route.
        assert_eq!(router.pinned_shard(100), None);
        for r in 0..512u64 {
            // Every key of a pinned table lands on the pinned shard...
            assert_eq!(router.shard_of(key(2, r)), 3);
            assert_eq!(router.shard_of(key(5, r)), 0);
            // ...while unpinned tables keep their hash homes.
            assert_eq!(router.shard_of(key(0, r)), router.hash_shard_of(key(0, r)));
            assert_eq!(
                router.shard_of(key(100, r)),
                router.hash_shard_of(key(100, r))
            );
        }
        // split() still places each key on exactly its shard_of home.
        let batch: Vec<VectorKey> = (0..400).map(|i| key(i % 7, i as u64)).collect();
        for (sid, part) in router.split(&batch).iter().enumerate() {
            for &k in part {
                assert_eq!(router.shard_of(k), sid);
            }
        }
        router.clear_pins();
        assert_eq!(router.pinned_shard(2), None);
        assert_eq!(router.shard_of(key(2, 9)), router.hash_shard_of(key(2, 9)));
    }

    #[test]
    fn install_replaces_the_whole_directory() {
        use crate::table_profile::TableDecision;
        let router = ShardRouter::with_pin_capacity(4, 8);
        let first = vec![
            TableDecision {
                table: 1,
                pinned_shard: Some(2),
                hot_rows: 0,
            },
            TableDecision {
                table: 3,
                pinned_shard: None,
                hot_rows: 77,
            },
        ];
        assert!(router.install(&first));
        assert_eq!(router.pinned_shard(1), Some(2));
        assert_eq!(router.hot_rows(3), 77);
        // Re-installing the same decisions changes nothing.
        assert!(!router.install(&first));
        // A new placement that drops table 1 reverts it to hash routing.
        let second = vec![TableDecision {
            table: 3,
            pinned_shard: Some(0),
            hot_rows: 50,
        }];
        assert!(router.install(&second));
        assert_eq!(router.pinned_shard(1), None);
        assert_eq!(router.pinned_shard(3), Some(0));
        assert_eq!(router.hot_rows(3), 50);
        // Clones share the directory.
        let clone = router.clone();
        assert_eq!(clone.pinned_shard(3), Some(0));
        clone.clear_pins();
        assert_eq!(router.pinned_shard(3), None);
    }

    #[test]
    fn split_preserves_every_key_once() {
        let router = ShardRouter::new(3);
        let batch: Vec<VectorKey> = (0..100).map(|i| key(i % 5, i as u64)).collect();
        let parts = router.split(&batch);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, batch.len());
        for (sid, part) in parts.iter().enumerate() {
            for &k in part {
                assert_eq!(router.shard_of(k), sid);
            }
        }
    }

    #[test]
    fn single_shard_split_is_identity() {
        let router = ShardRouter::new(1);
        let batch: Vec<VectorKey> = (0..20).map(|i| key(0, i)).collect();
        let parts = router.split(&batch);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], batch);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn sharded_totals_cover_the_trace() {
        let trace = SyntheticConfig::tiny(33).generate();
        let mut sys = untrained_system(4, 64);
        let mut stats = BatchAccessStats::default();
        for batch in trace.batches(10) {
            stats.accumulate(sys.process_batch(batch));
        }
        assert_eq!(stats.total(), trace.len() as u64);
        assert!(sys.len() <= sys.capacity());
        assert!(sys.total_chunks() > 0);
        assert!(sys.guided_fraction() > 0.0);
        assert_eq!(sys.name(), "RecMGx4");
    }

    #[test]
    fn parallel_batches_match_sequential() {
        let trace = SyntheticConfig::tiny(34).generate();
        let mut seq = untrained_system(4, 64);
        let mut par = untrained_system(4, 64);
        let mut a = BatchAccessStats::default();
        let mut b = BatchAccessStats::default();
        for batch in trace.batches(10) {
            a.accumulate(seq.process_batch(batch));
        }
        for batch in trace.batches(10) {
            b.accumulate(par.process_batch_parallel(batch));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn capacity_splits_evenly() {
        let sys = untrained_system(4, 10);
        // ceil(10 / 4) = 3 per shard.
        for i in 0..4 {
            assert_eq!(sys.shard_buffer(i).capacity(), 3);
            assert_eq!(sys.shard_tier(i), 0);
        }
        assert_eq!(sys.capacity(), 12);
        assert!(sys.is_empty());
        assert_eq!(sys.placement_name(), "even_split");
    }

    #[test]
    fn split_into_reuses_and_matches_split() {
        let router = ShardRouter::new(3);
        let a: Vec<VectorKey> = (0..60).map(|i| key(i % 4, i as u64)).collect();
        let b: Vec<VectorKey> = (0..10).map(|i| key(i % 2, 99 + i as u64)).collect();
        let mut parts = Vec::new();
        router.split_into(&a, &mut parts);
        assert_eq!(parts, router.split(&a));
        // Second call over the same scratch: fully refilled, no stale keys.
        router.split_into(&b, &mut parts);
        assert_eq!(parts, router.split(&b));
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, b.len());
    }

    /// Distinct keys routed to one shard (forcing misses, since every key
    /// is fresh).
    fn fresh_keys_for_shard(
        router: &ShardRouter,
        shard: usize,
        n: usize,
        salt: u64,
    ) -> Vec<VectorKey> {
        (0..)
            .map(|i| key(1, salt + i as u64))
            .filter(|&k| router.shard_of(k) == shard)
            .take(n)
            .collect()
    }

    /// Regression (PR 5): the rebalancer must feed the placement policy
    /// per-epoch traffic *deltas*, not cumulative history. Before the fix
    /// it re-placed from cumulative counters, so a shard that dominated
    /// an old phase kept its oversized share forever — and the stale mass
    /// was re-acted on at every subsequent fire.
    fn delta_rebalancer_system() -> ShardedRecMgSystem {
        use crate::tier::WorkingSet;
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(&[key(0, 1)]);
        ShardedRecMgSystem::builder(&caching, None, codec)
            .shards(2)
            .capacity(64)
            .placement(WorkingSet::with_floor(4))
            .build()
    }

    #[test]
    fn rebalancer_snapshots_and_deltas_per_epoch() {
        use crate::tier::Rebalancer;
        let mut sys = delta_rebalancer_system();
        let router = sys.router();
        let mut rb = Rebalancer::new(1);
        // Phase A: 400 fresh keys (all misses) into shard 0's key space.
        let a = fresh_keys_for_shard(&router, 0, 400, 0);
        sys.process_batch(&a);
        assert!(rb.maybe_rebalance(&mut sys), "phase A mass moves capacity");
        assert!(
            sys.shard_buffer(0).capacity() > sys.shard_buffer(1).capacity(),
            "phase A: shard 0 dominates"
        );
        // Quiescent: no fresh traffic, no fire — stale counters must not
        // keep re-triggering.
        let fires_before = rb.fires();
        for _ in 0..5 {
            assert!(!rb.maybe_rebalance(&mut sys), "quiescent system refired");
        }
        assert_eq!(rb.fires(), fires_before);
        // Phase B: *less* traffic than phase A, but all of it on shard 1.
        // Cumulative mass still favors shard 0 (400 vs 200); the epoch
        // delta favors shard 1 (0 vs 200) — placement must track the
        // current phase.
        let b = fresh_keys_for_shard(&router, 1, 200, 1_000_000);
        sys.process_batch(&b);
        assert!(rb.maybe_rebalance(&mut sys), "phase B delta moves capacity");
        assert!(
            sys.shard_buffer(1).capacity() > sys.shard_buffer(0).capacity(),
            "delta-driven placement follows the new phase: {} vs {}",
            sys.shard_buffer(0).capacity(),
            sys.shard_buffer(1).capacity()
        );
        assert_eq!(sys.capacity(), 64, "working-set shares conserve capacity");
        assert_eq!(rb.rebalances(), 2);
        assert_eq!(rb.phase_fires(), 0, "no phase trigger configured");
    }

    #[test]
    fn rebalance_fire_defers_while_queue_nonempty() {
        use crate::tier::Rebalancer;
        let mut sys = delta_rebalancer_system();
        let router = sys.router();
        let mut rb = Rebalancer::new(1);
        let a = fresh_keys_for_shard(&router, 0, 400, 0);
        sys.process_batch(&a);
        let before = sys.shard_buffer(0).capacity();
        // A fire during nonzero queue depth is a typed deferral that
        // neither acts nor consumes the trigger.
        let err = rb.try_rebalance(&mut sys, 3).unwrap_err();
        assert_eq!(err.queue_depth, 3);
        assert_eq!(sys.shard_buffer(0).capacity(), before, "did not act");
        assert_eq!((rb.fires(), rb.deferrals()), (0, 1));
        assert!(err.to_string().contains("queue depth 3"));
        // The same fire re-raises on the next quiescent check.
        assert!(rb.try_rebalance(&mut sys, 0).expect("quiescent"));
        assert_eq!((rb.fires(), rb.rebalances()), (1, 1));
        // No pending fire: Ok(false) regardless of queue depth.
        assert!(!rb.try_rebalance(&mut sys, 9).expect("no fire pending"));
        assert_eq!(rb.deferrals(), 1);
    }

    #[test]
    fn working_set_stats_flow_through_system_accessors() {
        let mut sys = delta_rebalancer_system();
        let router = sys.router();
        let batch = fresh_keys_for_shard(&router, 0, 50, 0);
        sys.process_batch(&batch);
        let ws = sys.shard_working_set(0);
        assert_eq!(ws.unique_keys, 50, "exact below the sketch threshold");
        assert_eq!(sys.shard_working_set(1).unique_keys, 0);
        assert_eq!(sys.unique_keys(), 50);
        assert_eq!(sys.shard_traffics()[0].unique_keys, 50);
        // No epoch completed yet at default epoch length: no phase signal.
        assert_eq!(sys.max_phase_score(), 0.0);
    }

    #[test]
    fn rebalance_grows_hot_shard_under_working_set() {
        use crate::tier::WorkingSet;
        let cfg = RecMgConfig::tiny();
        let caching = CachingModel::new(&cfg);
        let codec = FrequencyRankCodec::from_accesses(&[key(0, 1)]);
        let mut sys = ShardedRecMgSystem::builder(&caching, None, codec)
            .shards(2)
            .capacity(64)
            .placement(WorkingSet::with_floor(4))
            .build();
        // Drive all traffic to one shard's key space.
        let hot_shard = sys.router().shard_of(key(0, 7));
        let stream: Vec<VectorKey> = (0..400)
            .map(|i| key(0, 7 + 1000 * (i % 3) as u64))
            .filter(|&k| sys.router().shard_of(k) == hot_shard)
            .collect();
        assert!(!stream.is_empty());
        sys.process_batch(&stream);
        assert!(sys.demand_accesses() > 0);
        let before = sys.shard_buffer(hot_shard).capacity();
        assert!(sys.rebalance(), "skewed mass must move capacity");
        let after = sys.shard_buffer(hot_shard).capacity();
        assert!(after > before, "hot shard grew: {before} -> {after}");
        // Total capacity is conserved exactly under WorkingSet.
        assert_eq!(sys.capacity(), 64);
    }
}
