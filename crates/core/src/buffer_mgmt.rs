//! Algorithms 1 and 2: model-guided GPU-buffer management (paper §VI-B).
//!
//! * **Algorithm 1** (`load_embeddings`): after each chunk of accesses, the
//!   caching model's bit `C[i]` sets the priority of trunk entry `T[i]` to
//!   `C[i] + eviction_speed`, and every prefetch-model output is fetched
//!   into the buffer at priority `eviction_speed` (protected from premature
//!   eviction).
//! * **Algorithm 2** (`gpu_buffer_populate`): when space is needed, every
//!   resident entry's priority decays by one and the minimum-priority entry
//!   is evicted — realized lazily by [`GpuBuffer::populate`].
//!
//! A larger `eviction_speed` keeps prefetched embeddings resident longer
//! relative to model-demoted entries; the default of 4 follows the paper
//! ("inspired by the RRIP hardware prefetcher algorithm").

use recmg_cache::{BufferAccess, GpuBuffer};
use recmg_trace::VectorKey;

/// The RecMG-managed GPU buffer.
#[derive(Debug, Clone)]
pub struct RecMgBuffer {
    buffer: GpuBuffer,
    eviction_speed: u64,
}

impl RecMgBuffer {
    /// Creates a buffer of `capacity` vectors with the given eviction
    /// speed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, eviction_speed: u64) -> Self {
        RecMgBuffer {
            buffer: GpuBuffer::new(capacity),
            eviction_speed,
        }
    }

    /// The configured eviction speed.
    pub fn eviction_speed(&self) -> u64 {
        self.eviction_speed
    }

    /// Demand access on the critical path: classifies the access and, on a
    /// miss, fetches the vector on demand (evicting via Algorithm 2 if
    /// full). Newly fetched vectors enter at neutral priority
    /// `eviction_speed`; their final priority arrives with the next
    /// caching-model output (Algorithm 1).
    pub fn access(&mut self, key: VectorKey) -> BufferAccess {
        let outcome = self.buffer.lookup(key);
        if outcome == BufferAccess::Miss {
            if self.buffer.is_full() {
                self.buffer.populate();
            }
            self.buffer.insert(key, self.eviction_speed, false);
        }
        outcome
    }

    /// Algorithm 1: applies the caching model's bits `c` to the trunk `t`
    /// and fetches the prefetch model's outputs `p`.
    ///
    /// The 1-bit priority maps to the buffer's priority scale as
    /// keep → `eviction_speed + 1`, evict → `0`. The paper's literal
    /// `C[i] + eviction_speed` encodes the same one-unit relative gap on a
    /// per-eviction decay scale; with this buffer's per-pass decay
    /// (see [`recmg_cache::GpuBuffer`]) the gap must span the full scale,
    /// otherwise model-rejected vectors — which OPTgen labels precisely
    /// because the optimal policy would *bypass* them — would pollute the
    /// buffer for a pass and the system could not approach the optgen
    /// hit rates of Fig. 8.
    ///
    /// # Panics
    ///
    /// Panics if `t` and `c` differ in length.
    pub fn load_embeddings(&mut self, t: &[VectorKey], c: &[bool], p: &[VectorKey]) {
        assert_eq!(t.len(), c.len(), "one caching bit per trunk entry");
        // Lines 4-6: keep-labeled trunk entries are protected, evict-labeled
        // ones drop to the eviction floor (OPT-bypass approximation).
        for (&key, &bit) in t.iter().zip(c) {
            let prio = if bit { self.eviction_speed + 1 } else { 0 };
            self.buffer.set_priority(key, prio);
        }
        // Lines 9-14: prefetch P[i] and protect it. A prefetch is dropped
        // rather than inserted when every resident entry is still
        // protected (min priority ≥ eviction_speed): evicting a
        // model-endorsed or not-yet-classified vector for a speculative
        // one inverts the system's own priority order and, at moderate
        // prefetch accuracy, pollutes the buffer (the failure mode
        // Table IV attributes to Berti/MAB).
        for &key in p {
            if self.buffer.contains(key) {
                // Already resident: just refresh its protection.
                self.buffer.set_priority(key, self.eviction_speed);
                continue;
            }
            if self.buffer.is_full() {
                if self.buffer.min_priority().unwrap_or(0) >= self.eviction_speed {
                    continue;
                }
                self.buffer.evict_min();
            }
            // Speculative entries start with one decay period of
            // protection; a prefetch hit upgrades them through the normal
            // Algorithm-1 path on their first demand touch. Holding them at
            // full `eviction_speed` protection would let mispredictions
            // occupy ~eviction_speed passes of capacity.
            self.buffer.insert_prefetch(key, 1);
        }
    }

    /// Read access to the underlying buffer.
    pub fn buffer(&self) -> &GpuBuffer {
        &self.buffer
    }

    /// Buffer capacity in vectors.
    pub fn capacity(&self) -> usize {
        self.buffer.capacity()
    }

    /// Current residency.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(0), RowId(r))
    }

    #[test]
    fn demand_miss_inserts() {
        let mut b = RecMgBuffer::new(2, 4);
        assert_eq!(b.access(key(1)), BufferAccess::Miss);
        assert_eq!(b.access(key(1)), BufferAccess::CacheHit);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn prefetched_vectors_classified_on_first_touch() {
        let mut b = RecMgBuffer::new(4, 4);
        b.load_embeddings(&[], &[], &[key(9)]);
        assert_eq!(b.access(key(9)), BufferAccess::PrefetchHit);
        assert_eq!(b.access(key(9)), BufferAccess::CacheHit);
    }

    #[test]
    fn caching_bits_bias_eviction() {
        let mut b = RecMgBuffer::new(3, 4);
        for r in 1..=3 {
            b.access(key(r));
        }
        // Model says: keep 1 and 3 (bit 1), demote 2 (bit 0).
        b.load_embeddings(&[key(1), key(2), key(3)], &[true, false, true], &[]);
        // Next demand miss must evict key(2).
        b.access(key(4));
        assert!(!b.buffer().contains(key(2)));
        assert!(b.buffer().contains(key(1)));
        assert!(b.buffer().contains(key(3)));
    }

    #[test]
    fn prefetches_outlive_demoted_entries() {
        let mut b = RecMgBuffer::new(3, 4);
        b.access(key(1));
        b.access(key(2));
        b.load_embeddings(&[key(1), key(2)], &[false, false], &[key(7)]);
        assert!(b.buffer().contains(key(7)));
        // Two more demand misses: the demoted 1 and 2 go first.
        b.access(key(8));
        b.access(key(9));
        assert!(b.buffer().contains(key(7)), "prefetch evicted early");
    }

    #[test]
    fn algorithm1_full_buffer_populates_before_prefetch() {
        let mut b = RecMgBuffer::new(2, 4);
        b.access(key(1));
        b.access(key(2));
        assert_eq!(b.len(), 2);
        // Both entries demoted: the prefetch may displace one.
        b.load_embeddings(&[key(1), key(2)], &[false, false], &[key(3)]);
        assert_eq!(b.len(), 2); // one was evicted to make room
        assert!(b.buffer().contains(key(3)));
    }

    #[test]
    fn prefetch_never_displaces_protected_entries() {
        let mut b = RecMgBuffer::new(2, 4);
        b.access(key(1));
        b.access(key(2));
        b.load_embeddings(&[key(1), key(2)], &[true, true], &[key(3)]);
        // Everything resident is protected: the speculative insert is
        // dropped instead of displacing an endorsed vector.
        assert!(!b.buffer().contains(key(3)));
        assert!(b.buffer().contains(key(1)));
        assert!(b.buffer().contains(key(2)));
    }

    #[test]
    fn eviction_speed_accessor() {
        let b = RecMgBuffer::new(2, 7);
        assert_eq!(b.eviction_speed(), 7);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "one caching bit per trunk entry")]
    fn mismatched_bits_panic() {
        let mut b = RecMgBuffer::new(2, 4);
        b.load_embeddings(&[key(1)], &[], &[]);
    }
}
