//! Algorithms 1 and 2: model-guided GPU-buffer management (paper §VI-B).
//!
//! * **Algorithm 1** (`load_embeddings`): after each chunk of accesses, the
//!   caching model's bit `C[i]` sets the priority of trunk entry `T[i]` to
//!   `C[i] + eviction_speed`, and every prefetch-model output is fetched
//!   into the buffer at priority `eviction_speed` (protected from premature
//!   eviction).
//! * **Algorithm 2** (`gpu_buffer_populate`): when space is needed, every
//!   resident entry's priority decays by one and the minimum-priority entry
//!   is evicted — realized lazily by [`GpuBuffer::populate`].
//!
//! A larger `eviction_speed` keeps prefetched embeddings resident longer
//! relative to model-demoted entries; the default of 4 follows the paper
//! ("inspired by the RRIP hardware prefetcher algorithm").

use std::time::{Duration, Instant};

use recmg_cache::{BufferAccess, GpuBuffer};
use recmg_trace::VectorKey;

use crate::backend::{BackendSpec, RowStore, ROW_BYTES};
use crate::config::{SketchConfig, TierCost};
use crate::sketch::{WorkingSetStats, WorkingSetTracker};

pub(crate) use crate::backend::FillHandle;

/// Cumulative tier-traffic accounting of one [`RecMgBuffer`]: how many
/// buffer events the backing memory tier served and what they cost under
/// that tier's [`TierCost`] model. Counters merge losslessly across shards
/// (per-tier aggregation in [`crate::TierUsage`]) and subtract cleanly
/// between snapshots (per-run deltas in engine/session reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierTraffic {
    /// Resident accesses served from the tier (cache + prefetch hits).
    pub hits: u64,
    /// On-demand fetches into the tier.
    pub misses: u64,
    /// Speculative (prefetch) fills into the tier.
    pub prefetch_fills: u64,
    /// Demand fills that landed asynchronously: a missed key promoted by
    /// a background fill thread after the miss was already served at slow
    /// cost ([`crate::FillMode::Async`]). Always 0 in blocking mode,
    /// where the fill is folded into the miss itself.
    pub demand_fills: u64,
    /// Accumulated hit-weighted access cost in nanoseconds
    /// (`hits × hit_ns + misses × miss_ns + fills × fill_ns`, plus any
    /// rebalance migration charges).
    pub cost_ns: u64,
    /// Sketched working-set footprint: estimated distinct keys demanded
    /// over the buffer's sliding sketch window ([`crate::sketch`]).
    /// Unlike the counters above this is a *point-in-time estimate*, not
    /// a cumulative count: [`TierTraffic::accumulate`] sums it (shard key
    /// spaces are disjoint, so per-shard footprints add losslessly into a
    /// tier footprint) and [`TierTraffic::delta_since`] keeps the current
    /// value (a "delta of cardinalities" has no meaning — reports show
    /// the live footprint, exactly like `TierUsage`'s occupancy fields).
    pub unique_keys: u64,
}

impl TierTraffic {
    /// Demand accesses observed (hits + misses) — the access-mass signal
    /// working-set placement sizes shard buffers from.
    pub fn demand(&self) -> u64 {
        self.hits + self.misses
    }

    /// Adds `other` into `self` (lossless merge across shards — the shard
    /// router is a partition, so even the sketched `unique_keys`
    /// footprints add without double counting).
    pub fn accumulate(&mut self, other: TierTraffic) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.prefetch_fills += other.prefetch_fills;
        self.demand_fills += other.demand_fills;
        self.cost_ns += other.cost_ns;
        self.unique_keys += other.unique_keys;
    }

    /// Counter-wise `self - before` (both cumulative snapshots of the same
    /// buffers; saturating so a rebalanced/rebuilt shard never underflows).
    /// `unique_keys` is point-in-time, not a counter: the delta keeps the
    /// later snapshot's value.
    pub fn delta_since(&self, before: &TierTraffic) -> TierTraffic {
        TierTraffic {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            prefetch_fills: self.prefetch_fills.saturating_sub(before.prefetch_fills),
            demand_fills: self.demand_fills.saturating_sub(before.demand_fills),
            cost_ns: self.cost_ns.saturating_sub(before.cost_ns),
            unique_keys: self.unique_keys,
        }
    }
}

/// Spin until `penalty` has elapsed — the injected bandwidth penalty of a
/// slow tier. Spinning (not sleeping) because realistic penalties are
/// sub-microsecond, far below a sleep quantum.
fn inject_penalty(penalty: Duration) {
    if penalty.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < penalty {
        std::hint::spin_loop();
    }
}

/// The RecMG-managed GPU buffer: eviction metadata ([`GpuBuffer`]) plus
/// the actual row bytes on this tier's storage backend
/// ([`crate::backend`]). The two stay in lockstep — a row exists exactly
/// for the keys the metadata says are resident.
#[derive(Debug, Clone)]
pub struct RecMgBuffer {
    buffer: GpuBuffer,
    /// Row bytes behind this tier's [`BackendSpec`] (heap, mapped file,
    /// or plain file).
    rows: RowStore,
    /// When present, demand misses queue here instead of filling inline
    /// ([`crate::FillMode::Async`]).
    fill: Option<FillHandle>,
    eviction_speed: u64,
    /// Access-cost model of the memory tier backing this buffer.
    cost: TierCost,
    traffic: TierTraffic,
    /// Sliding-window unique-key sketch over the demand stream — the
    /// working-set footprint and phase-change signal placement reacts to.
    tracker: WorkingSetTracker,
}

impl RecMgBuffer {
    /// Creates a buffer of `capacity` vectors with the given eviction
    /// speed, backed by an implicit free tier ([`TierCost::FREE`]: events
    /// are counted but cost nothing and nothing is injected).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, eviction_speed: u64) -> Self {
        Self::with_cost(capacity, eviction_speed, TierCost::FREE)
    }

    /// Creates a buffer backed by a memory tier with the given access-cost
    /// model (tier-topology systems route every shard buffer through
    /// here).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_cost(capacity: usize, eviction_speed: u64, cost: TierCost) -> Self {
        Self::with_sketch(capacity, eviction_speed, cost, SketchConfig::default())
    }

    /// Creates a buffer with an explicit working-set sketch shape
    /// ([`SystemBuilder::sketch`](crate::SystemBuilder::sketch) routes
    /// every shard buffer through here).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `sketch` is invalid.
    pub fn with_sketch(
        capacity: usize,
        eviction_speed: u64,
        cost: TierCost,
        sketch: SketchConfig,
    ) -> Self {
        Self::with_backend_spec(capacity, eviction_speed, cost, sketch, BackendSpec::Dram)
    }

    /// Creates a buffer whose row bytes live on an explicit storage
    /// backend — the software-defined-memory path
    /// ([`SystemBuilder::build`](crate::SystemBuilder::build) routes every
    /// shard buffer through here with its tier's [`BackendSpec`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `sketch` is invalid.
    pub fn with_backend_spec(
        capacity: usize,
        eviction_speed: u64,
        cost: TierCost,
        sketch: SketchConfig,
        backend: BackendSpec,
    ) -> Self {
        RecMgBuffer {
            buffer: GpuBuffer::new(capacity),
            rows: RowStore::new(backend, capacity),
            fill: None,
            eviction_speed,
            cost,
            traffic: TierTraffic::default(),
            tracker: WorkingSetTracker::new(sketch),
        }
    }

    /// The storage backend holding this buffer's row bytes.
    pub fn backend_spec(&self) -> BackendSpec {
        self.rows.spec()
    }

    /// Attaches (or detaches, with `None`) the async fill handle — set by
    /// the builder for every shard of a [`crate::FillMode::Async`] system.
    pub(crate) fn set_fill_handle(&mut self, fill: Option<FillHandle>) {
        self.fill = fill;
    }

    /// Whether misses route through an async fill queue.
    pub fn has_fill_handle(&self) -> bool {
        self.fill.is_some()
    }

    /// Copies `key`'s row bytes out of the backend, `None` when the key
    /// is not resident. This is the parity oracle's read path: identical
    /// bytes across backends for the same key.
    pub fn read_row(&self, key: VectorKey) -> Option<[u8; ROW_BYTES]> {
        let mut row = [0u8; ROW_BYTES];
        self.rows.read(key, &mut row).then_some(row)
    }

    /// The configured eviction speed.
    pub fn eviction_speed(&self) -> u64 {
        self.eviction_speed
    }

    /// The tier access-cost model currently applied.
    pub fn cost(&self) -> TierCost {
        self.cost
    }

    /// Cumulative tier traffic of this buffer, with the sketched
    /// working-set footprint filled in (`unique_keys` is the tracker's
    /// current windowed estimate, computed at call time — an `O(m)`
    /// register scan, cheap at reporting/rebalancing frequency and free
    /// on the per-access path).
    pub fn traffic(&self) -> TierTraffic {
        let mut t = self.traffic;
        t.unique_keys = self.tracker.unique_keys();
        t
    }

    /// Point-in-time working-set statistics of the demand stream: windowed
    /// unique keys, last epoch's footprint, and the phase score the
    /// rebalancer's phase trigger fires on.
    pub fn working_set(&self) -> WorkingSetStats {
        self.tracker.stats()
    }

    /// Cumulative demand accesses (hits + misses) from the raw counters —
    /// unlike [`RecMgBuffer::traffic`] this never touches the sketch, so
    /// it is safe to poll on every batch (the rebalancer's trigger check).
    pub fn demand_count(&self) -> u64 {
        self.traffic.demand()
    }

    /// Phase score of the last completed sketch epoch — cached on the
    /// tracker, `O(1)` (no window merge), safe to poll on every batch.
    pub fn phase_score(&self) -> f64 {
        self.tracker.phase_score()
    }

    /// Demand accesses per sketch epoch (phase scores update at this
    /// granularity).
    pub fn sketch_epoch_len(&self) -> u64 {
        self.tracker.epoch_len()
    }

    /// Swaps the tier cost model (a rebalance moved this buffer to another
    /// tier). Traffic counters are cumulative and keep running.
    pub fn set_cost(&mut self, cost: TierCost) {
        self.cost = cost;
    }

    /// Charges the one-time cost of migrating the resident working set
    /// into a new tier (`len × fill_ns` under the *destination* tier's
    /// model) — called by the rebalancer when a shard changes tiers. The
    /// charge lands in the *cumulative* counters: per-run report deltas
    /// (which snapshot at session build, after any rebalance) deliberately
    /// exclude it, so serving cost and placement-churn cost stay
    /// separable. Callers that want churn in their metric snapshot
    /// *per-shard* traffic
    /// ([`ShardedRecMgSystem::shard_traffic`](crate::ShardedRecMgSystem::shard_traffic))
    /// around the rebalance, as the serving bench's `migration_cost_ns`
    /// field does — per-*tier* snapshots would be wrong across a
    /// rebalance, because a moved shard's whole traffic history follows
    /// it to its new tier.
    pub fn charge_migration(&mut self, into: TierCost) {
        self.traffic.cost_ns += self.buffer.len() as u64 * into.fill_ns;
    }

    /// Re-sizes the buffer in place (shrinking evicts minimum-priority
    /// entries first), keeping traffic counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn resize(&mut self, capacity: usize) {
        self.buffer.set_capacity(capacity);
        // Rebuild the row store at the new slot count, keeping exactly
        // the metadata survivors (a shrink evicted the coldest inside
        // `set_capacity`).
        let resident: Vec<VectorKey> = self.buffer.keys().collect();
        self.rows.rebind(self.rows.spec(), capacity, &resident);
    }

    /// Moves the row bytes onto a different storage backend at the
    /// current capacity (a rebalance changed this shard's home tier).
    /// Rows are re-synthesized on the destination; the old backend —
    /// and any temp file it held — is dropped here.
    pub(crate) fn rebind_backend(&mut self, backend: BackendSpec) {
        if backend == self.rows.spec() {
            return;
        }
        let resident: Vec<VectorKey> = self.buffer.keys().collect();
        self.rows.rebind(backend, self.buffer.capacity(), &resident);
    }

    /// Declares which tables' vectors are exempt from victim selection in
    /// this buffer (RecShard-style pins — see
    /// [`GpuBuffer::set_pinned_tables`]); an empty slice clears the set.
    pub fn set_pinned_tables(&mut self, tables: &[u32]) {
        self.buffer.set_pinned_tables(tables);
    }

    /// Adds an auxiliary charge to the cumulative cost counter: live
    /// migration staging fills and replica fills are real tier traffic
    /// that did not pass through [`RecMgBuffer::access`] /
    /// [`RecMgBuffer::load_embeddings`]. Hit/miss/fill *counts* never move
    /// here — only cost — so demand conservation is unaffected.
    pub fn charge_cost_ns(&mut self, ns: u64) {
        self.traffic.cost_ns += ns;
    }

    /// Re-prices the most recent hit as served from a fast-tier replica:
    /// refunds `hit_ns − served_hit_ns` from the cumulative cost (the hit
    /// was already charged at this buffer's home-tier rate by
    /// [`RecMgBuffer::access`]). Returns the nanoseconds saved (0 when the
    /// replica tier is not cheaper). Counts stay canonical on the home
    /// shard: replication only modulates *cost*, never hits/misses.
    pub fn refund_hit(&mut self, served_hit_ns: u64) -> u64 {
        let saved = self.cost.hit_ns.saturating_sub(served_hit_ns);
        self.traffic.cost_ns = self.traffic.cost_ns.saturating_sub(saved);
        saved
    }

    /// Swaps in a fully warmed replacement storage (live migration's
    /// double-buffer commit) and re-prices the buffer at the destination
    /// tier's cost model, returning the retired storage. Traffic counters,
    /// the working-set tracker, and the eviction speed all stay — the
    /// shard's identity and demand history are continuous across the
    /// migration; only where its vectors live changes.
    pub(crate) fn replace_storage(
        &mut self,
        mut buffer: GpuBuffer,
        cost: TierCost,
        backend: BackendSpec,
    ) -> GpuBuffer {
        // Pins follow the shard, not the storage: a freshly staged buffer
        // inherits the pin set so a live migration cannot silently strip
        // a pinned table's residency guarantee.
        buffer.set_pinned_tables(self.buffer.pinned_tables());
        self.cost = cost;
        let retired = std::mem::replace(&mut self.buffer, buffer);
        // Row bytes for the staged residents materialize on the
        // destination backend; the old store (and its temp file, for
        // file-backed tiers) is dropped before the retired metadata is
        // returned — Drop order the migration stress test pins via
        // `live_backend_files`.
        let resident: Vec<VectorKey> = self.buffer.keys().collect();
        self.rows.rebind(backend, self.buffer.capacity(), &resident);
        retired
    }

    /// Demand access on the critical path: classifies the access and, on a
    /// miss, fetches the vector on demand (evicting via Algorithm 2 if
    /// full). Newly fetched vectors enter at neutral priority
    /// `eviction_speed`; their final priority arrives with the next
    /// caching-model output (Algorithm 1).
    ///
    /// Tier accounting: hits charge `hit_ns`, misses charge `miss_ns` and
    /// suffer the tier's injected penalty (the on-demand fetch crosses the
    /// slow tier's bandwidth bottleneck).
    pub fn access(&mut self, key: VectorKey) -> BufferAccess {
        // Every demand access feeds the working-set sketch (hits and
        // misses alike — the footprint is about reuse, not residency);
        // speculative prefetch fills deliberately do not, so a
        // mispredicting prefetcher cannot inflate the footprint signal
        // placement sizes capacity from.
        self.tracker.observe(key.as_u64());
        let outcome = self.buffer.lookup(key);
        let mut row = [0u8; ROW_BYTES];
        if outcome == BufferAccess::Miss {
            self.traffic.misses += 1;
            inject_penalty(self.cost.miss_penalty);
            match &self.fill {
                // Async: serve the miss from the slow side now (the fill
                // portion of the miss cost is deferred to the promotion
                // that a background thread lands later) and queue the key.
                // The deferred fill cost travels with the queue entry so
                // the promotion charges *this* tier's fill_ns even if the
                // shard migrates (re-prices) before the fill lands.
                // Residency is untouched until then, so accesses in
                // between are honest misses.
                Some(handle) => {
                    let fill_ns = self.cost.fill_ns;
                    self.traffic.cost_ns += self.cost.miss_ns.saturating_sub(fill_ns);
                    handle.queue.push(handle.shard, key, fill_ns);
                }
                // Blocking: the historical read-through — install the row
                // and serve it inline, one miss_ns covering both.
                None => {
                    self.traffic.cost_ns += self.cost.miss_ns;
                    if self.buffer.is_full() {
                        if let Some(victim) = self.buffer.populate() {
                            self.rows.remove(victim);
                        }
                    }
                    self.buffer.insert(key, self.eviction_speed, false);
                    self.rows.read_through(key, &mut row);
                }
            }
        } else {
            self.traffic.hits += 1;
            self.traffic.cost_ns += self.cost.hit_ns;
            // The serve itself: a resident access really reads the row
            // off this tier's storage.
            let resident = self.rows.read(key, &mut row);
            debug_assert!(resident, "resident metadata implies a stored row");
        }
        outcome
    }

    /// Lands one asynchronous demand fill (called by a background fill
    /// thread under the shard lock): installs the row, promotes the key
    /// into residency at neutral priority, and charges `fill_ns` — the
    /// deferred fill cost carried on the queue entry from the miss, so
    /// the miss/promotion pair always sums to the *origin* tier's
    /// `miss_ns` even when the shard migrated in between. Returns `false`
    /// — and changes nothing — when the key is already resident (a
    /// prefetch or an earlier fill won the race).
    pub(crate) fn promote_fill(&mut self, key: VectorKey, fill_ns: u64) -> bool {
        if self.buffer.contains(key) {
            return false;
        }
        if self.buffer.is_full() {
            if let Some(victim) = self.buffer.populate() {
                self.rows.remove(victim);
            }
        }
        self.buffer.insert(key, self.eviction_speed, false);
        self.rows.insert(key);
        self.traffic.demand_fills += 1;
        self.traffic.cost_ns += fill_ns;
        true
    }

    /// Algorithm 1: applies the caching model's bits `c` to the trunk `t`
    /// and fetches the prefetch model's outputs `p`.
    ///
    /// The 1-bit priority maps to the buffer's priority scale as
    /// keep → `eviction_speed + 1`, evict → `0`. The paper's literal
    /// `C[i] + eviction_speed` encodes the same one-unit relative gap on a
    /// per-eviction decay scale; with this buffer's per-pass decay
    /// (see [`recmg_cache::GpuBuffer`]) the gap must span the full scale,
    /// otherwise model-rejected vectors — which OPTgen labels precisely
    /// because the optimal policy would *bypass* them — would pollute the
    /// buffer for a pass and the system could not approach the optgen
    /// hit rates of Fig. 8.
    ///
    /// # Panics
    ///
    /// Panics if `t` and `c` differ in length.
    pub fn load_embeddings(&mut self, t: &[VectorKey], c: &[bool], p: &[VectorKey]) {
        assert_eq!(t.len(), c.len(), "one caching bit per trunk entry");
        // Lines 4-6: keep-labeled trunk entries are protected, evict-labeled
        // ones drop to the eviction floor (OPT-bypass approximation).
        for (&key, &bit) in t.iter().zip(c) {
            let prio = if bit { self.eviction_speed + 1 } else { 0 };
            self.buffer.set_priority(key, prio);
        }
        // Lines 9-14: prefetch P[i] and protect it. A prefetch is dropped
        // rather than inserted when every resident entry is still
        // protected (min priority ≥ eviction_speed): evicting a
        // model-endorsed or not-yet-classified vector for a speculative
        // one inverts the system's own priority order and, at moderate
        // prefetch accuracy, pollutes the buffer (the failure mode
        // Table IV attributes to Berti/MAB).
        for &key in p {
            if self.buffer.contains(key) {
                // Already resident: just refresh its protection.
                self.buffer.set_priority(key, self.eviction_speed);
                continue;
            }
            if self.buffer.is_full() {
                if self.buffer.min_priority().unwrap_or(0) >= self.eviction_speed {
                    continue;
                }
                if let Some(victim) = self.buffer.evict_min() {
                    self.rows.remove(victim);
                }
            }
            // Speculative entries start with one decay period of
            // protection; a prefetch hit upgrades them through the normal
            // Algorithm-1 path on their first demand touch. Holding them at
            // full `eviction_speed` protection would let mispredictions
            // occupy ~eviction_speed passes of capacity.
            self.buffer.insert_prefetch(key, 1);
            self.rows.insert(key);
            // A real fill into the tier: charge it and pay the tier's
            // bandwidth penalty (speculative traffic competes for the same
            // slow-tier bandwidth as demand fetches).
            self.traffic.prefetch_fills += 1;
            self.traffic.cost_ns += self.cost.fill_ns;
            inject_penalty(self.cost.miss_penalty);
        }
    }

    /// Read access to the underlying buffer.
    pub fn buffer(&self) -> &GpuBuffer {
        &self.buffer
    }

    /// Buffer capacity in vectors.
    pub fn capacity(&self) -> usize {
        self.buffer.capacity()
    }

    /// Current residency.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(0), RowId(r))
    }

    #[test]
    fn demand_miss_inserts() {
        let mut b = RecMgBuffer::new(2, 4);
        assert_eq!(b.access(key(1)), BufferAccess::Miss);
        assert_eq!(b.access(key(1)), BufferAccess::CacheHit);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn prefetched_vectors_classified_on_first_touch() {
        let mut b = RecMgBuffer::new(4, 4);
        b.load_embeddings(&[], &[], &[key(9)]);
        assert_eq!(b.access(key(9)), BufferAccess::PrefetchHit);
        assert_eq!(b.access(key(9)), BufferAccess::CacheHit);
    }

    #[test]
    fn caching_bits_bias_eviction() {
        let mut b = RecMgBuffer::new(3, 4);
        for r in 1..=3 {
            b.access(key(r));
        }
        // Model says: keep 1 and 3 (bit 1), demote 2 (bit 0).
        b.load_embeddings(&[key(1), key(2), key(3)], &[true, false, true], &[]);
        // Next demand miss must evict key(2).
        b.access(key(4));
        assert!(!b.buffer().contains(key(2)));
        assert!(b.buffer().contains(key(1)));
        assert!(b.buffer().contains(key(3)));
    }

    #[test]
    fn prefetches_outlive_demoted_entries() {
        let mut b = RecMgBuffer::new(3, 4);
        b.access(key(1));
        b.access(key(2));
        b.load_embeddings(&[key(1), key(2)], &[false, false], &[key(7)]);
        assert!(b.buffer().contains(key(7)));
        // Two more demand misses: the demoted 1 and 2 go first.
        b.access(key(8));
        b.access(key(9));
        assert!(b.buffer().contains(key(7)), "prefetch evicted early");
    }

    #[test]
    fn algorithm1_full_buffer_populates_before_prefetch() {
        let mut b = RecMgBuffer::new(2, 4);
        b.access(key(1));
        b.access(key(2));
        assert_eq!(b.len(), 2);
        // Both entries demoted: the prefetch may displace one.
        b.load_embeddings(&[key(1), key(2)], &[false, false], &[key(3)]);
        assert_eq!(b.len(), 2); // one was evicted to make room
        assert!(b.buffer().contains(key(3)));
    }

    #[test]
    fn prefetch_never_displaces_protected_entries() {
        let mut b = RecMgBuffer::new(2, 4);
        b.access(key(1));
        b.access(key(2));
        b.load_embeddings(&[key(1), key(2)], &[true, true], &[key(3)]);
        // Everything resident is protected: the speculative insert is
        // dropped instead of displacing an endorsed vector.
        assert!(!b.buffer().contains(key(3)));
        assert!(b.buffer().contains(key(1)));
        assert!(b.buffer().contains(key(2)));
    }

    #[test]
    fn eviction_speed_accessor() {
        let b = RecMgBuffer::new(2, 7);
        assert_eq!(b.eviction_speed(), 7);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "one caching bit per trunk entry")]
    fn mismatched_bits_panic() {
        let mut b = RecMgBuffer::new(2, 4);
        b.load_embeddings(&[key(1)], &[], &[]);
    }

    #[test]
    fn tier_traffic_accounts_hits_misses_and_fills() {
        let cost = TierCost::synthetic(10, 100, 40);
        let mut b = RecMgBuffer::with_cost(8, 4, cost);
        assert_eq!(b.cost(), cost);
        b.access(key(1)); // miss
        b.access(key(1)); // hit
        b.load_embeddings(&[key(1)], &[true], &[key(2), key(1)]); // 1 fill (key 1 resident)
        b.access(key(2)); // prefetch hit
        let t = b.traffic();
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 2);
        assert_eq!(t.prefetch_fills, 1);
        assert_eq!(t.cost_ns, 100 + 2 * 10 + 40);
        assert_eq!(t.demand(), 3);
        // Two distinct keys demanded (the prefetch fill of key 2 does not
        // count until its demand touch).
        assert_eq!(t.unique_keys, 2);
    }

    #[test]
    fn working_set_tracks_distinct_demand_keys() {
        let mut b = RecMgBuffer::new(8, 4);
        for r in 0..5 {
            b.access(key(r));
            b.access(key(r)); // repeats are free
        }
        let ws = b.working_set();
        assert_eq!(ws.unique_keys, 5);
        assert_eq!(b.traffic().unique_keys, 5);
        assert_eq!(ws.epochs, 0, "default epoch length not reached");
        assert!(b.sketch_epoch_len() > 0);
        // Prefetch fills do not inflate the footprint.
        b.load_embeddings(&[], &[], &[key(77)]);
        assert_eq!(b.working_set().unique_keys, 5);
    }

    #[test]
    fn sketch_config_shapes_the_tracker() {
        let sketch = crate::config::SketchConfig {
            epoch_len: 4,
            window_epochs: 2,
            ..crate::config::SketchConfig::tiny()
        };
        let mut b = RecMgBuffer::with_sketch(8, 4, TierCost::FREE, sketch);
        assert_eq!(b.sketch_epoch_len(), 4);
        for r in 0..8 {
            b.access(key(r));
        }
        assert_eq!(b.working_set().epochs, 2);
    }

    #[test]
    fn free_tier_counts_but_costs_nothing() {
        let mut b = RecMgBuffer::new(4, 4);
        b.access(key(1));
        b.access(key(1));
        let t = b.traffic();
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 1);
        assert_eq!(t.cost_ns, 0);
    }

    #[test]
    fn traffic_merge_and_delta_are_lossless() {
        let a = TierTraffic {
            hits: 5,
            misses: 2,
            prefetch_fills: 1,
            demand_fills: 1,
            cost_ns: 70,
            unique_keys: 4,
        };
        let mut m = a;
        m.accumulate(TierTraffic {
            hits: 1,
            misses: 1,
            prefetch_fills: 0,
            demand_fills: 2,
            cost_ns: 30,
            unique_keys: 3,
        });
        assert_eq!(m.hits, 6);
        assert_eq!(m.demand_fills, 3);
        assert_eq!(m.cost_ns, 100);
        // Disjoint shard footprints add.
        assert_eq!(m.unique_keys, 7);
        let d = m.delta_since(&a);
        assert_eq!(d.hits, 1);
        assert_eq!(d.misses, 1);
        assert_eq!(d.cost_ns, 30);
        // Point-in-time field: the delta carries the later snapshot.
        assert_eq!(d.unique_keys, 7);
        // Saturation guard (counters zero; unique_keys stays `a`'s view).
        let sat = a.delta_since(&m);
        assert_eq!((sat.hits, sat.misses, sat.cost_ns), (0, 0, 0));
        assert_eq!(sat.unique_keys, 4);
    }

    #[test]
    fn refund_reprices_hit_without_touching_counts() {
        let slow = TierCost::cxl_like();
        let fast = TierCost::dram();
        let mut b = RecMgBuffer::with_cost(4, 4, slow);
        b.access(key(1)); // miss
        b.access(key(1)); // hit at slow rate
        let before = b.traffic();
        let saved = b.refund_hit(fast.hit_ns);
        assert_eq!(saved, slow.hit_ns - fast.hit_ns);
        let after = b.traffic();
        assert_eq!(after.cost_ns, before.cost_ns - saved);
        assert_eq!((after.hits, after.misses), (before.hits, before.misses));
        // A replica no cheaper than home refunds nothing.
        assert_eq!(b.refund_hit(slow.hit_ns + 5), 0);
        b.charge_cost_ns(17);
        assert_eq!(b.traffic().cost_ns, after.cost_ns + 17);
    }

    #[test]
    fn replace_storage_keeps_history_and_reprices() {
        let slow = TierCost::cxl_like();
        let fast = TierCost::dram();
        let mut b = RecMgBuffer::with_cost(4, 4, slow);
        for r in 1..=3 {
            b.access(key(r));
        }
        let counts_before = (b.traffic().hits, b.traffic().misses);
        let footprint = b.working_set().unique_keys;
        let mut staged = GpuBuffer::new(8);
        staged.insert(key(1), 4, false);
        let old = b.replace_storage(staged, fast, BackendSpec::Dram);
        assert_eq!(old.len(), 3, "retired storage returned intact");
        assert_eq!(b.capacity(), 8);
        assert_eq!(b.cost(), fast);
        // The staged resident's row materialized on the new backend.
        assert!(b.read_row(key(1)).is_some());
        assert!(b.read_row(key(2)).is_none());
        let t = b.traffic();
        assert_eq!((t.hits, t.misses), counts_before, "counters continuous");
        assert_eq!(b.working_set().unique_keys, footprint, "sketch continuous");
        assert_eq!(b.access(key(1)), BufferAccess::CacheHit);
    }

    #[test]
    fn resize_and_migration_charge() {
        let mut b = RecMgBuffer::with_cost(4, 4, TierCost::synthetic(0, 0, 0));
        for r in 1..=4 {
            b.access(key(r));
        }
        assert_eq!(b.len(), 4);
        b.resize(2);
        assert_eq!(b.capacity(), 2);
        assert_eq!(b.len(), 2);
        let slow = TierCost::cxl_like();
        b.charge_migration(slow);
        b.set_cost(slow);
        assert_eq!(b.traffic().cost_ns, 2 * slow.fill_ns);
        assert_eq!(b.cost(), slow);
    }

    #[test]
    fn rows_track_residency_across_demand_prefetch_and_resize() {
        let mut b = RecMgBuffer::new(3, 4);
        assert_eq!(b.backend_spec(), crate::backend::BackendSpec::Dram);
        b.access(key(1));
        b.load_embeddings(&[], &[], &[key(2)]);
        let mut expect = [0u8; ROW_BYTES];
        crate::backend::synth_row(key(1), &mut expect);
        assert_eq!(b.read_row(key(1)), Some(expect));
        assert!(b.read_row(key(2)).is_some());
        assert!(b.read_row(key(9)).is_none());
        // Evictions free rows: demote everything, then miss twice.
        b.load_embeddings(&[key(1), key(2)], &[false, false], &[]);
        b.access(key(3));
        b.access(key(4));
        for r in 1..=4 {
            assert_eq!(
                b.read_row(key(r)).is_some(),
                b.buffer().contains(key(r)),
                "row {r} out of lockstep"
            );
        }
        // A shrink keeps rows only for the metadata survivors.
        b.resize(2);
        assert_eq!(b.len(), 2);
        for r in 1..=4 {
            assert_eq!(b.read_row(key(r)).is_some(), b.buffer().contains(key(r)));
        }
        // Rebinding to a file backend preserves the exact bytes.
        let survivors: Vec<_> = b.buffer().keys().collect();
        b.rebind_backend(crate::backend::BackendSpec::File);
        assert_eq!(b.backend_spec(), crate::backend::BackendSpec::File);
        for k in survivors {
            let mut expect = [0u8; ROW_BYTES];
            crate::backend::synth_row(k, &mut expect);
            assert_eq!(b.read_row(k), Some(expect));
        }
    }

    #[test]
    fn async_misses_defer_fill_and_promotion_lands_it() {
        use crate::backend::{FillHandle, FillQueue};
        use std::sync::Arc;
        let cost = TierCost::synthetic(10, 100, 40);
        let queue = Arc::new(FillQueue::new(8));
        let mut b = RecMgBuffer::with_cost(4, 4, cost);
        b.set_fill_handle(Some(FillHandle {
            queue: Arc::clone(&queue),
            shard: 0,
        }));
        // Miss: served at miss − fill, nothing resident yet.
        assert_eq!(b.access(key(1)), BufferAccess::Miss);
        assert_eq!(b.len(), 0);
        assert_eq!(b.traffic().cost_ns, 100 - 40);
        // Missing again before the fill lands is an honest miss; the
        // queue coalesces the duplicate.
        assert_eq!(b.access(key(1)), BufferAccess::Miss);
        let r = queue.report();
        assert_eq!((r.queued, r.coalesced), (1, 1));
        // The fill lands: row installed, the fill cost the queue entry
        // carried from the miss is charged.
        let (shard, k, fill_ns) = queue.pop_now().expect("queued fill");
        assert_eq!((shard, fill_ns), (0, 40));
        assert!(b.promote_fill(k, fill_ns));
        assert_eq!(b.traffic().demand_fills, 1);
        assert_eq!(b.traffic().cost_ns, 2 * (100 - 40) + 40);
        assert!(b.read_row(key(1)).is_some());
        assert_eq!(b.access(key(1)), BufferAccess::CacheHit);
        // A duplicate promotion is refused and charges nothing.
        let before = b.traffic();
        assert!(!b.promote_fill(key(1), fill_ns));
        assert_eq!(b.traffic(), before);
        // Conservation: every access was exactly one hit or one miss.
        let t = b.traffic();
        assert_eq!(t.hits + t.misses, 3);
        assert!(t.demand_fills <= t.misses);
    }

    #[test]
    fn promote_fill_charges_the_carried_cost_not_the_current_tier() {
        // A shard can migrate (be re-priced) between the miss and the
        // fill landing; the promotion must charge the origin tier's fill
        // cost carried on the queue entry, not the destination's, so the
        // deferred pair still sums to the origin miss_ns.
        let mut b = RecMgBuffer::with_cost(4, 4, TierCost::synthetic(10, 100, 40));
        let before = b.traffic().cost_ns;
        assert!(b.promote_fill(key(1), 25));
        assert_eq!(b.traffic().cost_ns - before, 25);
    }

    #[test]
    fn promote_fill_evicts_when_full_and_frees_the_victim_row() {
        let mut b = RecMgBuffer::new(2, 4);
        b.access(key(1));
        b.access(key(2));
        b.load_embeddings(&[key(1), key(2)], &[false, false], &[]);
        assert!(b.promote_fill(key(3), 5));
        assert_eq!(b.len(), 2);
        assert!(b.read_row(key(3)).is_some());
        // Exactly one of the demoted residents was displaced, and its row
        // slot was freed alongside the metadata.
        let survivors = [key(1), key(2)]
            .iter()
            .filter(|&&k| b.buffer().contains(k))
            .count();
        assert_eq!(survivors, 1);
        for k in [key(1), key(2)] {
            assert_eq!(b.read_row(k).is_some(), b.buffer().contains(k));
        }
    }
}
