//! Allocation-light inference kernels for online serving.
//!
//! The paper's deployment runs both models on spare CPU cores and leans on
//! aggressive implementation work — "we aggressively employ vectorization
//! based on AVX512 instructions and use C++ ... we get more than 10×
//! performance improvement, compared with no optimization" (§VI-C). This
//! module is the analogous optimization in the reproduction: a forward pass
//! over raw `f32` slices with preallocated scratch buffers, bypassing the
//! autograd tape entirely, with two kernel lanes selected at runtime
//! ([`KernelLane`]): a portable scalar lane that doubles as the correctness
//! oracle, and an AVX2+FMA lane whose vector loads are unit-stride across
//! the batch axis. Tests assert bit-for-bit-practical equivalence (≤1e-5)
//! with the tape forward and between the lanes.
//!
//! Every kernel is *batched*: it advances `bsz` independent sequences per
//! pass over the weights, so a guidance plane serving many shards reads
//! each weight matrix once per drained batch instead of once per chunk
//! (the Software-Defined-Memory move applied to model weights instead of
//! embedding tiers). The single-item entry points are the `bsz == 1` case
//! of the same code path, which is what makes batched-vs-single parity a
//! structural property rather than a numerical accident: per item, the
//! sequence of f32 operations is identical regardless of batch size — the
//! scalar lane accumulates with plain multiply-add, the AVX2 lane with FMA,
//! each uniformly across every batch size.
//!
//! Batched tensors are flat row-major slices in *batch-interleaved*
//! time-major layout: `[t, dim, bsz]`, element `(t, b, j)` at
//! `(t·dim + j)·bsz + b`. The `bsz` lanes of one feature are contiguous, so
//! an 8-wide SIMD load advances 8 lanes of the same feature at once; at
//! `bsz == 1` the layout coincides with a plain `[t, dim]` sequence.
//!
//! Weight layout is taken from the owning model's parameter order, which is
//! fixed by construction: embedding table, then per stack
//! `(enc.wx, enc.wh, enc.b, dec.wx, dec.wh, dec.b, attn.w, attn.b)`, then
//! the head layers. Weight matrices are wrapped in [`FastMat`], which is
//! either the exact `f32` tensor or its int8 quantization
//! ([`GuidancePrecision::Int8`]); biases and the embedding table stay
//! `f32` in both modes.

use recmg_tensor::align::AlignedVec;
use recmg_tensor::quant::{QuantScratch, QuantizedMatrix};
use recmg_tensor::simd::avx2_fma_available;
use recmg_tensor::{stable_sigmoid, Tensor};

pub use recmg_tensor::simd::{active_lane, KernelLane};

use crate::config::GuidancePrecision;

/// A compiled weight matrix: exact `f32` or symmetric int8.
///
/// Both variants expose the same batch-interleaved accumulating matmul, so
/// every kernel in this module is precision-agnostic.
#[derive(Debug, Clone)]
pub(crate) enum FastMat {
    F32(Tensor),
    Int8(QuantizedMatrix),
}

impl FastMat {
    pub(crate) fn compile(w: Tensor, precision: GuidancePrecision) -> Self {
        match precision {
            GuidancePrecision::F32 => FastMat::F32(w),
            GuidancePrecision::Int8 => FastMat::Int8(QuantizedMatrix::quantize(&w)),
        }
    }

    pub(crate) fn rows(&self) -> usize {
        match self {
            FastMat::F32(w) => w.rows(),
            FastMat::Int8(q) => q.rows(),
        }
    }

    pub(crate) fn cols(&self) -> usize {
        match self {
            FastMat::F32(w) => w.cols(),
            FastMat::Int8(q) => q.cols(),
        }
    }

    /// Weight footprint in bytes.
    pub(crate) fn size_bytes(&self) -> usize {
        match self {
            FastMat::F32(w) => w.len() * std::mem::size_of::<f32>(),
            FastMat::Int8(q) => q.size_bytes(),
        }
    }

    /// `out[c·bsz + b] += (x_b @ W)[c]` over the interleaved batch.
    fn accumulate(
        &self,
        lane: KernelLane,
        bsz: usize,
        xs: &[f32],
        out: &mut [f32],
        qs: &mut QuantScratch,
    ) {
        match self {
            FastMat::F32(w) => matacc(lane, w.data(), w.rows(), w.cols(), bsz, xs, out),
            FastMat::Int8(q) => q.vecmul_batch(lane, bsz, xs, out, qs),
        }
    }
}

/// Batch-interleaved accumulating f32 matmul:
/// `out[g·bsz + b] += Σ_i xs[i·bsz + b] · w[i·out_dim + g]`.
///
/// Both lanes accumulate every output element in input-feature order — the
/// scalar lane with plain multiply-add, the AVX2 lane with FMA — uniformly
/// across batch sizes, so per-item results within a lane are independent of
/// `bsz` (the structural batched-vs-single parity the session tests pin
/// down bit-exactly). The lanes differ only at rounding level (FMA skips
/// the intermediate rounding), which the 1e-5 lane-parity suite bounds.
pub(crate) fn matacc(
    lane: KernelLane,
    w: &[f32],
    in_dim: usize,
    out_dim: usize,
    bsz: usize,
    xs: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(w.len(), in_dim * out_dim);
    debug_assert_eq!(xs.len(), in_dim * bsz);
    debug_assert_eq!(out.len(), out_dim * bsz);
    match lane {
        KernelLane::Avx2 if avx2_fma_available() => {
            #[cfg(target_arch = "x86_64")]
            unsafe {
                matacc_avx2(w, in_dim, out_dim, bsz, xs, out)
            }
            #[cfg(not(target_arch = "x86_64"))]
            matacc_scalar(w, in_dim, out_dim, bsz, xs, out)
        }
        _ => matacc_scalar(w, in_dim, out_dim, bsz, xs, out),
    }
}

fn matacc_scalar(
    w: &[f32],
    in_dim: usize,
    out_dim: usize,
    bsz: usize,
    xs: &[f32],
    out: &mut [f32],
) {
    if bsz == 1 {
        for (i, row) in w.chunks_exact(out_dim).enumerate().take(in_dim) {
            let xv = xs[i];
            if xv == 0.0 {
                continue;
            }
            for (o, &wv) in out.iter_mut().zip(row) {
                *o += xv * wv;
            }
        }
    } else {
        for (i, row) in w.chunks_exact(out_dim).enumerate().take(in_dim) {
            let x = &xs[i * bsz..(i + 1) * bsz];
            if x.iter().all(|&v| v == 0.0) {
                continue;
            }
            for (g, &wv) in row.iter().enumerate() {
                let o = &mut out[g * bsz..(g + 1) * bsz];
                for (ov, &xv) in o.iter_mut().zip(x) {
                    *ov += xv * wv;
                }
            }
        }
    }
}

/// The AVX2+FMA lane: at `bsz == 1` vectorizes 8-wide over the output
/// axis; at `bsz > 1` the interleaved layout makes the batch axis
/// unit-stride, so it vectorizes 8-wide (then 4-wide, then scalar `fma`)
/// over the lanes of each `(input, output)` weight element. Every element
/// accumulates in input-feature order with FMA in all paths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matacc_avx2(
    w: &[f32],
    in_dim: usize,
    out_dim: usize,
    bsz: usize,
    xs: &[f32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    if bsz == 1 {
        for i in 0..in_dim {
            let xv = xs[i];
            if xv == 0.0 {
                continue;
            }
            let row = &w[i * out_dim..(i + 1) * out_dim];
            let xvv = _mm256_set1_ps(xv);
            let mut g = 0;
            while g + 8 <= out_dim {
                let o = _mm256_loadu_ps(out.as_ptr().add(g));
                let wv = _mm256_loadu_ps(row.as_ptr().add(g));
                _mm256_storeu_ps(out.as_mut_ptr().add(g), _mm256_fmadd_ps(xvv, wv, o));
                g += 8;
            }
            while g < out_dim {
                out[g] = xv.mul_add(row[g], out[g]);
                g += 1;
            }
        }
    } else {
        for i in 0..in_dim {
            let x = &xs[i * bsz..(i + 1) * bsz];
            let row = &w[i * out_dim..(i + 1) * out_dim];
            for (g, &wv) in row.iter().enumerate() {
                let o = &mut out[g * bsz..(g + 1) * bsz];
                let wvv = _mm256_set1_ps(wv);
                let mut b = 0;
                while b + 8 <= bsz {
                    let ov = _mm256_loadu_ps(o.as_ptr().add(b));
                    let xv = _mm256_loadu_ps(x.as_ptr().add(b));
                    _mm256_storeu_ps(o.as_mut_ptr().add(b), _mm256_fmadd_ps(xv, wvv, ov));
                    b += 8;
                }
                if b + 4 <= bsz {
                    let ov = _mm_loadu_ps(o.as_ptr().add(b));
                    let xv = _mm_loadu_ps(x.as_ptr().add(b));
                    _mm_storeu_ps(
                        o.as_mut_ptr().add(b),
                        _mm_fmadd_ps(xv, _mm256_castps256_ps128(wvv), ov),
                    );
                    b += 4;
                }
                while b < bsz {
                    o[b] = x[b].mul_add(wv, o[b]);
                    b += 1;
                }
            }
        }
    }
}

/// Elementwise stripe multiply-accumulate: `acc[b] += a[b] · x[b]` over one
/// batch stripe (the attention dot/context inner loop).
fn mul_acc(lane: KernelLane, bsz: usize, a: &[f32], x: &[f32], acc: &mut [f32]) {
    match lane {
        KernelLane::Avx2 if avx2_fma_available() => {
            #[cfg(target_arch = "x86_64")]
            unsafe {
                mul_acc_avx2(bsz, a, x, acc)
            }
            #[cfg(not(target_arch = "x86_64"))]
            mul_acc_scalar(bsz, a, x, acc)
        }
        _ => mul_acc_scalar(bsz, a, x, acc),
    }
}

fn mul_acc_scalar(bsz: usize, a: &[f32], x: &[f32], acc: &mut [f32]) {
    for b in 0..bsz {
        acc[b] += a[b] * x[b];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mul_acc_avx2(bsz: usize, a: &[f32], x: &[f32], acc: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut b = 0;
    while b + 8 <= bsz {
        let av = _mm256_loadu_ps(a.as_ptr().add(b));
        let xv = _mm256_loadu_ps(x.as_ptr().add(b));
        let cv = _mm256_loadu_ps(acc.as_ptr().add(b));
        _mm256_storeu_ps(acc.as_mut_ptr().add(b), _mm256_fmadd_ps(av, xv, cv));
        b += 8;
    }
    if b + 4 <= bsz {
        let av = _mm_loadu_ps(a.as_ptr().add(b));
        let xv = _mm_loadu_ps(x.as_ptr().add(b));
        let cv = _mm_loadu_ps(acc.as_ptr().add(b));
        _mm_storeu_ps(acc.as_mut_ptr().add(b), _mm_fmadd_ps(av, xv, cv));
        b += 4;
    }
    while b < bsz {
        acc[b] = a[b].mul_add(x[b], acc[b]);
        b += 1;
    }
}

/// Reusable buffers for batched fast-model forwards
/// ([`FastCachingModel::probs_batch_with`] /
/// [`FastPrefetchModel::codes_batch_with`]).
///
/// One `FastScratch` per serving thread removes every per-forward heap
/// allocation from the guidance hot loop: the stack-level scratch
/// (`gates`/`enc`/`scores`/`cat` plus the int8 activation buffers) and the
/// two ping-pong sequence buffers that carry activations between LSTM
/// stacks. Buffers grow to the largest batch seen and are reused verbatim
/// afterwards.
///
/// [`FastCachingModel::probs_batch_with`]: crate::FastCachingModel::probs_batch_with
/// [`FastPrefetchModel::codes_batch_with`]: crate::FastPrefetchModel::codes_batch_with
#[derive(Debug, Clone)]
pub struct FastScratch {
    pub(crate) stack: Scratch,
    pub(crate) seq_a: AlignedVec<f32>,
    pub(crate) seq_b: AlignedVec<f32>,
}

impl Default for FastScratch {
    fn default() -> Self {
        FastScratch {
            stack: Scratch::default(),
            seq_a: AlignedVec::with_stagger(1920),
            seq_b: AlignedVec::with_stagger(2112),
        }
    }
}

/// One LSTM cell's weights.
#[derive(Debug, Clone)]
pub(crate) struct FastLstm {
    wx: FastMat, // [e, 4h]
    wh: FastMat, // [h, 4h]
    b: Tensor,   // [4h]
    e: usize,
    h: usize,
}

impl FastLstm {
    pub(crate) fn new(wx: Tensor, wh: Tensor, b: Tensor, precision: GuidancePrecision) -> Self {
        let e = wx.rows();
        let h = wh.rows();
        debug_assert_eq!(wx.cols(), 4 * h);
        debug_assert_eq!(b.len(), 4 * h);
        FastLstm {
            wx: FastMat::compile(wx, precision),
            wh: FastMat::compile(wh, precision),
            b,
            e,
            h,
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        self.wx.size_bytes() + self.wh.size_bytes() + self.b.len() * std::mem::size_of::<f32>()
    }

    /// One step over `bsz` independent lanes: consumes `x` (`[e, bsz]`
    /// interleaved), updates `h`/`c` (`[h, bsz]`) in place, using `gates`
    /// (`[4h, bsz]`) as scratch. Each weight row is read once and applied
    /// to every lane, so the weight traffic of a step is independent of
    /// `bsz`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step_batch(
        &self,
        lane: KernelLane,
        bsz: usize,
        x: &[f32],
        h: &mut [f32],
        c: &mut [f32],
        gates: &mut [f32],
        qs: &mut QuantScratch,
    ) {
        let hd = self.h;
        let g4 = 4 * hd;
        debug_assert_eq!(x.len(), bsz * self.e);
        debug_assert_eq!(h.len(), bsz * hd);
        debug_assert_eq!(c.len(), bsz * hd);
        debug_assert_eq!(gates.len(), bsz * g4);
        for (g, stripe) in gates.chunks_exact_mut(bsz).enumerate().take(g4) {
            stripe.fill(self.b.data()[g]);
        }
        self.wx.accumulate(lane, bsz, x, gates, qs);
        self.wh.accumulate(lane, bsz, h, gates, qs);
        for j in 0..hd {
            for b in 0..bsz {
                let i = stable_sigmoid(gates[j * bsz + b]);
                let f = stable_sigmoid(gates[(hd + j) * bsz + b]);
                let g = gates[(2 * hd + j) * bsz + b].tanh();
                let o = stable_sigmoid(gates[(3 * hd + j) * bsz + b]);
                let cv = &mut c[j * bsz + b];
                *cv = f * *cv + i * g;
                h[j * bsz + b] = o * cv.tanh();
            }
        }
    }

    /// One step of a single sequence — the `bsz == 1` case of
    /// [`FastLstm::step_batch`], kept as the per-item reference for the
    /// parity proptests (production code always goes through the batched
    /// entry points).
    #[cfg(test)]
    pub(crate) fn step(
        &self,
        lane: KernelLane,
        x: &[f32],
        h: &mut [f32],
        c: &mut [f32],
        gates: &mut [f32],
    ) {
        let mut qs = QuantScratch::default();
        self.step_batch(lane, 1, x, h, c, gates, &mut qs);
    }

    pub(crate) fn hidden(&self) -> usize {
        self.h
    }
}

/// Batched dense layer `Y = X W + b` in interleaved layout: `xs` is
/// `[in, bsz]`, `out` is `[out, bsz]`. One pass over the weight matrix
/// serves all `bsz` lanes.
pub(crate) fn fast_linear_batch(
    lane: KernelLane,
    w: &FastMat,
    b: &Tensor,
    bsz: usize,
    xs: &[f32],
    out: &mut [f32],
    qs: &mut QuantScratch,
) {
    let out_dim = w.cols();
    debug_assert_eq!(xs.len(), bsz * w.rows());
    debug_assert_eq!(out.len(), bsz * out_dim);
    for (g, stripe) in out.chunks_exact_mut(bsz).enumerate().take(out_dim) {
        stripe.fill(b.data()[g]);
    }
    w.accumulate(lane, bsz, xs, out, qs);
}

/// Dense layer `y = x W + b` over slices — the `bsz == 1` case of
/// [`fast_linear_batch`], kept as the per-item reference for the parity
/// tests.
#[cfg(test)]
pub(crate) fn fast_linear(lane: KernelLane, w: &FastMat, b: &Tensor, x: &[f32], out: &mut [f32]) {
    let mut qs = QuantScratch::default();
    fast_linear_batch(lane, w, b, 1, x, out, &mut qs);
}

/// Shared driver for the batched model forwards: buckets non-empty
/// `chunks` by length, and per bucket gathers the interleaved time-major
/// `[t, d, bsz]` embedding batch from `emb`/`vocab` and runs it through
/// `stacks` (all aligned when `out_len` is `None`; the final stack
/// autoregressive for `Some(n)`). For each finished bucket, `emit`
/// receives `(bucket chunk indices, t, bsz, activations, spare, quant
/// scratch)` — the final interleaved activations plus a reusable spare
/// buffer for the head computation — and scatters into the model's output.
/// Both fast models run their forwards through this one path, so
/// bucketing, gathering, and stack chaining cannot drift apart between
/// them.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub(crate) fn forward_buckets(
    lane: KernelLane,
    emb: &Tensor,
    vocab: usize,
    stacks: &[FastStack],
    out_len: Option<usize>,
    chunks: &[&[recmg_trace::VectorKey]],
    scratch: &mut FastScratch,
    mut emit: impl FnMut(
        &[usize],
        usize,
        usize,
        &mut AlignedVec<f32>,
        &mut AlignedVec<f32>,
        &mut QuantScratch,
    ),
) {
    let d = emb.cols();
    let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, c) in chunks.iter().enumerate() {
        if !c.is_empty() {
            by_len.entry(c.len()).or_default().push(i);
        }
    }
    let FastScratch {
        stack,
        seq_a,
        seq_b,
    } = scratch;
    for (t, bucket) in by_len {
        let bsz = bucket.len();
        seq_a.clear();
        seq_a.resize(t * bsz * d, 0.0);
        for (b, &ci) in bucket.iter().enumerate() {
            for (ti, key) in chunks[ci].iter().enumerate() {
                let row = key.bucket(vocab);
                let src = &emb.data()[row * d..(row + 1) * d];
                let dst = &mut seq_a[ti * d * bsz..(ti + 1) * d * bsz];
                for (j, &v) in src.iter().enumerate() {
                    dst[j * bsz + b] = v;
                }
            }
        }
        let (mut cur, mut next) = (&mut *seq_a, &mut *seq_b);
        let last = stacks.len() - 1;
        for (i, s) in stacks.iter().enumerate() {
            let mode = if i == last { out_len } else { None };
            s.forward_batch(lane, bsz, t, cur, mode, stack, next);
            std::mem::swap(&mut cur, &mut next);
        }
        emit(&bucket, t, bsz, cur, next, &mut stack.quant);
    }
}

/// Stack-level scratch for [`FastStack::forward_batch`]: encoder/decoder
/// state, gate buffers, the interleaved encoder-state tape, the attention
/// workspace, and the int8 activation buffers. Reused across forwards so
/// the hot loop allocates nothing.
#[derive(Debug, Clone)]
pub(crate) struct Scratch {
    gates: AlignedVec<f32>,  // [4h, bsz]
    hs: AlignedVec<f32>,     // [h, bsz] encoder hidden
    cs: AlignedVec<f32>,     // [h, bsz] encoder cell
    dh: AlignedVec<f32>,     // [h, bsz] decoder hidden
    dc: AlignedVec<f32>,     // [h, bsz] decoder cell
    enc: AlignedVec<f32>,    // [t_in, h, bsz] encoder states
    scores: AlignedVec<f32>, // [t_in, bsz] attention scores
    denom: AlignedVec<f32>,  // [bsz] softmax denominators
    cat: AlignedVec<f32>,    // [2h, bsz] context ++ query
    feed: AlignedVec<f32>,   // [h, bsz] autoregressive feed
    pub(crate) quant: QuantScratch,
}

impl Default for Scratch {
    fn default() -> Self {
        // Distinct 4 KiB-page staggers per buffer (see `AlignedVec`):
        // kernel throughput is then independent of which scratch instance
        // a thread happens to own. `FastScratch`'s sequence buffers take
        // 1920/2112 and `QuantScratch` takes 2496..3264.
        Scratch {
            gates: AlignedVec::with_stagger(0),
            hs: AlignedVec::with_stagger(192),
            cs: AlignedVec::with_stagger(384),
            dh: AlignedVec::with_stagger(576),
            dc: AlignedVec::with_stagger(768),
            enc: AlignedVec::with_stagger(960),
            scores: AlignedVec::with_stagger(1152),
            denom: AlignedVec::with_stagger(1344),
            cat: AlignedVec::with_stagger(1536),
            feed: AlignedVec::with_stagger(1728),
            quant: QuantScratch::default(),
        }
    }
}

impl Scratch {
    fn prepare(&mut self, bsz: usize, t_in: usize, h: usize) {
        // Only the encoder state (`hs`/`cs`) must start at zero; every
        // other buffer is fully overwritten before its first read, so a
        // plain resize — which zeroes growth only — keeps the lengths
        // exact without re-memsetting the (large) tape and gate buffers
        // on every forward.
        let fit = |v: &mut AlignedVec<f32>, n: usize| v.resize(n, 0.0);
        fit(&mut self.gates, bsz * 4 * h);
        fit(&mut self.dh, bsz * h);
        fit(&mut self.dc, bsz * h);
        fit(&mut self.enc, t_in * bsz * h);
        fit(&mut self.scores, bsz * t_in);
        fit(&mut self.denom, bsz);
        fit(&mut self.cat, bsz * 2 * h);
        fit(&mut self.feed, bsz * h);
        self.hs.clear();
        self.hs.resize(bsz * h, 0.0);
        self.cs.clear();
        self.cs.resize(bsz * h, 0.0);
    }
}

/// One seq2seq stack (encoder + decoder + attention).
#[derive(Debug, Clone)]
pub(crate) struct FastStack {
    pub(crate) enc: FastLstm,
    pub(crate) dec: FastLstm,
    attn_w: FastMat, // [2h, h]
    attn_b: Tensor,  // [h]
}

impl FastStack {
    pub(crate) fn new(
        enc: FastLstm,
        dec: FastLstm,
        attn_w: Tensor,
        attn_b: Tensor,
        precision: GuidancePrecision,
    ) -> Self {
        debug_assert_eq!(attn_w.rows(), 2 * enc.hidden());
        debug_assert_eq!(attn_w.cols(), enc.hidden());
        FastStack {
            enc,
            dec,
            attn_w: FastMat::compile(attn_w, precision),
            attn_b,
        }
    }

    pub(crate) fn size_bytes(&self) -> usize {
        self.enc.size_bytes()
            + self.dec.size_bytes()
            + self.attn_w.size_bytes()
            + self.attn_b.len() * std::mem::size_of::<f32>()
    }

    /// Batched Luong attention: for every lane `b`, scores `query[·, b]`
    /// against the `t_in` encoder states of that lane (`enc` is
    /// `[t_in, h, bsz]` interleaved), softmaxes, builds the context ++
    /// query concatenation in `cat`, and writes the combined tanh output
    /// into `out` (`[h, bsz]`). Per lane the operation order matches the
    /// historical single-item path exactly.
    #[allow(clippy::too_many_arguments)]
    fn attend_batch(
        &self,
        lane: KernelLane,
        bsz: usize,
        t_in: usize,
        query: &[f32],
        enc: &[f32],
        scores: &mut [f32],
        denom: &mut [f32],
        cat: &mut [f32],
        out: &mut [f32],
        qs: &mut QuantScratch,
    ) {
        let h = self.enc.hidden();
        for t in 0..t_in {
            let (sc, state) = (
                &mut scores[t * bsz..(t + 1) * bsz],
                &enc[t * h * bsz..(t + 1) * h * bsz],
            );
            sc.fill(0.0);
            for j in 0..h {
                mul_acc(
                    lane,
                    bsz,
                    &query[j * bsz..(j + 1) * bsz],
                    &state[j * bsz..(j + 1) * bsz],
                    sc,
                );
            }
        }
        // Softmax per lane (strided walks over the interleaved scores),
        // then fold the denominator into the scores so the context loop
        // reads ready-made attention weights.
        for b in 0..bsz {
            let mut mx = f32::NEG_INFINITY;
            for t in 0..t_in {
                mx = mx.max(scores[t * bsz + b]);
            }
            let mut dn = 0.0;
            for t in 0..t_in {
                let s = (scores[t * bsz + b] - mx).exp();
                scores[t * bsz + b] = s;
                dn += s;
            }
            denom[b] = dn;
        }
        for t in 0..t_in {
            for b in 0..bsz {
                scores[t * bsz + b] /= denom[b];
            }
        }
        cat[..h * bsz].fill(0.0);
        for t in 0..t_in {
            let (w, state) = (
                &scores[t * bsz..(t + 1) * bsz],
                &enc[t * h * bsz..(t + 1) * h * bsz],
            );
            for j in 0..h {
                mul_acc(
                    lane,
                    bsz,
                    w,
                    &state[j * bsz..(j + 1) * bsz],
                    &mut cat[j * bsz..(j + 1) * bsz],
                );
            }
        }
        cat[h * bsz..2 * h * bsz].copy_from_slice(&query[..h * bsz]);
        fast_linear_batch(lane, &self.attn_w, &self.attn_b, bsz, cat, out, qs);
        for o in out.iter_mut() {
            *o = o.tanh();
        }
    }

    /// Runs the stack over `bsz` same-length sequences. `inputs` is
    /// interleaved time-major `[t_in, e, bsz]`; the output written to
    /// `out` is interleaved time-major `[t_out, h, bsz]`. `out_len = None`
    /// runs aligned (one output per input); `Some(n)` runs autoregressive.
    /// All intermediate state lives in `s` — the forward allocates nothing
    /// beyond growing `out`/`s` on first use.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_batch(
        &self,
        lane: KernelLane,
        bsz: usize,
        t_in: usize,
        inputs: &[f32],
        out_len: Option<usize>,
        s: &mut Scratch,
        out: &mut AlignedVec<f32>,
    ) {
        let h = self.enc.hidden();
        let e = self.enc.e;
        debug_assert_eq!(inputs.len(), t_in * bsz * e);
        s.prepare(bsz, t_in, h);
        for t in 0..t_in {
            self.enc.step_batch(
                lane,
                bsz,
                &inputs[t * bsz * e..(t + 1) * bsz * e],
                &mut s.hs,
                &mut s.cs,
                &mut s.gates,
                &mut s.quant,
            );
            s.enc[t * bsz * h..(t + 1) * bsz * h].copy_from_slice(&s.hs);
        }
        s.dh.copy_from_slice(&s.hs);
        s.dc.copy_from_slice(&s.cs);
        let t_out = out_len.unwrap_or(t_in);
        out.clear();
        out.resize(t_out * bsz * h, 0.0);
        match out_len {
            None => {
                for t in 0..t_in {
                    self.dec.step_batch(
                        lane,
                        bsz,
                        &s.enc[t * bsz * h..(t + 1) * bsz * h],
                        &mut s.dh,
                        &mut s.dc,
                        &mut s.gates,
                        &mut s.quant,
                    );
                    self.attend_batch(
                        lane,
                        bsz,
                        t_in,
                        &s.dh,
                        &s.enc,
                        &mut s.scores,
                        &mut s.denom,
                        &mut s.cat,
                        &mut out[t * bsz * h..(t + 1) * bsz * h],
                        &mut s.quant,
                    );
                }
            }
            Some(n) => {
                s.feed.copy_from_slice(&s.hs);
                for t in 0..n {
                    self.dec.step_batch(
                        lane,
                        bsz,
                        &s.feed,
                        &mut s.dh,
                        &mut s.dc,
                        &mut s.gates,
                        &mut s.quant,
                    );
                    let slot = &mut out[t * bsz * h..(t + 1) * bsz * h];
                    self.attend_batch(
                        lane,
                        bsz,
                        t_in,
                        &s.dh,
                        &s.enc,
                        &mut s.scores,
                        &mut s.denom,
                        &mut s.cat,
                        slot,
                        &mut s.quant,
                    );
                    s.feed.copy_from_slice(slot);
                }
            }
        }
    }

    /// Runs the stack over a single sequence — the `bsz == 1` case of
    /// [`FastStack::forward_batch`], kept as the per-item reference for
    /// the parity proptests and tape-equivalence tests.
    #[cfg(test)]
    pub(crate) fn forward(
        &self,
        lane: KernelLane,
        inputs: &[Vec<f32>],
        out_len: Option<usize>,
    ) -> Vec<Vec<f32>> {
        let h = self.enc.hidden();
        let mut flat = Vec::with_capacity(inputs.len() * self.enc.e);
        for x in inputs {
            flat.extend_from_slice(x);
        }
        let mut scratch = Scratch::default();
        let mut out = AlignedVec::new();
        self.forward_batch(
            lane,
            1,
            inputs.len(),
            &flat,
            out_len,
            &mut scratch,
            &mut out,
        );
        out.chunks(h).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use recmg_tensor::nn::{DecoderFeed, Module, Seq2SeqStack};
    use recmg_tensor::{ParamStore, Tape, Tensor};

    /// The lanes the host can execute: scalar always, AVX2 when available
    /// (both CI legs run on AVX2-capable hosts, so the SIMD kernels are
    /// exercised explicitly even when dispatch is forced to scalar).
    fn lanes() -> Vec<KernelLane> {
        let mut v = vec![KernelLane::Scalar];
        if KernelLane::Avx2.available() {
            v.push(KernelLane::Avx2);
        }
        v
    }

    /// Builds a tape stack and its fast mirror from the same weights.
    fn paired_stack(seed: u64, e: usize, h: usize) -> (ParamStore, Seq2SeqStack, FastStack) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = Seq2SeqStack::new(&mut store, &mut rng, "s", e, h);
        let ids = stack.params(); // enc(wx,wh,b), dec(wx,wh,b), attn(w,b)
        let w = |i: usize| store.value(ids[i]).clone();
        let p = GuidancePrecision::F32;
        let fast = FastStack::new(
            FastLstm::new(w(0), w(1), w(2), p),
            FastLstm::new(w(3), w(4), w(5), p),
            w(6),
            w(7),
            p,
        );
        (store, stack, fast)
    }

    fn tape_forward(
        store: &ParamStore,
        stack: &Seq2SeqStack,
        inputs: &[Vec<f32>],
        feed: DecoderFeed,
    ) -> Vec<Vec<f32>> {
        let mut tape = Tape::new(store);
        let vars: Vec<_> = inputs
            .iter()
            .map(|x| tape.constant(Tensor::from_vec(x.clone(), &[1, x.len()])))
            .collect();
        let outs = stack.forward(&mut tape, store, &vars, feed);
        outs.iter()
            .map(|&o| tape.value(o).data().to_vec())
            .collect()
    }

    fn inputs(e: usize, t: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|i| {
                (0..e)
                    .map(|j| ((i * e + j) as f32 * 0.13).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn aligned_matches_tape_on_every_lane() {
        let (store, stack, fast) = paired_stack(5, 6, 8);
        let xs = inputs(6, 7);
        let a = tape_forward(&store, &stack, &xs, DecoderFeed::Aligned);
        for lane in lanes() {
            let b = fast.forward(lane, &xs, None);
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(&b) {
                for (x, y) in ra.iter().zip(rb) {
                    assert!((x - y).abs() < 1e-5, "lane {}: {x} vs {y}", lane.name());
                }
            }
        }
    }

    #[test]
    fn autoregressive_matches_tape_on_every_lane() {
        let (store, stack, fast) = paired_stack(9, 5, 7);
        let xs = inputs(5, 10);
        let a = tape_forward(&store, &stack, &xs, DecoderFeed::Autoregressive(4));
        for lane in lanes() {
            let b = fast.forward(lane, &xs, Some(4));
            assert_eq!(b.len(), 4);
            for (ra, rb) in a.iter().zip(&b) {
                for (x, y) in ra.iter().zip(rb) {
                    assert!((x - y).abs() < 1e-5, "lane {}: {x} vs {y}", lane.name());
                }
            }
        }
    }

    #[test]
    fn fast_linear_matches_tensor() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::rand_uniform(&mut rng, &[5, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[3], -1.0, 1.0);
        let x = vec![0.1, -0.2, 0.3, 0.0, 0.5];
        let exact = Tensor::from_vec(x.clone(), &[1, 5]).matmul(&w);
        let wm = FastMat::compile(w, GuidancePrecision::F32);
        for lane in lanes() {
            let mut out = vec![0.0; 3];
            fast_linear(lane, &wm, &b, &x, &mut out);
            for (j, &o) in out.iter().enumerate() {
                assert!((o - (exact.at(0, j) + b.data()[j])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn quantized_stack_sizes_shrink() {
        let (_s, _t, f32_stack) = paired_stack(11, 6, 8);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let stack = Seq2SeqStack::new(&mut store, &mut rng, "s", 6, 8);
        let ids = stack.params();
        let w = |i: usize| store.value(ids[i]).clone();
        let p = GuidancePrecision::Int8;
        let q_stack = FastStack::new(
            FastLstm::new(w(0), w(1), w(2), p),
            FastLstm::new(w(3), w(4), w(5), p),
            w(6),
            w(7),
            p,
        );
        assert!(q_stack.size_bytes() * 3 < f32_stack.size_bytes());
    }

    /// Random batched input, interleaved time-major `[t, e, bsz]`.
    fn batch_inputs(rng: &mut StdRng, t: usize, bsz: usize, e: usize) -> Vec<f32> {
        (0..t * bsz * e).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Lane `b` of an interleaved batch, as the per-item `Vec<Vec<f32>>`.
    fn item(flat: &[f32], t: usize, bsz: usize, dim: usize, b: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|ti| (0..dim).map(|j| flat[(ti * dim + j) * bsz + b]).collect())
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `fast_linear_batch` over B lanes matches B single-item calls on
        /// every lane, f32 and int8.
        #[test]
        fn fast_linear_batch_matches_single(
            seed in 0u64..1_000,
            bsz in 1usize..12,
            in_dim in 1usize..12,
            out_dim in 1usize..10,
            quantized in 0u32..2,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::rand_uniform(&mut rng, &[in_dim, out_dim], -1.0, 1.0);
            let b = Tensor::rand_uniform(&mut rng, &[out_dim], -1.0, 1.0);
            let p = if quantized == 0 { GuidancePrecision::F32 } else { GuidancePrecision::Int8 };
            let wm = FastMat::compile(w, p);
            // Interleaved input [in_dim, bsz].
            let xs: Vec<f32> = (0..bsz * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            for lane in lanes() {
                let mut batched = vec![0.0f32; bsz * out_dim];
                let mut qs = recmg_tensor::quant::QuantScratch::default();
                fast_linear_batch(lane, &wm, &b, bsz, &xs, &mut batched, &mut qs);
                let mut single = vec![0.0f32; out_dim];
                for bi in 0..bsz {
                    let x: Vec<f32> = (0..in_dim).map(|i| xs[i * bsz + bi]).collect();
                    fast_linear(lane, &wm, &b, &x, &mut single);
                    for (j, &y) in single.iter().enumerate() {
                        let x = batched[j * bsz + bi];
                        prop_assert!(
                            (x - y).abs() < 1e-5,
                            "lane {} item {} col {}: {} vs {}", lane.name(), bi, j, x, y
                        );
                    }
                }
            }
        }

        /// SIMD-vs-scalar lane parity on `fast_linear_batch`: both lanes
        /// run explicitly and agree to 1e-5.
        #[test]
        fn lane_parity_fast_linear_batch(
            seed in 0u64..1_000,
            bsz in 1usize..17,
            in_dim in 1usize..16,
            out_dim in 1usize..12,
        ) {
            if !KernelLane::Avx2.available() {
                return;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::rand_uniform(&mut rng, &[in_dim, out_dim], -1.0, 1.0);
            let b = Tensor::rand_uniform(&mut rng, &[out_dim], -1.0, 1.0);
            let wm = FastMat::compile(w, GuidancePrecision::F32);
            let xs: Vec<f32> = (0..bsz * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut qs = recmg_tensor::quant::QuantScratch::default();
            let mut scalar = vec![0.0f32; bsz * out_dim];
            fast_linear_batch(KernelLane::Scalar, &wm, &b, bsz, &xs, &mut scalar, &mut qs);
            let mut avx2 = vec![0.0f32; bsz * out_dim];
            fast_linear_batch(KernelLane::Avx2, &wm, &b, bsz, &xs, &mut avx2, &mut qs);
            for (i, (s, v)) in scalar.iter().zip(&avx2).enumerate() {
                prop_assert!((s - v).abs() < 1e-5, "elem {}: scalar {} vs avx2 {}", i, s, v);
            }
        }

        /// `step_batch` over B lanes matches B single-lane steps on every
        /// lane.
        #[test]
        fn step_batch_matches_single(
            seed in 0u64..1_000,
            bsz in 1usize..12,
            e in 1usize..8,
            h in 1usize..8,
            steps in 1usize..5,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cell = FastLstm::new(
                Tensor::rand_uniform(&mut rng, &[e, 4 * h], -0.5, 0.5),
                Tensor::rand_uniform(&mut rng, &[h, 4 * h], -0.5, 0.5),
                Tensor::rand_uniform(&mut rng, &[4 * h], -0.5, 0.5),
                GuidancePrecision::F32,
            );
            let xs: Vec<Vec<f32>> = (0..steps).map(|_| batch_inputs(&mut rng, 1, bsz, e)).collect();
            for lane in lanes() {
                let mut bh = vec![0.0f32; bsz * h];
                let mut bc = vec![0.0f32; bsz * h];
                let mut bg = vec![0.0f32; bsz * 4 * h];
                let mut qs = recmg_tensor::quant::QuantScratch::default();
                let mut sh = vec![vec![0.0f32; h]; bsz];
                let mut sc = vec![vec![0.0f32; h]; bsz];
                let mut sg = vec![0.0f32; 4 * h];
                for x in &xs {
                    cell.step_batch(lane, bsz, x, &mut bh, &mut bc, &mut bg, &mut qs);
                    for b in 0..bsz {
                        let xi: Vec<f32> = (0..e).map(|i| x[i * bsz + b]).collect();
                        cell.step(lane, &xi, &mut sh[b], &mut sc[b], &mut sg);
                    }
                }
                for b in 0..bsz {
                    for j in 0..h {
                        prop_assert!((bh[j * bsz + b] - sh[b][j]).abs() < 1e-5);
                        prop_assert!((bc[j * bsz + b] - sc[b][j]).abs() < 1e-5);
                    }
                }
            }
        }

        /// SIMD-vs-scalar lane parity on `step_batch`: both lanes run the
        /// same multi-step recurrence explicitly and agree to 1e-5.
        #[test]
        fn lane_parity_step_batch(
            seed in 0u64..1_000,
            bsz in 1usize..17,
            e in 1usize..8,
            h in 1usize..8,
            steps in 1usize..5,
        ) {
            if !KernelLane::Avx2.available() {
                return;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let cell = FastLstm::new(
                Tensor::rand_uniform(&mut rng, &[e, 4 * h], -0.5, 0.5),
                Tensor::rand_uniform(&mut rng, &[h, 4 * h], -0.5, 0.5),
                Tensor::rand_uniform(&mut rng, &[4 * h], -0.5, 0.5),
                GuidancePrecision::F32,
            );
            let xs: Vec<Vec<f32>> = (0..steps).map(|_| batch_inputs(&mut rng, 1, bsz, e)).collect();
            let mut results = Vec::new();
            for lane in [KernelLane::Scalar, KernelLane::Avx2] {
                let mut bh = vec![0.0f32; bsz * h];
                let mut bc = vec![0.0f32; bsz * h];
                let mut bg = vec![0.0f32; bsz * 4 * h];
                let mut qs = recmg_tensor::quant::QuantScratch::default();
                for x in &xs {
                    cell.step_batch(lane, bsz, x, &mut bh, &mut bc, &mut bg, &mut qs);
                }
                results.push((bh, bc));
            }
            for i in 0..bsz * h {
                prop_assert!((results[0].0[i] - results[1].0[i]).abs() < 1e-5);
                prop_assert!((results[0].1[i] - results[1].1[i]).abs() < 1e-5);
            }
        }

        /// `forward_batch` over B same-length sequences matches B per-item
        /// forwards, aligned and autoregressive, with a reused scratch, on
        /// every lane.
        #[test]
        fn forward_batch_matches_per_item(
            seed in 0u64..1_000,
            bsz in 1usize..10,
            t in 1usize..9,
            out_n in 1usize..5,
            aligned in 0u32..2,
        ) {
            let (_store, _stack, fast) = paired_stack(seed, 5, 6);
            let h = 6usize;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let flat = batch_inputs(&mut rng, t, bsz, 5);
            let out_len = if aligned == 0 { None } else { Some(out_n) };
            for lane in lanes() {
                let mut scratch = Scratch::default();
                let mut out = AlignedVec::new();
                // Run twice through the same scratch: reuse must not change
                // results.
                fast.forward_batch(lane, bsz, t, &flat, out_len, &mut scratch, &mut out);
                fast.forward_batch(lane, bsz, t, &flat, out_len, &mut scratch, &mut out);
                let t_out = out_len.unwrap_or(t);
                prop_assert_eq!(out.len(), t_out * bsz * h);
                for b in 0..bsz {
                    let single = fast.forward(lane, &item(&flat, t, bsz, 5, b), out_len);
                    prop_assert_eq!(single.len(), t_out);
                    for (ti, row) in single.iter().enumerate() {
                        for (j, &y) in row.iter().enumerate() {
                            let x = out[(ti * h + j) * bsz + b];
                            prop_assert!(
                                (x - y).abs() < 1e-5,
                                "lane {} item {} t {} j {}: {} vs {}",
                                lane.name(), b, ti, j, x, y
                            );
                        }
                    }
                }
            }
        }

        /// SIMD-vs-scalar lane parity on `forward_batch` (the full stack:
        /// LSTM steps, attention, dense head) to 1e-5.
        #[test]
        fn lane_parity_forward_batch(
            seed in 0u64..1_000,
            bsz in 1usize..10,
            t in 1usize..9,
            out_n in 1usize..5,
            aligned in 0u32..2,
        ) {
            if !KernelLane::Avx2.available() {
                return;
            }
            let (_store, _stack, fast) = paired_stack(seed, 5, 6);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x51D);
            let flat = batch_inputs(&mut rng, t, bsz, 5);
            let out_len = if aligned == 0 { None } else { Some(out_n) };
            let mut outs = Vec::new();
            for lane in [KernelLane::Scalar, KernelLane::Avx2] {
                let mut scratch = Scratch::default();
                let mut out = AlignedVec::new();
                fast.forward_batch(lane, bsz, t, &flat, out_len, &mut scratch, &mut out);
                outs.push(out);
            }
            prop_assert_eq!(outs[0].len(), outs[1].len());
            for (i, (s, v)) in outs[0].iter().zip(outs[1].iter()).enumerate() {
                prop_assert!((s - v).abs() < 1e-5, "elem {}: scalar {} vs avx2 {}", i, s, v);
            }
        }
    }
}
