//! Allocation-light inference kernels for online serving.
//!
//! The paper's deployment runs both models on spare CPU cores and leans on
//! aggressive implementation work — "we aggressively employ vectorization
//! based on AVX512 instructions and use C++ ... we get more than 10×
//! performance improvement, compared with no optimization" (§VI-C). This
//! module is the analogous optimization in the reproduction: a forward pass
//! over raw `f32` slices with preallocated scratch buffers, bypassing the
//! autograd tape entirely. Tests assert bit-for-bit-practical equivalence
//! (≤1e-5) with the tape forward.
//!
//! Every kernel is *batched*: it advances `bsz` independent sequences per
//! pass over the weights, so a guidance plane serving many shards reads
//! each weight matrix once per drained batch instead of once per chunk
//! (the Software-Defined-Memory move applied to model weights instead of
//! embedding tiers). The single-item entry points are the `bsz == 1` case
//! of the same code path, which is what makes batched-vs-single parity a
//! structural property rather than a numerical accident: per item, the
//! sequence of f32 operations is identical regardless of batch size.
//!
//! Batched tensors are flat row-major slices. Sequence inputs/outputs are
//! *time-major*: `[t, bsz, dim]`, so one step's lanes are contiguous and a
//! step kernel can walk `bsz` lanes per weight row.
//!
//! Weight layout is taken from the owning model's parameter order, which is
//! fixed by construction: embedding table, then per stack
//! `(enc.wx, enc.wh, enc.b, dec.wx, dec.wh, dec.b, attn.w, attn.b)`, then
//! the head layers.

use recmg_tensor::{stable_sigmoid, Tensor};

/// Reusable buffers for batched fast-model forwards
/// ([`FastCachingModel::probs_batch_with`] /
/// [`FastPrefetchModel::codes_batch_with`]).
///
/// One `FastScratch` per serving thread removes every per-forward heap
/// allocation from the guidance hot loop: the stack-level scratch
/// (`gates`/`enc`/`scores`/`cat`) plus the two ping-pong sequence buffers
/// that carry activations between LSTM stacks. Buffers grow to the largest
/// batch seen and are reused verbatim afterwards.
///
/// [`FastCachingModel::probs_batch_with`]: crate::FastCachingModel::probs_batch_with
/// [`FastPrefetchModel::codes_batch_with`]: crate::FastPrefetchModel::codes_batch_with
#[derive(Debug, Clone, Default)]
pub struct FastScratch {
    pub(crate) stack: Scratch,
    pub(crate) seq_a: Vec<f32>,
    pub(crate) seq_b: Vec<f32>,
}

/// One LSTM cell's weights.
#[derive(Debug, Clone)]
pub(crate) struct FastLstm {
    wx: Tensor, // [e, 4h]
    wh: Tensor, // [h, 4h]
    b: Tensor,  // [4h]
    e: usize,
    h: usize,
}

impl FastLstm {
    pub(crate) fn new(wx: Tensor, wh: Tensor, b: Tensor) -> Self {
        let e = wx.rows();
        let h = wh.rows();
        debug_assert_eq!(wx.cols(), 4 * h);
        debug_assert_eq!(b.len(), 4 * h);
        FastLstm { wx, wh, b, e, h }
    }

    /// One step over `bsz` independent lanes: consumes `x` (`[bsz, e]`),
    /// updates `h`/`c` (`[bsz, h]`) in place, using `gates` (`[bsz, 4h]`)
    /// as scratch. Each weight row is read once and applied to every lane,
    /// so the weight traffic of a step is independent of `bsz`.
    pub(crate) fn step_batch(
        &self,
        bsz: usize,
        x: &[f32],
        h: &mut [f32],
        c: &mut [f32],
        gates: &mut [f32],
    ) {
        let hd = self.h;
        let e = self.e;
        let g4 = 4 * hd;
        debug_assert_eq!(x.len(), bsz * e);
        debug_assert_eq!(h.len(), bsz * hd);
        debug_assert_eq!(c.len(), bsz * hd);
        debug_assert_eq!(gates.len(), bsz * g4);
        for lane in gates.chunks_exact_mut(g4) {
            lane.copy_from_slice(self.b.data());
        }
        let wx = self.wx.data();
        for (e_i, row) in wx.chunks_exact(g4).enumerate().take(e) {
            for b in 0..bsz {
                let xv = x[b * e + e_i];
                if xv == 0.0 {
                    continue;
                }
                let lane = &mut gates[b * g4..(b + 1) * g4];
                for (g, &w) in lane.iter_mut().zip(row) {
                    *g += xv * w;
                }
            }
        }
        let wh = self.wh.data();
        for (h_i, row) in wh.chunks_exact(g4).enumerate().take(hd) {
            for b in 0..bsz {
                let hv = h[b * hd + h_i];
                if hv == 0.0 {
                    continue;
                }
                let lane = &mut gates[b * g4..(b + 1) * g4];
                for (g, &w) in lane.iter_mut().zip(row) {
                    *g += hv * w;
                }
            }
        }
        for b in 0..bsz {
            let lane = &gates[b * g4..(b + 1) * g4];
            let h = &mut h[b * hd..(b + 1) * hd];
            let c = &mut c[b * hd..(b + 1) * hd];
            for j in 0..hd {
                let i = stable_sigmoid(lane[j]);
                let f = stable_sigmoid(lane[hd + j]);
                let g = lane[2 * hd + j].tanh();
                let o = stable_sigmoid(lane[3 * hd + j]);
                c[j] = f * c[j] + i * g;
                h[j] = o * c[j].tanh();
            }
        }
    }

    /// One step of a single sequence — the `bsz == 1` case of
    /// [`FastLstm::step_batch`], kept as the per-item reference for the
    /// parity proptests (production code always goes through the batched
    /// entry points).
    #[cfg(test)]
    pub(crate) fn step(&self, x: &[f32], h: &mut [f32], c: &mut [f32], gates: &mut [f32]) {
        self.step_batch(1, x, h, c, gates);
    }

    pub(crate) fn hidden(&self) -> usize {
        self.h
    }
}

/// Batched dense layer `Y = X W + b`: `xs` is `[bsz, in]`, `out` is
/// `[bsz, out]`. One pass over the weight matrix serves all `bsz` rows.
pub(crate) fn fast_linear_batch(w: &Tensor, b: &Tensor, bsz: usize, xs: &[f32], out: &mut [f32]) {
    let (in_dim, out_dim) = (w.rows(), w.cols());
    debug_assert_eq!(xs.len(), bsz * in_dim);
    debug_assert_eq!(out.len(), bsz * out_dim);
    for row in out.chunks_exact_mut(out_dim) {
        row.copy_from_slice(&b.data()[..out_dim]);
    }
    let wd = w.data();
    for (i, row) in wd.chunks_exact(out_dim).enumerate().take(in_dim) {
        for bi in 0..bsz {
            let xv = xs[bi * in_dim + i];
            if xv == 0.0 {
                continue;
            }
            let lane = &mut out[bi * out_dim..(bi + 1) * out_dim];
            for (o, &wv) in lane.iter_mut().zip(row) {
                *o += xv * wv;
            }
        }
    }
}

/// Dense layer `y = x W + b` over slices — the `bsz == 1` case of
/// [`fast_linear_batch`], kept as the per-item reference for the parity
/// tests.
#[cfg(test)]
pub(crate) fn fast_linear(w: &Tensor, b: &Tensor, x: &[f32], out: &mut [f32]) {
    fast_linear_batch(w, b, 1, x, out);
}

/// Shared driver for the batched model forwards: buckets non-empty
/// `chunks` by length, and per bucket gathers the time-major
/// `[t, bsz, d]` embedding batch from `emb`/`vocab` and runs it through
/// `stacks` (all aligned when `out_len` is `None`; the final stack
/// autoregressive for `Some(n)`). For each finished bucket, `emit`
/// receives `(bucket chunk indices, t, bsz, activations, spare)` — the
/// final time-major activations plus a reusable spare buffer for the head
/// computation — and scatters into the model's output. Both fast models
/// run their forwards through this one path, so bucketing, gathering, and
/// stack chaining cannot drift apart between them.
pub(crate) fn forward_buckets(
    emb: &Tensor,
    vocab: usize,
    stacks: &[FastStack],
    out_len: Option<usize>,
    chunks: &[&[recmg_trace::VectorKey]],
    scratch: &mut FastScratch,
    mut emit: impl FnMut(&[usize], usize, usize, &mut Vec<f32>, &mut Vec<f32>),
) {
    let d = emb.cols();
    let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, c) in chunks.iter().enumerate() {
        if !c.is_empty() {
            by_len.entry(c.len()).or_default().push(i);
        }
    }
    let FastScratch {
        stack,
        seq_a,
        seq_b,
    } = scratch;
    for (t, bucket) in by_len {
        let bsz = bucket.len();
        seq_a.clear();
        seq_a.resize(t * bsz * d, 0.0);
        for (b, &ci) in bucket.iter().enumerate() {
            for (ti, key) in chunks[ci].iter().enumerate() {
                let row = key.bucket(vocab);
                seq_a[(ti * bsz + b) * d..(ti * bsz + b + 1) * d]
                    .copy_from_slice(&emb.data()[row * d..(row + 1) * d]);
            }
        }
        let (mut cur, mut next) = (&mut *seq_a, &mut *seq_b);
        let last = stacks.len() - 1;
        for (i, s) in stacks.iter().enumerate() {
            let mode = if i == last { out_len } else { None };
            s.forward_batch(bsz, t, cur, mode, stack, next);
            std::mem::swap(&mut cur, &mut next);
        }
        emit(&bucket, t, bsz, cur, next);
    }
}

/// Stack-level scratch for [`FastStack::forward_batch`]: encoder/decoder
/// state, gate buffers, the time-major encoder-state tape, and the
/// attention workspace. Reused across forwards so the hot loop allocates
/// nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    gates: Vec<f32>,  // [bsz, 4h]
    hs: Vec<f32>,     // [bsz, h] encoder hidden
    cs: Vec<f32>,     // [bsz, h] encoder cell
    dh: Vec<f32>,     // [bsz, h] decoder hidden
    dc: Vec<f32>,     // [bsz, h] decoder cell
    enc: Vec<f32>,    // [t_in, bsz, h] encoder states
    scores: Vec<f32>, // [bsz, t_in] attention scores
    cat: Vec<f32>,    // [bsz, 2h] context ++ query
    feed: Vec<f32>,   // [bsz, h] autoregressive feed
}

impl Scratch {
    fn prepare(&mut self, bsz: usize, t_in: usize, h: usize) {
        // Only the encoder state (`hs`/`cs`) must start at zero; every
        // other buffer is fully overwritten before its first read, so a
        // plain resize — which zeroes growth only — keeps the lengths
        // exact without re-memsetting the (large) tape and gate buffers
        // on every forward.
        let fit = |v: &mut Vec<f32>, n: usize| v.resize(n, 0.0);
        fit(&mut self.gates, bsz * 4 * h);
        fit(&mut self.dh, bsz * h);
        fit(&mut self.dc, bsz * h);
        fit(&mut self.enc, t_in * bsz * h);
        fit(&mut self.scores, bsz * t_in);
        fit(&mut self.cat, bsz * 2 * h);
        fit(&mut self.feed, bsz * h);
        self.hs.clear();
        self.hs.resize(bsz * h, 0.0);
        self.cs.clear();
        self.cs.resize(bsz * h, 0.0);
    }
}

/// One seq2seq stack (encoder + decoder + attention).
#[derive(Debug, Clone)]
pub(crate) struct FastStack {
    pub(crate) enc: FastLstm,
    pub(crate) dec: FastLstm,
    attn_w: Tensor, // [2h, h]
    attn_b: Tensor, // [h]
}

impl FastStack {
    pub(crate) fn new(enc: FastLstm, dec: FastLstm, attn_w: Tensor, attn_b: Tensor) -> Self {
        debug_assert_eq!(attn_w.rows(), 2 * enc.hidden());
        debug_assert_eq!(attn_w.cols(), enc.hidden());
        FastStack {
            enc,
            dec,
            attn_w,
            attn_b,
        }
    }

    /// Batched Luong attention: for every lane `b`, scores `query[b]`
    /// against the `t_in` encoder states of that lane (`enc` is
    /// `[t_in, bsz, h]` time-major), softmaxes, builds the context ++
    /// query concatenation in `cat`, and writes the combined tanh output
    /// into `out` (`[bsz, h]`). Per lane the operation order matches the
    /// historical single-item path exactly.
    #[allow(clippy::too_many_arguments)]
    fn attend_batch(
        &self,
        bsz: usize,
        t_in: usize,
        query: &[f32],
        enc: &[f32],
        scores: &mut [f32],
        cat: &mut [f32],
        out: &mut [f32],
    ) {
        let h = self.enc.hidden();
        for b in 0..bsz {
            let q = &query[b * h..(b + 1) * h];
            let sc = &mut scores[b * t_in..(b + 1) * t_in];
            for (t, s) in sc.iter_mut().enumerate() {
                let state = &enc[(t * bsz + b) * h..(t * bsz + b + 1) * h];
                *s = state.iter().zip(q).map(|(a, b)| a * b).sum::<f32>();
            }
            let mx = sc.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for s in sc.iter_mut() {
                *s = (*s - mx).exp();
                denom += *s;
            }
            let lane = &mut cat[b * 2 * h..(b + 1) * 2 * h];
            lane[..h].fill(0.0);
            for t in 0..t_in {
                let w = sc[t] / denom;
                let state = &enc[(t * bsz + b) * h..(t * bsz + b + 1) * h];
                for j in 0..h {
                    lane[j] += w * state[j];
                }
            }
            lane[h..2 * h].copy_from_slice(q);
        }
        fast_linear_batch(&self.attn_w, &self.attn_b, bsz, cat, out);
        for o in out.iter_mut() {
            *o = o.tanh();
        }
    }

    /// Runs the stack over `bsz` same-length sequences. `inputs` is
    /// time-major `[t_in, bsz, e]`; the output written to `out` is
    /// time-major `[t_out, bsz, h]`. `out_len = None` runs aligned (one
    /// output per input); `Some(n)` runs autoregressive. All intermediate
    /// state lives in `s` — the forward allocates nothing beyond growing
    /// `out`/`s` on first use.
    pub(crate) fn forward_batch(
        &self,
        bsz: usize,
        t_in: usize,
        inputs: &[f32],
        out_len: Option<usize>,
        s: &mut Scratch,
        out: &mut Vec<f32>,
    ) {
        let h = self.enc.hidden();
        let e = self.enc.e;
        debug_assert_eq!(inputs.len(), t_in * bsz * e);
        s.prepare(bsz, t_in, h);
        for t in 0..t_in {
            self.enc.step_batch(
                bsz,
                &inputs[t * bsz * e..(t + 1) * bsz * e],
                &mut s.hs,
                &mut s.cs,
                &mut s.gates,
            );
            s.enc[t * bsz * h..(t + 1) * bsz * h].copy_from_slice(&s.hs);
        }
        s.dh.copy_from_slice(&s.hs);
        s.dc.copy_from_slice(&s.cs);
        let t_out = out_len.unwrap_or(t_in);
        out.clear();
        out.resize(t_out * bsz * h, 0.0);
        match out_len {
            None => {
                for t in 0..t_in {
                    self.dec.step_batch(
                        bsz,
                        &s.enc[t * bsz * h..(t + 1) * bsz * h],
                        &mut s.dh,
                        &mut s.dc,
                        &mut s.gates,
                    );
                    self.attend_batch(
                        bsz,
                        t_in,
                        &s.dh,
                        &s.enc,
                        &mut s.scores,
                        &mut s.cat,
                        &mut out[t * bsz * h..(t + 1) * bsz * h],
                    );
                }
            }
            Some(n) => {
                s.feed.copy_from_slice(&s.hs);
                for t in 0..n {
                    self.dec
                        .step_batch(bsz, &s.feed, &mut s.dh, &mut s.dc, &mut s.gates);
                    let slot = &mut out[t * bsz * h..(t + 1) * bsz * h];
                    self.attend_batch(bsz, t_in, &s.dh, &s.enc, &mut s.scores, &mut s.cat, slot);
                    s.feed.copy_from_slice(slot);
                }
            }
        }
    }

    /// Runs the stack over a single sequence — the `bsz == 1` case of
    /// [`FastStack::forward_batch`], kept as the per-item reference for
    /// the parity proptests and tape-equivalence tests.
    #[cfg(test)]
    pub(crate) fn forward(&self, inputs: &[Vec<f32>], out_len: Option<usize>) -> Vec<Vec<f32>> {
        let h = self.enc.hidden();
        let mut flat = Vec::with_capacity(inputs.len() * self.enc.e);
        for x in inputs {
            flat.extend_from_slice(x);
        }
        let mut scratch = Scratch::default();
        let mut out = Vec::new();
        self.forward_batch(1, inputs.len(), &flat, out_len, &mut scratch, &mut out);
        out.chunks(h).map(|c| c.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use recmg_tensor::nn::{DecoderFeed, Module, Seq2SeqStack};
    use recmg_tensor::{ParamStore, Tape, Tensor};

    /// Builds a tape stack and its fast mirror from the same weights.
    fn paired_stack(seed: u64, e: usize, h: usize) -> (ParamStore, Seq2SeqStack, FastStack) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = Seq2SeqStack::new(&mut store, &mut rng, "s", e, h);
        let ids = stack.params(); // enc(wx,wh,b), dec(wx,wh,b), attn(w,b)
        let w = |i: usize| store.value(ids[i]).clone();
        let fast = FastStack::new(
            FastLstm::new(w(0), w(1), w(2)),
            FastLstm::new(w(3), w(4), w(5)),
            w(6),
            w(7),
        );
        (store, stack, fast)
    }

    fn tape_forward(
        store: &ParamStore,
        stack: &Seq2SeqStack,
        inputs: &[Vec<f32>],
        feed: DecoderFeed,
    ) -> Vec<Vec<f32>> {
        let mut tape = Tape::new(store);
        let vars: Vec<_> = inputs
            .iter()
            .map(|x| tape.constant(Tensor::from_vec(x.clone(), &[1, x.len()])))
            .collect();
        let outs = stack.forward(&mut tape, store, &vars, feed);
        outs.iter()
            .map(|&o| tape.value(o).data().to_vec())
            .collect()
    }

    fn inputs(e: usize, t: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|i| {
                (0..e)
                    .map(|j| ((i * e + j) as f32 * 0.13).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn aligned_matches_tape() {
        let (store, stack, fast) = paired_stack(5, 6, 8);
        let xs = inputs(6, 7);
        let a = tape_forward(&store, &stack, &xs, DecoderFeed::Aligned);
        let b = fast.forward(&xs, None);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn autoregressive_matches_tape() {
        let (store, stack, fast) = paired_stack(9, 5, 7);
        let xs = inputs(5, 10);
        let a = tape_forward(&store, &stack, &xs, DecoderFeed::Autoregressive(4));
        let b = fast.forward(&xs, Some(4));
        assert_eq!(b.len(), 4);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn fast_linear_matches_tensor() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::rand_uniform(&mut rng, &[5, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[3], -1.0, 1.0);
        let x = vec![0.1, -0.2, 0.3, 0.0, 0.5];
        let mut out = vec![0.0; 3];
        fast_linear(&w, &b, &x, &mut out);
        let exact = Tensor::from_vec(x, &[1, 5]).matmul(&w);
        for (j, &o) in out.iter().enumerate() {
            assert!((o - (exact.at(0, j) + b.data()[j])).abs() < 1e-6);
        }
    }

    /// Random batched input, time-major `[t, bsz, e]`.
    fn batch_inputs(rng: &mut StdRng, t: usize, bsz: usize, e: usize) -> Vec<f32> {
        (0..t * bsz * e).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// Lane `b` of a time-major batch, as the per-item `Vec<Vec<f32>>`.
    fn lane(flat: &[f32], t: usize, bsz: usize, dim: usize, b: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|ti| flat[(ti * bsz + b) * dim..(ti * bsz + b + 1) * dim].to_vec())
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `fast_linear_batch` over B rows matches B single-row calls.
        #[test]
        fn fast_linear_batch_matches_single(
            seed in 0u64..1_000,
            bsz in 1usize..9,
            in_dim in 1usize..12,
            out_dim in 1usize..10,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let w = Tensor::rand_uniform(&mut rng, &[in_dim, out_dim], -1.0, 1.0);
            let b = Tensor::rand_uniform(&mut rng, &[out_dim], -1.0, 1.0);
            let xs: Vec<f32> = (0..bsz * in_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut batched = vec![0.0f32; bsz * out_dim];
            fast_linear_batch(&w, &b, bsz, &xs, &mut batched);
            let mut single = vec![0.0f32; out_dim];
            for bi in 0..bsz {
                fast_linear(&w, &b, &xs[bi * in_dim..(bi + 1) * in_dim], &mut single);
                for (j, &y) in single.iter().enumerate() {
                    let x = batched[bi * out_dim + j];
                    prop_assert!((x - y).abs() < 1e-5, "lane {} col {}: {} vs {}", bi, j, x, y);
                }
            }
        }

        /// `step_batch` over B lanes matches B single-lane steps.
        #[test]
        fn step_batch_matches_single(
            seed in 0u64..1_000,
            bsz in 1usize..9,
            e in 1usize..8,
            h in 1usize..8,
            steps in 1usize..5,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cell = FastLstm::new(
                Tensor::rand_uniform(&mut rng, &[e, 4 * h], -0.5, 0.5),
                Tensor::rand_uniform(&mut rng, &[h, 4 * h], -0.5, 0.5),
                Tensor::rand_uniform(&mut rng, &[4 * h], -0.5, 0.5),
            );
            let mut bh = vec![0.0f32; bsz * h];
            let mut bc = vec![0.0f32; bsz * h];
            let mut bg = vec![0.0f32; bsz * 4 * h];
            let mut sh = vec![vec![0.0f32; h]; bsz];
            let mut sc = vec![vec![0.0f32; h]; bsz];
            let mut sg = vec![0.0f32; 4 * h];
            for _ in 0..steps {
                let x = batch_inputs(&mut rng, 1, bsz, e);
                cell.step_batch(bsz, &x, &mut bh, &mut bc, &mut bg);
                for b in 0..bsz {
                    cell.step(&x[b * e..(b + 1) * e], &mut sh[b], &mut sc[b], &mut sg);
                }
            }
            for b in 0..bsz {
                for j in 0..h {
                    prop_assert!((bh[b * h + j] - sh[b][j]).abs() < 1e-5);
                    prop_assert!((bc[b * h + j] - sc[b][j]).abs() < 1e-5);
                }
            }
        }

        /// `forward_batch` over B same-length sequences matches B per-item
        /// forwards, aligned and autoregressive, with a reused scratch.
        #[test]
        fn forward_batch_matches_per_item(
            seed in 0u64..1_000,
            bsz in 1usize..7,
            t in 1usize..9,
            out_n in 1usize..5,
            aligned in 0u32..2,
        ) {
            let (_store, _stack, fast) = paired_stack(seed, 5, 6);
            let h = 6usize;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let flat = batch_inputs(&mut rng, t, bsz, 5);
            let out_len = if aligned == 0 { None } else { Some(out_n) };
            let mut scratch = Scratch::default();
            let mut out = Vec::new();
            // Run twice through the same scratch: reuse must not change
            // results.
            fast.forward_batch(bsz, t, &flat, out_len, &mut scratch, &mut out);
            fast.forward_batch(bsz, t, &flat, out_len, &mut scratch, &mut out);
            let t_out = out_len.unwrap_or(t);
            prop_assert_eq!(out.len(), t_out * bsz * h);
            for b in 0..bsz {
                let single = fast.forward(&lane(&flat, t, bsz, 5, b), out_len);
                prop_assert_eq!(single.len(), t_out);
                for (ti, row) in single.iter().enumerate() {
                    for (j, &y) in row.iter().enumerate() {
                        let x = out[(ti * bsz + b) * h + j];
                        prop_assert!(
                            (x - y).abs() < 1e-5,
                            "lane {} t {} j {}: {} vs {}", b, ti, j, x, y
                        );
                    }
                }
            }
        }
    }
}
