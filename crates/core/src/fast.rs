//! Allocation-light inference kernels for online serving.
//!
//! The paper's deployment runs both models on spare CPU cores and leans on
//! aggressive implementation work — "we aggressively employ vectorization
//! based on AVX512 instructions and use C++ ... we get more than 10×
//! performance improvement, compared with no optimization" (§VI-C). This
//! module is the analogous optimization in the reproduction: a forward pass
//! over raw `f32` slices with preallocated scratch buffers, bypassing the
//! autograd tape entirely. Tests assert bit-for-bit-practical equivalence
//! (≤1e-5) with the tape forward.
//!
//! Weight layout is taken from the owning model's parameter order, which is
//! fixed by construction: embedding table, then per stack
//! `(enc.wx, enc.wh, enc.b, dec.wx, dec.wh, dec.b, attn.w, attn.b)`, then
//! the head layers.

use recmg_tensor::{stable_sigmoid, Tensor};

/// One LSTM cell's weights plus scratch state.
#[derive(Debug, Clone)]
pub(crate) struct FastLstm {
    wx: Tensor, // [e, 4h]
    wh: Tensor, // [h, 4h]
    b: Tensor,  // [4h]
    e: usize,
    h: usize,
}

impl FastLstm {
    pub(crate) fn new(wx: Tensor, wh: Tensor, b: Tensor) -> Self {
        let e = wx.rows();
        let h = wh.rows();
        debug_assert_eq!(wx.cols(), 4 * h);
        debug_assert_eq!(b.len(), 4 * h);
        FastLstm { wx, wh, b, e, h }
    }

    /// One step: consumes `x` (len `e`), updates `h`/`c` (len `h`) in
    /// place, using `gates` (len `4h`) as scratch.
    pub(crate) fn step(&self, x: &[f32], h: &mut [f32], c: &mut [f32], gates: &mut [f32]) {
        let hd = self.h;
        gates.copy_from_slice(self.b.data());
        for (e_i, &xv) in x.iter().enumerate().take(self.e) {
            if xv == 0.0 {
                continue;
            }
            let row = &self.wx.data()[e_i * 4 * hd..(e_i + 1) * 4 * hd];
            for (g, &w) in gates.iter_mut().zip(row) {
                *g += xv * w;
            }
        }
        for (h_i, &hv) in h.iter().enumerate().take(hd) {
            if hv == 0.0 {
                continue;
            }
            let row = &self.wh.data()[h_i * 4 * hd..(h_i + 1) * 4 * hd];
            for (g, &w) in gates.iter_mut().zip(row) {
                *g += hv * w;
            }
        }
        for j in 0..hd {
            let i = stable_sigmoid(gates[j]);
            let f = stable_sigmoid(gates[hd + j]);
            let g = gates[2 * hd + j].tanh();
            let o = stable_sigmoid(gates[3 * hd + j]);
            c[j] = f * c[j] + i * g;
            h[j] = o * c[j].tanh();
        }
    }

    pub(crate) fn hidden(&self) -> usize {
        self.h
    }
}

/// Dense layer `y = x W + b` over slices.
pub(crate) fn fast_linear(w: &Tensor, b: &Tensor, x: &[f32], out: &mut [f32]) {
    let (in_dim, out_dim) = (w.rows(), w.cols());
    debug_assert_eq!(x.len(), in_dim);
    debug_assert_eq!(out.len(), out_dim);
    out.copy_from_slice(&b.data()[..out_dim]);
    for (i, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let row = &w.data()[i * out_dim..(i + 1) * out_dim];
        for (o, &wv) in out.iter_mut().zip(row) {
            *o += xv * wv;
        }
    }
}

/// One seq2seq stack (encoder + decoder + attention) with scratch buffers.
#[derive(Debug, Clone)]
pub(crate) struct FastStack {
    pub(crate) enc: FastLstm,
    pub(crate) dec: FastLstm,
    attn_w: Tensor, // [2h, h]
    attn_b: Tensor, // [h]
}

impl FastStack {
    pub(crate) fn new(enc: FastLstm, dec: FastLstm, attn_w: Tensor, attn_b: Tensor) -> Self {
        debug_assert_eq!(attn_w.rows(), 2 * enc.hidden());
        debug_assert_eq!(attn_w.cols(), enc.hidden());
        FastStack {
            enc,
            dec,
            attn_w,
            attn_b,
        }
    }

    /// Luong attention over `enc_states` (T rows of width h) from `query`;
    /// writes the combined tanh output into `out` (len h).
    fn attend(&self, query: &[f32], enc_states: &[Vec<f32>], out: &mut [f32]) {
        let h = self.enc.hidden();
        // scores + softmax
        let mut scores: Vec<f32> = enc_states
            .iter()
            .map(|s| s.iter().zip(query).map(|(a, b)| a * b).sum::<f32>())
            .collect();
        let mx = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for s in &mut scores {
            *s = (*s - mx).exp();
            denom += *s;
        }
        // context
        let mut cat = vec![0.0f32; 2 * h];
        for (t, s) in enc_states.iter().enumerate() {
            let w = scores[t] / denom;
            for j in 0..h {
                cat[j] += w * s[j];
            }
        }
        cat[h..2 * h].copy_from_slice(query);
        fast_linear(&self.attn_w, &self.attn_b, &cat, out);
        for o in out.iter_mut() {
            *o = o.tanh();
        }
    }

    /// Runs the stack over `inputs` (each of width `enc.e`). `out_len =
    /// None` runs aligned (one output per input); `Some(n)` runs
    /// autoregressive.
    pub(crate) fn forward(&self, inputs: &[Vec<f32>], out_len: Option<usize>) -> Vec<Vec<f32>> {
        let h = self.enc.hidden();
        let mut gates = vec![0.0f32; 4 * h];
        let mut hs = vec![0.0f32; h];
        let mut cs = vec![0.0f32; h];
        let mut enc_states = Vec::with_capacity(inputs.len());
        for x in inputs {
            self.enc.step(x, &mut hs, &mut cs, &mut gates);
            enc_states.push(hs.clone());
        }
        let mut dh = hs.clone();
        let mut dc = cs.clone();
        let mut outputs = Vec::new();
        match out_len {
            None => {
                for e in &enc_states {
                    self.dec.step(e, &mut dh, &mut dc, &mut gates);
                    let mut out = vec![0.0f32; h];
                    self.attend(&dh, &enc_states, &mut out);
                    outputs.push(out);
                }
            }
            Some(n) => {
                let mut feed = hs;
                for _ in 0..n {
                    self.dec.step(&feed, &mut dh, &mut dc, &mut gates);
                    let mut out = vec![0.0f32; h];
                    self.attend(&dh, &enc_states, &mut out);
                    feed = out.clone();
                    outputs.push(out);
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use recmg_tensor::nn::{DecoderFeed, Module, Seq2SeqStack};
    use recmg_tensor::{ParamStore, Tape, Tensor};

    /// Builds a tape stack and its fast mirror from the same weights.
    fn paired_stack(seed: u64, e: usize, h: usize) -> (ParamStore, Seq2SeqStack, FastStack) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let stack = Seq2SeqStack::new(&mut store, &mut rng, "s", e, h);
        let ids = stack.params(); // enc(wx,wh,b), dec(wx,wh,b), attn(w,b)
        let w = |i: usize| store.value(ids[i]).clone();
        let fast = FastStack::new(
            FastLstm::new(w(0), w(1), w(2)),
            FastLstm::new(w(3), w(4), w(5)),
            w(6),
            w(7),
        );
        (store, stack, fast)
    }

    fn tape_forward(
        store: &ParamStore,
        stack: &Seq2SeqStack,
        inputs: &[Vec<f32>],
        feed: DecoderFeed,
    ) -> Vec<Vec<f32>> {
        let mut tape = Tape::new(store);
        let vars: Vec<_> = inputs
            .iter()
            .map(|x| tape.constant(Tensor::from_vec(x.clone(), &[1, x.len()])))
            .collect();
        let outs = stack.forward(&mut tape, store, &vars, feed);
        outs.iter()
            .map(|&o| tape.value(o).data().to_vec())
            .collect()
    }

    fn inputs(e: usize, t: usize) -> Vec<Vec<f32>> {
        (0..t)
            .map(|i| {
                (0..e)
                    .map(|j| ((i * e + j) as f32 * 0.13).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn aligned_matches_tape() {
        let (store, stack, fast) = paired_stack(5, 6, 8);
        let xs = inputs(6, 7);
        let a = tape_forward(&store, &stack, &xs, DecoderFeed::Aligned);
        let b = fast.forward(&xs, None);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn autoregressive_matches_tape() {
        let (store, stack, fast) = paired_stack(9, 5, 7);
        let xs = inputs(5, 10);
        let a = tape_forward(&store, &stack, &xs, DecoderFeed::Autoregressive(4));
        let b = fast.forward(&xs, Some(4));
        assert_eq!(b.len(), 4);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn fast_linear_matches_tensor() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Tensor::rand_uniform(&mut rng, &[5, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[3], -1.0, 1.0);
        let x = vec![0.1, -0.2, 0.3, 0.0, 0.5];
        let mut out = vec![0.0; 3];
        fast_linear(&w, &b, &x, &mut out);
        let exact = Tensor::from_vec(x, &[1, 5]).matmul(&w);
        for (j, &o) in out.iter().enumerate() {
            assert!((o - (exact.at(0, j) + b.data()[j])).abs() < 1e-6);
        }
    }
}
