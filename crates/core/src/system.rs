//! The deployed RecMG system and its adapters.
//!
//! [`RecMgSystem`] is the paper's Fig. 4/Fig. 6 deployment: a GPU buffer
//! co-managed by the two (compiled) models. As each batch of embedding
//! accesses is served, the access stream is cut into chunks; at each chunk
//! boundary the caching model reprioritizes the trunk and the prefetch
//! model fetches predicted vectors (Algorithm 1). A `guidance_stride`
//! option skips model runs on a fraction of chunks — the behaviour the
//! paper gets when the CPU cannot keep up with the GPU ("the states of
//! some cached items cannot be updated by the two models", §VI-C).
//!
//! Two adapters expose the models to the baseline tooling:
//! * [`CmPolicy`] — the caching model alone as a [`CachePolicy`] ("CM" in
//!   Figs. 15, 16, 17, 19, and the base of "BOP+CM").
//! * [`PmPrefetcher`] — the prefetch model alone as a
//!   [`Prefetcher`] ("LRU+PF" in Fig. 14, "PM+LRU" in Table IV).

use recmg_cache::{AccessOutcome, BufferAccess, CachePolicy, GpuBuffer};
use recmg_dlrm::{BatchAccessStats, BufferManager};
use recmg_prefetch::Prefetcher;
use recmg_trace::VectorKey;

use crate::buffer_mgmt::RecMgBuffer;
use crate::caching_model::{CachingModel, FastCachingModel};
use crate::codec::{FrequencyRankCodec, IndexCodec};
use crate::config::RecMgConfig;
use crate::labeling::build_training_data;
use crate::prefetch_model::{FastPrefetchModel, PrefetchLoss, PrefetchModel};

/// Training knobs for [`train_recmg`].
#[derive(Debug, Clone, Copy)]
pub struct TrainOptions {
    /// Caching-model epochs.
    pub cm_epochs: usize,
    /// Prefetch-model epochs.
    pub pm_epochs: usize,
    /// Gradient-accumulation minibatch.
    pub minibatch: usize,
    /// Cap on caching chunks used (subsampled evenly if exceeded).
    pub max_chunks: usize,
    /// Cap on prefetch examples used.
    pub max_prefetch_examples: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            cm_epochs: 4,
            pm_epochs: 4,
            minibatch: 8,
            max_chunks: 1_500,
            max_prefetch_examples: 1_000,
        }
    }
}

impl TrainOptions {
    /// A very small budget for unit tests.
    pub fn tiny() -> Self {
        TrainOptions {
            cm_epochs: 2,
            pm_epochs: 2,
            minibatch: 4,
            max_chunks: 120,
            max_prefetch_examples: 80,
        }
    }
}

/// Artifacts of offline training (paper §VI-A).
#[derive(Debug)]
pub struct TrainedRecMg {
    /// The trained caching model.
    pub caching: CachingModel,
    /// The trained prefetch model.
    pub prefetch: PrefetchModel,
    /// The index codec fit on the training trace.
    pub codec: FrequencyRankCodec,
    /// Caching-model accuracy on its training chunks.
    pub caching_accuracy: f64,
    /// OPT hit rate at the labeling capacity.
    pub opt_hit_rate: f64,
}

fn subsample<T: Clone>(items: &[T], cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items.to_vec();
    }
    let step = items.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| items[(i as f64 * step) as usize].clone())
        .collect()
}

/// Offline training of both models on a trace prefix (the paper's
/// trace-collection + OPTgen + training pipeline).
///
/// # Panics
///
/// Panics if the trace is shorter than one chunk or `buffer_capacity` is
/// zero.
pub fn train_recmg(
    accesses: &[VectorKey],
    cfg: &RecMgConfig,
    buffer_capacity: usize,
    opts: &TrainOptions,
) -> TrainedRecMg {
    let td = build_training_data(accesses, cfg, buffer_capacity);
    let codec = FrequencyRankCodec::from_accesses(accesses);
    let chunks = subsample(&td.chunks, opts.max_chunks);
    let mut caching = CachingModel::new(cfg);
    caching.train(&chunks, opts.cm_epochs, opts.minibatch);
    caching.calibrate_threshold(&chunks);
    let caching_accuracy = caching.accuracy(&chunks);
    let mut prefetch = PrefetchModel::new(cfg);
    let examples = subsample(&td.prefetch, opts.max_prefetch_examples);
    if !examples.is_empty() {
        prefetch.train(
            &examples,
            &codec,
            PrefetchLoss::Chamfer { alpha: cfg.alpha },
            opts.pm_epochs,
            opts.minibatch,
        );
    }
    TrainedRecMg {
        caching,
        prefetch,
        codec,
        caching_accuracy,
        opt_hit_rate: td.opt_hit_rate,
    }
}

/// The online RecMG system: model-guided GPU-buffer management.
#[derive(Debug)]
pub struct RecMgSystem {
    cfg: RecMgConfig,
    caching: FastCachingModel,
    prefetch: Option<FastPrefetchModel>,
    codec: FrequencyRankCodec,
    buffer: RecMgBuffer,
    pending: Vec<VectorKey>,
    guidance_stride: usize,
    chunk_counter: usize,
    prefetches_issued: u64,
    prefetch_hits_seen: u64,
    /// Minimum useful/issued ratio to keep applying prefetches after the
    /// warmup; below it, predictions are only probed periodically.
    prefetch_gate: f64,
}

impl RecMgSystem {
    /// Assembles the system from trained parts. Pass `prefetch: None` for
    /// the "caching model only" (CM) configuration.
    pub fn new(
        caching: &CachingModel,
        prefetch: Option<&PrefetchModel>,
        codec: FrequencyRankCodec,
        buffer_capacity: usize,
    ) -> Self {
        let cfg = caching.config().clone();
        RecMgSystem {
            buffer: RecMgBuffer::new(buffer_capacity, cfg.eviction_speed),
            caching: caching.compile(),
            prefetch: prefetch.map(PrefetchModel::compile),
            codec,
            cfg,
            pending: Vec::new(),
            guidance_stride: 1,
            chunk_counter: 0,
            prefetches_issued: 0,
            prefetch_hits_seen: 0,
            prefetch_gate: 0.10,
        }
    }

    /// Assembles the full system from training artifacts.
    pub fn from_trained(trained: &TrainedRecMg, buffer_capacity: usize) -> Self {
        Self::new(
            &trained.caching,
            Some(&trained.prefetch),
            trained.codec.clone(),
            buffer_capacity,
        )
    }

    /// Runs the models only on every `stride`-th chunk (stale guidance in
    /// between, as in the paper's non-blocking pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn set_guidance_stride(&mut self, stride: usize) {
        assert!(stride > 0, "stride must be positive");
        self.guidance_stride = stride;
    }

    /// Whether the prefetch model is active.
    pub fn has_prefetch(&self) -> bool {
        self.prefetch.is_some()
    }

    /// Prefetches issued by the prefetch model so far (Table IV's "total
    /// number of prefetches").
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Sets the usefulness gate: prefetch predictions are applied while
    /// their observed hit ratio stays at or above `min_accuracy` (with a
    /// periodic probe so an improving model can re-arm). Production
    /// prefetchers self-disable the same way (BOP's bad-score off state,
    /// MAB's off arm); `0.0` disables the gate. The default of 0.10 sits
    /// between the paper's polluting baselines (Berti/MAB at 5–6%
    /// accuracy, which *lose* to no prefetching) and its useful ones
    /// (PM 30%, RecMG 35%).
    ///
    /// # Panics
    ///
    /// Panics if `min_accuracy` is not in `[0, 1]`.
    pub fn set_prefetch_gate(&mut self, min_accuracy: f64) {
        assert!(
            (0.0..=1.0).contains(&min_accuracy),
            "gate must be in [0, 1]"
        );
        self.prefetch_gate = min_accuracy;
    }

    pub(crate) const PREFETCH_WARMUP: u64 = 500;
    pub(crate) const PREFETCH_PROBE_PERIOD: usize = 16;

    fn prefetch_armed(&self) -> bool {
        if self.prefetches_issued < Self::PREFETCH_WARMUP {
            return true;
        }
        let ratio = self.prefetch_hits_seen as f64 / self.prefetches_issued as f64;
        ratio >= self.prefetch_gate
            || self
                .chunk_counter
                .is_multiple_of(Self::PREFETCH_PROBE_PERIOD)
    }

    /// The managed buffer.
    pub fn buffer(&self) -> &GpuBuffer {
        self.buffer.buffer()
    }

    fn run_guidance(&mut self) {
        while self.pending.len() >= self.cfg.input_len {
            let chunk: Vec<VectorKey> = self.pending.drain(..self.cfg.input_len).collect();
            self.chunk_counter += 1;
            if !(self.chunk_counter - 1).is_multiple_of(self.guidance_stride) {
                continue;
            }
            let bits = self.caching.predict(&chunk);
            let prefetched = match &self.prefetch {
                Some(pm) if self.prefetch_armed() => pm.predict(&chunk, &self.codec),
                _ => Vec::new(),
            };
            self.prefetches_issued += prefetched.len() as u64;
            self.buffer.load_embeddings(&chunk, &bits, &prefetched);
        }
    }
}

impl BufferManager for RecMgSystem {
    fn name(&self) -> String {
        if self.has_prefetch() {
            "RecMG".to_string()
        } else {
            "CM".to_string()
        }
    }

    fn process_batch(&mut self, batch: &[VectorKey]) -> BatchAccessStats {
        let mut s = BatchAccessStats::default();
        // Guidance interleaves at chunk granularity: as each input_len
        // trunk completes, Algorithm 1 runs for it. This keeps the model's
        // staleness bounded by one chunk regardless of how many accesses a
        // DLRM batch carries (the paper's CPU pipeline similarly bounds
        // staleness to about one batch by computing guidance concurrently,
        // §VI-C; `set_guidance_stride` widens the staleness window to
        // emulate a lagging CPU).
        for &key in batch {
            match self.buffer.access(key) {
                BufferAccess::CacheHit => s.cache_hits += 1,
                BufferAccess::PrefetchHit => {
                    s.prefetch_hits += 1;
                    self.prefetch_hits_seen += 1;
                }
                BufferAccess::Miss => s.misses += 1,
            }
            self.pending.push(key);
            if self.pending.len() >= self.cfg.input_len {
                self.run_guidance();
            }
        }
        s
    }
}

/// The caching model alone as a replacement policy over a priority buffer.
#[derive(Debug)]
pub struct CmPolicy {
    cfg: RecMgConfig,
    model: FastCachingModel,
    buffer: RecMgBuffer,
    pending: Vec<VectorKey>,
}

impl CmPolicy {
    /// Wraps a trained caching model around a buffer of
    /// `buffer_capacity` vectors.
    pub fn new(model: &CachingModel, buffer_capacity: usize) -> Self {
        let cfg = model.config().clone();
        CmPolicy {
            buffer: RecMgBuffer::new(buffer_capacity, cfg.eviction_speed),
            model: model.compile(),
            cfg,
            pending: Vec::new(),
        }
    }
}

impl CachePolicy for CmPolicy {
    fn name(&self) -> String {
        "CM".to_string()
    }

    fn capacity(&self) -> usize {
        self.buffer.capacity()
    }

    fn len(&self) -> usize {
        self.buffer.len()
    }

    fn contains(&self, key: VectorKey) -> bool {
        self.buffer.buffer().contains(key)
    }

    fn access(&mut self, key: VectorKey) -> AccessOutcome {
        let before = self.buffer.len();
        let outcome = self.buffer.access(key);
        self.pending.push(key);
        if self.pending.len() >= self.cfg.input_len {
            let chunk: Vec<VectorKey> = self.pending.drain(..self.cfg.input_len).collect();
            let bits = self.model.predict(&chunk);
            self.buffer.load_embeddings(&chunk, &bits, &[]);
        }
        let _ = before;
        match outcome {
            // The populate path inside RecMgBuffer already evicted its
            // victim; the victim identity is not tracked here (co-simulators
            // reconcile via `contains`, see `cosimulate`).
            BufferAccess::Miss => AccessOutcome::Miss { evicted: None },
            _ => AccessOutcome::Hit,
        }
    }

    fn prefetch_insert(&mut self, key: VectorKey) -> Option<VectorKey> {
        if self.buffer.buffer().contains(key) {
            return None;
        }
        self.buffer.load_embeddings(&[], &[], &[key]);
        None
    }
}

/// The prefetch model alone as a baseline-style prefetcher.
#[derive(Debug)]
pub struct PmPrefetcher {
    cfg: RecMgConfig,
    model: FastPrefetchModel,
    codec: FrequencyRankCodec,
    window: Vec<VectorKey>,
    since: usize,
}

impl PmPrefetcher {
    /// Wraps a trained prefetch model and its codec.
    pub fn new(model: &PrefetchModel, cfg: &RecMgConfig, codec: FrequencyRankCodec) -> Self {
        PmPrefetcher {
            cfg: cfg.clone(),
            model: model.compile(),
            codec,
            window: Vec::new(),
            since: 0,
        }
    }
}

impl Prefetcher for PmPrefetcher {
    fn name(&self) -> String {
        "PM".to_string()
    }

    fn on_access(&mut self, key: VectorKey, _was_hit: bool) -> Vec<VectorKey> {
        self.window.push(key);
        if self.window.len() > self.cfg.input_len {
            let excess = self.window.len() - self.cfg.input_len;
            self.window.drain(..excess);
        }
        self.since += 1;
        if self.since < self.cfg.input_len || self.window.len() < self.cfg.input_len {
            return Vec::new();
        }
        self.since = 0;
        self.model.predict(&self.window, &self.codec)
    }

    fn metadata_bytes(&self) -> usize {
        self.codec.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_cache::{simulate, FullyAssocLru};
    use recmg_dlrm::PolicyBufferManager;
    use recmg_trace::{SyntheticConfig, TraceStats};

    /// Shared trained system for the expensive integration tests.
    fn trained_setup() -> (recmg_trace::Trace, TrainedRecMg, usize) {
        let cfg = RecMgConfig::tiny();
        let trace = SyntheticConfig::tiny(81).generate();
        let stats = TraceStats::compute(&trace);
        let capacity = stats.buffer_capacity(20.0);
        let trained = train_recmg(
            &trace.accesses()[..trace.len() / 2],
            &cfg,
            capacity,
            &TrainOptions::tiny(),
        );
        (trace, trained, capacity)
    }

    #[test]
    fn end_to_end_training_and_serving() {
        let (trace, trained, capacity) = trained_setup();
        assert!(
            trained.caching_accuracy > 0.5,
            "cm acc {}",
            trained.caching_accuracy
        );
        assert!(trained.opt_hit_rate > 0.0);

        let mut system = RecMgSystem::from_trained(&trained, capacity);
        let mut stats = BatchAccessStats::default();
        for batch in trace.batches(10) {
            stats.accumulate(system.process_batch(batch));
        }
        assert_eq!(stats.total(), trace.len() as u64);
        assert!(stats.hits() > 0);
        assert_eq!(system.name(), "RecMG");
    }

    #[test]
    fn recmg_beats_32way_lru_on_hit_rate() {
        // The headline claim at tiny scale: trained RecMG should match or
        // beat set-associative LRU at equal capacity on the held-out half.
        let (trace, trained, capacity) = trained_setup();
        let eval = &trace.accesses()[trace.len() / 2..];

        let mut system = RecMgSystem::from_trained(&trained, capacity);
        let mut rec = BatchAccessStats::default();
        for chunk in eval.chunks(64) {
            rec.accumulate(system.process_batch(chunk));
        }
        let mut lru = recmg_cache::SetAssocLru::new(capacity, 32);
        let lru_stats = simulate(&mut lru, eval);
        assert!(
            rec.hit_rate() > lru_stats.hit_rate() - 0.02,
            "RecMG {:.3} vs LRU {:.3}",
            rec.hit_rate(),
            lru_stats.hit_rate()
        );
    }

    #[test]
    fn cm_only_system_has_no_prefetch_hits() {
        let (trace, trained, capacity) = trained_setup();
        let mut cm = RecMgSystem::new(&trained.caching, None, trained.codec.clone(), capacity);
        assert_eq!(cm.name(), "CM");
        let mut stats = BatchAccessStats::default();
        for batch in trace.batches(10) {
            stats.accumulate(cm.process_batch(batch));
        }
        assert_eq!(stats.prefetch_hits, 0);
    }

    #[test]
    fn guidance_stride_reduces_model_influence() {
        let (trace, trained, capacity) = trained_setup();
        let mut dense = RecMgSystem::from_trained(&trained, capacity);
        let mut sparse = RecMgSystem::from_trained(&trained, capacity);
        sparse.set_guidance_stride(1000); // effectively never guided
        let mut d = BatchAccessStats::default();
        let mut s = BatchAccessStats::default();
        for batch in trace.batches(10) {
            d.accumulate(dense.process_batch(batch));
        }
        for batch in trace.batches(10) {
            s.accumulate(sparse.process_batch(batch));
        }
        // Unguided system degenerates to neutral-priority FIFO-ish
        // behaviour; guided should not be worse.
        assert!(d.hit_rate() >= s.hit_rate() - 0.05);
        // The very first chunk is always guided (stride skips start after
        // it), so at most one chunk's worth of prefetches can ever hit.
        assert!(s.prefetch_hits <= trained.caching.config().output_len as u64);
    }

    #[test]
    fn cm_policy_behaves_as_cache() {
        let (trace, trained, capacity) = trained_setup();
        let mut cm = CmPolicy::new(&trained.caching, capacity);
        let stats = simulate(&mut cm, trace.accesses());
        assert_eq!(stats.total(), trace.len() as u64);
        assert!(cm.len() <= cm.capacity());
        assert!(stats.hit_rate() > 0.0);
    }

    #[test]
    fn pm_prefetcher_emits_predictions() {
        let (trace, trained, _) = trained_setup();
        let cfg = trained.caching.config().clone();
        let mut pm = PmPrefetcher::new(&trained.prefetch, &cfg, trained.codec.clone());
        let mut emitted = 0usize;
        for &k in trace.accesses().iter().take(500) {
            emitted += pm.on_access(k, false).len();
        }
        assert!(emitted > 0, "prefetch model never predicted");
    }

    #[test]
    fn works_with_inference_engine() {
        let (trace, trained, capacity) = trained_setup();
        let engine = recmg_dlrm::InferenceEngine::new(
            recmg_dlrm::DlrmModel::new(recmg_dlrm::DlrmConfig::small(), 3),
            recmg_dlrm::EmbeddingStore::new(16),
            recmg_dlrm::TimingConfig::default_scaled(),
        );
        let mut recmg = RecMgSystem::from_trained(&trained, capacity);
        let mut lru = PolicyBufferManager::new(FullyAssocLru::new(capacity));
        let r_rec = engine.run(&trace, 10, &mut recmg);
        let r_lru = engine.run(&trace, 10, &mut lru);
        assert!(r_rec.total_ms > 0.0 && r_lru.total_ms > 0.0);
    }
}
