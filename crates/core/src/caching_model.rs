//! The caching model (paper §V-A).
//!
//! A seq2seq LSTM stack with attention that reads a chunk of hashed
//! `(table, row)` tokens and emits, per position, a 1-bit priority: should
//! this vector stay in the GPU buffer? Trained with binary cross-entropy
//! against the OPTgen caching trace, which is what lets a 37K-parameter
//! model "approximate the optimal policy" (§VII-B).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use recmg_tensor::nn::{DecoderFeed, Embedding, Linear, Module, StackedSeq2Seq};
use recmg_tensor::optim::{Adam, Optimizer};
use recmg_tensor::{ParamStore, Tape, Tensor, Var};
use recmg_trace::VectorKey;

use crate::config::{GuidancePrecision, RecMgConfig};
use crate::fast::{FastLstm, FastMat, FastScratch, FastStack};
use crate::labeling::Chunk;

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock training time.
    pub wall: Duration,
}

impl TrainingReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// The caching model.
#[derive(Debug, Clone)]
pub struct CachingModel {
    cfg: RecMgConfig,
    store: ParamStore,
    emb: Embedding,
    stacks: StackedSeq2Seq,
    head: Linear,
    threshold: f32,
}

impl CachingModel {
    /// Builds an untrained model with `cfg.caching_stacks` LSTM stacks.
    pub fn new(cfg: &RecMgConfig) -> Self {
        Self::with_stacks(cfg, cfg.caching_stacks)
    }

    /// Builds with an explicit stack count (the Table III sensitivity
    /// study).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is zero.
    pub fn with_stacks(cfg: &RecMgConfig, stacks: usize) -> Self {
        cfg.validate();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let emb = Embedding::new(&mut store, &mut rng, "cm.emb", cfg.vocab, cfg.embed_dim);
        let stacks = StackedSeq2Seq::new(
            &mut store,
            &mut rng,
            "cm",
            cfg.embed_dim,
            cfg.caching_hidden,
            stacks,
        );
        let head = Linear::new(&mut store, &mut rng, "cm.head", cfg.caching_hidden, 1);
        CachingModel {
            cfg: cfg.clone(),
            store,
            emb,
            stacks,
            head,
            threshold: 0.5,
        }
    }

    /// Total learnable parameters (Table III's "model size").
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// Number of LSTM stacks.
    pub fn n_stacks(&self) -> usize {
        self.stacks.n_stacks()
    }

    /// The configuration.
    pub fn config(&self) -> &RecMgConfig {
        &self.cfg
    }

    /// Replaces runtime configuration fields (e.g. `eviction_speed`,
    /// `input_len`). Architecture-defining fields must be unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `vocab`, `embed_dim`, or `caching_hidden` differ from the
    /// weights this model was built with.
    pub fn set_config(&mut self, cfg: RecMgConfig) {
        cfg.validate();
        assert_eq!(cfg.vocab, self.cfg.vocab, "vocab is architectural");
        assert_eq!(
            cfg.embed_dim, self.cfg.embed_dim,
            "embed_dim is architectural"
        );
        assert_eq!(
            cfg.caching_hidden, self.cfg.caching_hidden,
            "hidden size is architectural"
        );
        self.cfg = cfg;
    }

    fn tokens(&self, keys: &[VectorKey]) -> Vec<usize> {
        keys.iter().map(|k| k.bucket(self.cfg.vocab)).collect()
    }

    /// Forward pass: per-position logits `[T, 1]`.
    fn forward(&self, tape: &mut Tape, keys: &[VectorKey]) -> Var {
        let tokens = self.tokens(keys);
        let x = self.emb.forward(tape, &self.store, &tokens);
        let xs: Vec<Var> = (0..tokens.len())
            .map(|i| tape.gather_rows(x, &[i]))
            .collect();
        let outs = self
            .stacks
            .forward(tape, &self.store, &xs, DecoderFeed::Aligned);
        let logits: Vec<Var> = outs
            .into_iter()
            .map(|o| self.head.forward(tape, &self.store, o))
            .collect();
        tape.concat_rows(&logits)
    }

    /// Per-position keep probabilities.
    pub fn predict_probs(&self, keys: &[VectorKey]) -> Vec<f32> {
        if keys.is_empty() {
            return Vec::new();
        }
        let mut tape = Tape::new(&self.store);
        let logits = self.forward(&mut tape, keys);
        tape.value(logits)
            .data()
            .iter()
            .map(|&z| recmg_tensor::stable_sigmoid(z))
            .collect()
    }

    /// The 1-bit priorities of Algorithm 1 (probability above the
    /// calibrated threshold).
    pub fn predict(&self, keys: &[VectorKey]) -> Vec<bool> {
        let t = self.threshold;
        self.predict_probs(keys).iter().map(|&p| p > t).collect()
    }

    /// The current decision threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Calibrates the decision threshold so the predicted keep-rate matches
    /// the label base rate on `chunks`.
    ///
    /// OPTgen labels are heavily imbalanced (hot traces are ~80% "keep"),
    /// so an uncalibrated 0.5 cut over-predicts keep and protects vectors
    /// the optimal policy would bypass. Quantile calibration restores the
    /// base rate without retraining — a standard fix for imbalanced binary
    /// classifiers.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty.
    pub fn calibrate_threshold(&mut self, chunks: &[Chunk]) {
        assert!(!chunks.is_empty(), "no calibration chunks");
        let mut probs = Vec::new();
        let mut positives = 0usize;
        let mut total = 0usize;
        for c in chunks {
            probs.extend(self.predict_probs(&c.keys));
            positives += c.labels.iter().filter(|&&l| l).count();
            total += c.labels.len();
        }
        probs.sort_by(|a, b| a.partial_cmp(b).expect("finite probs"));
        let neg_rate = 1.0 - positives as f64 / total.max(1) as f64;
        let idx = ((probs.len() as f64) * neg_rate) as usize;
        self.threshold = probs[idx.min(probs.len() - 1)];
    }

    /// Trains with BCE against OPTgen labels, accumulating gradients over
    /// `minibatch` chunks per optimizer step.
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty or `minibatch`/`epochs` is zero.
    pub fn train(&mut self, chunks: &[Chunk], epochs: usize, minibatch: usize) -> TrainingReport {
        assert!(!chunks.is_empty(), "no training chunks");
        assert!(epochs > 0 && minibatch > 0, "epochs/minibatch must be > 0");
        let start = Instant::now();
        let params: Vec<_> = self
            .emb
            .params()
            .into_iter()
            .chain(self.stacks.params())
            .chain(self.head.params())
            .collect();
        let mut opt = Adam::new(params, self.cfg.lr);
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xCAC11E);
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut sum = 0.0f32;
            let mut in_batch = 0usize;
            for &ci in &order {
                let c = &chunks[ci];
                let target: Vec<f32> = c
                    .labels
                    .iter()
                    .map(|&l| if l { 1.0 } else { 0.0 })
                    .collect();
                let mut tape = Tape::new(&self.store);
                let logits = self.forward(&mut tape, &c.keys);
                let loss =
                    tape.bce_with_logits(logits, Tensor::from_vec(target, &[c.keys.len(), 1]));
                sum += tape.value(loss).data()[0];
                tape.backward(loss, &mut self.store);
                in_batch += 1;
                if in_batch >= minibatch {
                    self.store.clip_grad_norm(5.0);
                    opt.step(&mut self.store);
                    in_batch = 0;
                }
            }
            if in_batch > 0 {
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
            epoch_losses.push(sum / chunks.len() as f32);
        }
        TrainingReport {
            epoch_losses,
            wall: start.elapsed(),
        }
    }

    /// Compiles a fast, tape-free inference snapshot of the current
    /// weights for online serving (§VI-C), at exact `f32` precision.
    pub fn compile(&self) -> FastCachingModel {
        self.compile_with(GuidancePrecision::default())
    }

    /// Compiles with an explicit weight precision:
    /// [`GuidancePrecision::Int8`] quantizes every weight matrix at build
    /// time (§VI-C's quantization optimization), shrinking weight traffic
    /// ~4× at a bounded output divergence.
    pub fn compile_with(&self, precision: GuidancePrecision) -> FastCachingModel {
        let emb = self.store.value(self.emb.params()[0]).clone();
        let sids = self.stacks.params();
        let stacks = (0..self.stacks.n_stacks())
            .map(|s| {
                let w = |i: usize| self.store.value(sids[8 * s + i]).clone();
                FastStack::new(
                    FastLstm::new(w(0), w(1), w(2), precision),
                    FastLstm::new(w(3), w(4), w(5), precision),
                    w(6),
                    w(7),
                    precision,
                )
            })
            .collect();
        FastCachingModel {
            vocab: self.cfg.vocab,
            emb,
            stacks,
            head_w: FastMat::compile(self.store.value(self.head.weight_id()).clone(), precision),
            head_b: self.store.value(self.head.bias_id()).clone(),
            threshold: self.threshold,
            precision,
        }
    }

    /// Binary accuracy against labeled chunks (the "Acc" of Table III and
    /// the dashed line of Fig. 8).
    pub fn accuracy(&self, chunks: &[Chunk]) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for c in chunks {
            let pred = self.predict(&c.keys);
            for (p, &l) in pred.iter().zip(&c.labels) {
                if *p == l {
                    correct += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// A weight snapshot of a [`CachingModel`] with an allocation-light forward
/// pass (no autograd tape), suitable for per-thread online serving.
#[derive(Debug, Clone)]
pub struct FastCachingModel {
    vocab: usize,
    emb: Tensor,
    stacks: Vec<FastStack>,
    head_w: FastMat,
    head_b: Tensor,
    threshold: f32,
    precision: GuidancePrecision,
}

impl FastCachingModel {
    /// The weight precision this snapshot was compiled at.
    pub fn precision(&self) -> GuidancePrecision {
        self.precision
    }

    /// Whether the weights are int8-quantized.
    pub fn is_quantized(&self) -> bool {
        self.precision == GuidancePrecision::Int8
    }

    /// Weight footprint in bytes (embedding table included).
    pub fn size_bytes(&self) -> usize {
        self.emb.len() * std::mem::size_of::<f32>()
            + self.stacks.iter().map(FastStack::size_bytes).sum::<usize>()
            + self.head_w.size_bytes()
            + self.head_b.len() * std::mem::size_of::<f32>()
    }

    /// Per-position keep probabilities (matches
    /// [`CachingModel::predict_probs`] to ≤1e-5) — the batch-of-one case
    /// of [`FastCachingModel::probs_batch`].
    pub fn probs(&self, keys: &[VectorKey]) -> Vec<f32> {
        self.probs_batch(&[keys]).pop().unwrap_or_default()
    }

    /// The 1-bit priorities (probability above the calibrated threshold).
    pub fn predict(&self, keys: &[VectorKey]) -> Vec<bool> {
        let t = self.threshold;
        self.probs(keys).iter().map(|&p| p > t).collect()
    }

    /// Per-position keep probabilities for many chunks in one batched
    /// forward (allocating a fresh [`FastScratch`]; hot loops should hold
    /// one and call [`FastCachingModel::probs_batch_with`]).
    pub fn probs_batch(&self, chunks: &[&[VectorKey]]) -> Vec<Vec<f32>> {
        let mut scratch = FastScratch::default();
        self.probs_batch_with(chunks, &mut scratch)
    }

    /// Per-position keep probabilities for many chunks, batched and
    /// allocation-light: chunks are bucketed by length, each bucket runs
    /// one batch-interleaved time-major `[t, d, bsz]` forward through the
    /// LSTM stacks (one pass over the weights per bucket, not per chunk)
    /// on the runtime-selected kernel lane, and the head runs one
    /// interleaved dense batch per step. Per chunk, the result is
    /// bit-identical to [`FastCachingModel::probs`]: lanes are independent
    /// and each item's f32 operation sequence matches the single-item
    /// path.
    pub fn probs_batch_with(
        &self,
        chunks: &[&[VectorKey]],
        scratch: &mut FastScratch,
    ) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = chunks.iter().map(|c| vec![0.0f32; c.len()]).collect();
        let lane = crate::fast::active_lane();
        let h = self.head_w.rows();
        crate::fast::forward_buckets(
            lane,
            &self.emb,
            self.vocab,
            &self.stacks,
            None,
            chunks,
            scratch,
            |bucket, t, bsz, cur, spare, qs| {
                // Head per step group: [h, bsz] → [1, bsz]; `spare`
                // collects the interleaved [t, bsz] logits.
                spare.clear();
                spare.resize(t * bsz, 0.0);
                for ti in 0..t {
                    crate::fast::fast_linear_batch(
                        lane,
                        &self.head_w,
                        &self.head_b,
                        bsz,
                        &cur[ti * h * bsz..(ti + 1) * h * bsz],
                        &mut spare[ti * bsz..(ti + 1) * bsz],
                        qs,
                    );
                }
                for (b, &ci) in bucket.iter().enumerate() {
                    for ti in 0..t {
                        out[ci][ti] = recmg_tensor::stable_sigmoid(spare[ti * bsz + b]);
                    }
                }
            },
        );
        out
    }

    /// Batched 1-bit priorities (allocating a fresh scratch).
    pub fn predict_batch(&self, chunks: &[&[VectorKey]]) -> Vec<Vec<bool>> {
        let mut scratch = FastScratch::default();
        self.predict_batch_with(chunks, &mut scratch)
    }

    /// Batched 1-bit priorities over a caller-held scratch — the guidance
    /// plane's entry point ([`crate::session`]).
    pub fn predict_batch_with(
        &self,
        chunks: &[&[VectorKey]],
        scratch: &mut FastScratch,
    ) -> Vec<Vec<bool>> {
        let t = self.threshold;
        self.probs_batch_with(chunks, scratch)
            .into_iter()
            .map(|probs| probs.into_iter().map(|p| p > t).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(0), RowId(r))
    }

    /// Chunks where even rows are "keep" and odd rows "evict" — a pattern
    /// the model must be able to learn from token identity alone.
    fn separable_chunks(n: usize, len: usize) -> Vec<Chunk> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(9);
        (0..n)
            .map(|_| {
                let keys: Vec<VectorKey> = (0..len).map(|_| key(rng.gen_range(0..40))).collect();
                let labels = keys.iter().map(|k| k.row().0 % 2 == 0).collect();
                Chunk { keys, labels }
            })
            .collect()
    }

    #[test]
    fn untrained_accuracy_near_chance() {
        let cfg = RecMgConfig::tiny();
        let m = CachingModel::new(&cfg);
        let chunks = separable_chunks(40, cfg.input_len);
        let acc = m.accuracy(&chunks);
        assert!(acc > 0.2 && acc < 0.8, "untrained accuracy {acc}");
    }

    #[test]
    fn learns_separable_labels() {
        let cfg = RecMgConfig::tiny();
        let mut m = CachingModel::new(&cfg);
        let chunks = separable_chunks(60, cfg.input_len);
        let report = m.train(&chunks, 6, 4);
        assert!(
            report.final_loss() < report.epoch_losses[0],
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        let acc = m.accuracy(&chunks);
        assert!(acc > 0.85, "trained accuracy {acc}");
    }

    #[test]
    fn predict_len_matches_input() {
        let cfg = RecMgConfig::tiny();
        let m = CachingModel::new(&cfg);
        let keys: Vec<VectorKey> = (0..5).map(key).collect();
        assert_eq!(m.predict(&keys).len(), 5);
        assert!(m.predict(&[]).is_empty());
    }

    #[test]
    fn param_count_grows_with_stacks() {
        let cfg = RecMgConfig::tiny();
        let p1 = CachingModel::with_stacks(&cfg, 1).num_params();
        let p2 = CachingModel::with_stacks(&cfg, 2).num_params();
        let p3 = CachingModel::with_stacks(&cfg, 3).num_params();
        assert!(p1 < p2 && p2 < p3);
        assert_eq!(CachingModel::with_stacks(&cfg, 2).n_stacks(), 2);
    }

    #[test]
    fn compiled_model_matches_tape_forward() {
        let cfg = RecMgConfig::tiny();
        let m = CachingModel::new(&cfg);
        let fast = m.compile();
        let keys: Vec<VectorKey> = (0..cfg.input_len as u64).map(|r| key(r * 3 % 17)).collect();
        let a = m.predict_probs(&keys);
        let b = fast.probs(&keys);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "tape {x} vs fast {y}");
        }
        assert_eq!(m.predict(&keys), fast.predict(&keys));
    }

    #[test]
    fn quantized_compile_shrinks_and_tracks_f32() {
        let cfg = RecMgConfig::tiny();
        let m = CachingModel::new(&cfg);
        let f = m.compile();
        let q = m.compile_with(GuidancePrecision::Int8);
        assert!(!f.is_quantized());
        assert!(q.is_quantized());
        assert_eq!(q.precision(), GuidancePrecision::Int8);
        // Embedding + biases stay f32, so the shrink is below 4× but must
        // be substantial (> 1.5× even at tiny dims).
        assert!(
            q.size_bytes() * 3 < f.size_bytes() * 2,
            "{} vs {}",
            q.size_bytes(),
            f.size_bytes()
        );
        let keys: Vec<VectorKey> = (0..cfg.input_len as u64).map(|r| key(r * 3 % 29)).collect();
        let pf = f.probs(&keys);
        let pq = q.probs(&keys);
        assert_eq!(pf.len(), pq.len());
        for (a, b) in pf.iter().zip(&pq) {
            assert!((a - b).abs() < 0.25, "f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn probs_batch_handles_empty_and_mixed_lengths() {
        let cfg = RecMgConfig::tiny();
        let fast = CachingModel::new(&cfg).compile();
        let a: Vec<VectorKey> = (0..5).map(key).collect();
        let b: Vec<VectorKey> = Vec::new();
        let c: Vec<VectorKey> = (0..9).map(|r| key(r * 7 % 23)).collect();
        let got = fast.probs_batch(&[&a, &b, &c]);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].len(), 5);
        assert!(got[1].is_empty());
        assert_eq!(got[2].len(), 9);
        assert_eq!(got[0], fast.probs(&a));
        assert_eq!(got[2], fast.probs(&c));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// `probs_batch` / `predict_batch` match the per-item path across
        /// random batch sizes and sequence lengths (mixed lengths exercise
        /// the bucketing).
        #[test]
        fn probs_batch_matches_per_item(
            seed in 0u64..500,
            lens in proptest::prelude::prop::collection::vec(1usize..20, 1..7),
        ) {
            use rand::Rng;
            let cfg = RecMgConfig::tiny();
            let fast = CachingModel::new(&cfg).compile();
            let mut rng = StdRng::seed_from_u64(seed);
            let chunks: Vec<Vec<VectorKey>> = lens
                .iter()
                .map(|&n| (0..n).map(|_| key(rng.gen_range(0..200))).collect())
                .collect();
            let refs: Vec<&[VectorKey]> = chunks.iter().map(Vec::as_slice).collect();
            let batched = fast.probs_batch(&refs);
            for (chunk, got) in chunks.iter().zip(&batched) {
                let single = fast.probs(chunk);
                proptest::prop_assert_eq!(single.len(), got.len());
                for (x, y) in got.iter().zip(&single) {
                    proptest::prop_assert!((x - y).abs() < 1e-5, "batched {} vs single {}", x, y);
                }
            }
            let bits = fast.predict_batch(&refs);
            for (chunk, got) in chunks.iter().zip(&bits) {
                proptest::prop_assert_eq!(got, &fast.predict(chunk));
            }
        }
    }

    #[test]
    fn default_config_param_count_near_paper() {
        // Paper Table III row 1: 37,055 parameters.
        let m = CachingModel::new(&RecMgConfig::default());
        let p = m.num_params() as f64;
        assert!(
            (p / 37_055.0 - 1.0).abs() < 0.2,
            "param count {p} not within 20% of the paper's 37,055"
        );
    }
}
