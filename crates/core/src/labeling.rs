//! Offline training-data generation (paper §VI-A).
//!
//! "To generate the ground-truth labels, we first collect traces of
//! embedding-vector accesses from DLRM inferences. Each trace is then fed
//! into optgen, which determines what would have been cached if Belady's
//! algorithm were used ... The caching trace serves as the ground-truth for
//! training the caching model. The prefetch trace, derived from the caching
//! trace, consists of embedding vectors leading to cache misses, which
//! serves as the ground-truth for prefetch model training."
//!
//! The access stream is cut into fixed-size [`Chunk`]s ("RecMG truncates
//! the sequence of prior vector accesses into a set of fix-sized shorter
//! sequences", §V-A) without regard to query boundaries, so chunks can
//! carry cross-query correlation.

use recmg_cache::optgen;
use recmg_trace::VectorKey;

use crate::config::RecMgConfig;

/// One caching-model training example: a chunk of accesses and the OPT
/// keep/evict label of each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The accessed vectors, in order.
    pub keys: Vec<VectorKey>,
    /// `labels[i]` is true iff OPT keeps `keys[i]` until its next reuse.
    pub labels: Vec<bool>,
}

/// One prefetch-model training example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchExample {
    /// The input chunk (same input as the caching model, §V-B).
    pub input: Vec<VectorKey>,
    /// The next `|W|` OPT-missing vectors after the chunk — the accesses
    /// prefetching must cover.
    pub window: Vec<VectorKey>,
}

/// The assembled training set.
#[derive(Debug, Clone)]
pub struct TrainingData {
    /// Caching-model examples.
    pub chunks: Vec<Chunk>,
    /// Prefetch-model examples.
    pub prefetch: Vec<PrefetchExample>,
    /// OPT hit rate at the labeling capacity (diagnostic).
    pub opt_hit_rate: f64,
    /// Capacity OPTgen labeled at (80% of the buffer by default).
    pub label_capacity: usize,
}

/// Builds training data from an access stream for a GPU buffer of
/// `buffer_capacity` vectors.
///
/// # Panics
///
/// Panics if `buffer_capacity` is zero or the stream is shorter than one
/// chunk.
pub fn build_training_data(
    accesses: &[VectorKey],
    cfg: &RecMgConfig,
    buffer_capacity: usize,
) -> TrainingData {
    cfg.validate();
    assert!(buffer_capacity > 0, "buffer capacity must be positive");
    assert!(
        accesses.len() >= cfg.input_len,
        "trace shorter than one chunk"
    );
    let label_capacity = ((buffer_capacity as f64) * cfg.optgen_buffer_fraction)
        .round()
        .max(1.0) as usize;
    let og = optgen(accesses, label_capacity);

    // Caching chunks.
    let mut chunks = Vec::new();
    let mut pos = 0;
    while pos + cfg.input_len <= accesses.len() {
        chunks.push(Chunk {
            keys: accesses[pos..pos + cfg.input_len].to_vec(),
            labels: og.labels[pos..pos + cfg.input_len].to_vec(),
        });
        pos += cfg.input_len;
    }

    // Prefetch examples: window over the *miss* subsequence.
    let miss_positions = og.miss_positions();
    let w = cfg.window_len();
    let mut prefetch = Vec::new();
    let mut chunk_end = cfg.input_len;
    let mut mp = 0usize; // first miss position >= chunk_end
    while chunk_end <= accesses.len() {
        while mp < miss_positions.len() && miss_positions[mp] < chunk_end {
            mp += 1;
        }
        if mp + w <= miss_positions.len() {
            prefetch.push(PrefetchExample {
                input: accesses[chunk_end - cfg.input_len..chunk_end].to_vec(),
                window: miss_positions[mp..mp + w]
                    .iter()
                    .map(|&p| accesses[p])
                    .collect(),
            });
        }
        chunk_end += cfg.input_len;
    }

    TrainingData {
        chunks,
        prefetch,
        opt_hit_rate: og.stats.hit_rate(),
        label_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recmg_trace::{RowId, SyntheticConfig, TableId};

    fn key(r: u64) -> VectorKey {
        VectorKey::new(TableId(0), RowId(r))
    }

    #[test]
    fn chunk_sizes_and_counts() {
        let cfg = RecMgConfig::tiny(); // input_len 8
        let acc: Vec<VectorKey> = (0..100).map(|i| key(i % 10)).collect();
        let td = build_training_data(&acc, &cfg, 10);
        assert_eq!(td.chunks.len(), 100 / 8);
        assert!(td.chunks.iter().all(|c| c.keys.len() == 8));
        assert!(td.chunks.iter().all(|c| c.labels.len() == 8));
    }

    #[test]
    fn label_capacity_is_80_percent() {
        let cfg = RecMgConfig::tiny();
        let acc: Vec<VectorKey> = (0..50).map(|i| key(i % 5)).collect();
        let td = build_training_data(&acc, &cfg, 10);
        assert_eq!(td.label_capacity, 8);
    }

    #[test]
    fn hot_keys_get_positive_labels() {
        // With a small working set and ample capacity, every re-referenced
        // access should be labeled "keep".
        let cfg = RecMgConfig::tiny();
        let acc: Vec<VectorKey> = (0..64).map(|i| key(i % 4)).collect();
        let td = build_training_data(&acc, &cfg, 8);
        let positives: usize = td
            .chunks
            .iter()
            .flat_map(|c| &c.labels)
            .filter(|&&l| l)
            .count();
        assert!(positives > 50, "positives {positives}");
        assert!(td.opt_hit_rate > 0.9);
    }

    #[test]
    fn prefetch_windows_are_opt_misses() {
        let cfg = RecMgConfig::tiny();
        let trace = SyntheticConfig::tiny(61).generate();
        let td = build_training_data(trace.accesses(), &cfg, 32);
        assert!(!td.prefetch.is_empty());
        let w = cfg.window_len();
        for ex in &td.prefetch {
            assert_eq!(ex.input.len(), cfg.input_len);
            assert_eq!(ex.window.len(), w);
        }
    }

    #[test]
    fn streaming_trace_labels_all_negative() {
        // No key ever repeats → OPT keeps nothing.
        let cfg = RecMgConfig::tiny();
        let acc: Vec<VectorKey> = (0..80).map(key).collect();
        let td = build_training_data(&acc, &cfg, 16);
        assert!(td.chunks.iter().all(|c| c.labels.iter().all(|&l| !l)));
        assert_eq!(td.opt_hit_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "shorter than one chunk")]
    fn tiny_trace_rejected() {
        let cfg = RecMgConfig::default();
        let _ = build_training_data(&[key(1)], &cfg, 10);
    }
}
