//! Working-set sketches: cardinality estimation for shard sizing.
//!
//! PR 4's `WorkingSet` placement apportions tier capacity by per-shard
//! *miss mass*, but miss counts conflate capacity pressure with pure
//! access volume: a shard hammering a handful of cold-start keys looks as
//! hungry as one whose working set genuinely does not fit. The paper's
//! premise — and RecShard's — is that placement should track the actual
//! *reuse footprint* of each embedding-table shard, i.e. how many distinct
//! vectors it touches over a recent window. This module provides that
//! signal cheaply enough for the demand path:
//!
//! * [`CardinalitySketch`] — an allocation-light HyperLogLog (Flajolet et
//!   al., 2007) with an exact small-set mode below a configurable
//!   threshold, so tiny working sets are counted exactly and large ones
//!   within the standard `1.04/√m` error bound;
//! * [`WorkingSetTracker`] — a sliding window of per-epoch sketches over a
//!   shard's demand stream, reporting the windowed unique-key footprint
//!   and a *phase score* (estimated fraction of the latest epoch's keys
//!   that are new versus the trailing window — a Jaccard-style overlap
//!   proxy computed from merged-vs-epoch cardinalities), which is what
//!   lets the [`Rebalancer`](crate::Rebalancer) re-place a live system
//!   within one epoch of a skew flip instead of waiting out a fixed
//!   access count.
//!
//! Every operation is deterministic (one fixed 64-bit mixer, no
//! randomness, no clocks): the same access stream always produces the same
//! estimates, which is what makes the phase-change integration tests and
//! the `working_set_estimation` bench reproducible.

use std::collections::VecDeque;

use crate::config::SketchConfig;

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer. Deliberately a
/// *different* constant schedule than [`crate::ShardRouter`]'s hash — the
/// sketch lives inside per-shard buffers, and reusing the routing hash
/// would correlate register selection with the shard partition (within a
/// shard, all keys share a residue class of the routing hash, which would
/// starve registers and bias every estimate).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Ertl's `σ` series: `σ(x) = x + Σ_{k≥1} x^(2^k) · 2^(k-1)` — the
/// empty-register correction term. Diverges at `x = 1` (an all-empty
/// sketch), which callers map to an estimate of zero.
fn sigma(x: f64) -> f64 {
    if x == 1.0 {
        return f64::INFINITY;
    }
    let (mut x, mut y, mut z) = (x, 1.0f64, x);
    loop {
        x *= x;
        let z_prev = z;
        z += x * y;
        y += y;
        if z == z_prev || !z.is_finite() {
            return z;
        }
    }
}

/// Ertl's `τ` series: the saturated-register correction term
/// (`τ(x) = (1 - x - Σ_{k≥1} (1 - x^(2^-k))² · 2^-k) / 3`).
fn tau(x: f64) -> f64 {
    if x == 0.0 || x == 1.0 {
        return 0.0;
    }
    let (mut x, mut y, mut z) = (x, 1.0f64, 1.0 - x);
    loop {
        x = x.sqrt();
        let z_prev = z;
        y *= 0.5;
        z -= (1.0 - x) * (1.0 - x) * y;
        if z == z_prev {
            return z / 3.0;
        }
    }
}

/// Internal representation: exact hash set below the threshold, HLL
/// registers above it.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// Sorted, deduplicated hashes — exact counting for small sets. Kept
    /// sorted so the representation (and therefore [`CardinalitySketch`]
    /// equality and merges) is independent of insertion order.
    Exact(Vec<u64>),
    /// One 6-bit-worthy rank per register (stored as `u8`).
    Hll(Vec<u8>),
}

/// HyperLogLog cardinality sketch with an exact small-set mode.
///
/// Below `exact_threshold` distinct keys the sketch stores raw hashes and
/// counts exactly; the first insert beyond the threshold upgrades it to
/// `m = registers` HLL registers (replaying the stored hashes, so nothing
/// is lost). Estimates use Ertl's improved raw estimator (see
/// [`CardinalitySketch::estimate`]), giving a relative standard error of
/// about `1.04/√m` (~6.5% at the default 256 registers) with no
/// bias-threshold switchovers.
///
/// Merging is a true union: exact+exact stays exact while the union fits,
/// anything else takes the register-wise maximum. Both paths produce a
/// canonical representation, so merge is commutative and associative
/// *exactly* (pinned by proptests), not just in expectation — which is
/// what lets per-epoch sketches merge into window estimates in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardinalitySketch {
    repr: Repr,
    /// HLL register count `m` (power of two).
    registers: usize,
    /// Distinct-key count at which exact mode upgrades to HLL.
    exact_threshold: usize,
}

impl CardinalitySketch {
    /// An empty sketch with the given register count and exact-mode
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is not a power of two in `[16, 65536]`.
    pub fn new(registers: usize, exact_threshold: usize) -> Self {
        assert!(
            registers.is_power_of_two() && (16..=65536).contains(&registers),
            "registers must be a power of two in [16, 65536]"
        );
        CardinalitySketch {
            repr: Repr::Exact(Vec::new()),
            registers,
            exact_threshold,
        }
    }

    /// An empty sketch shaped by `cfg`.
    pub fn from_config(cfg: &SketchConfig) -> Self {
        Self::new(cfg.registers, cfg.exact_threshold)
    }

    /// Register count `m`.
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// Whether the sketch is still counting exactly.
    pub fn is_exact(&self) -> bool {
        matches!(self.repr, Repr::Exact(_))
    }

    /// Relative standard error of the HLL estimator (`1.04/√m`); exact
    /// mode has zero error by construction.
    pub fn std_error(&self) -> f64 {
        1.04 / (self.registers as f64).sqrt()
    }

    /// Observes a key (hashed internally with a full-avalanche mixer).
    pub fn insert(&mut self, key: u64) {
        self.insert_hash(mix64(key));
    }

    /// Observes a pre-mixed 64-bit hash. All insert/merge paths funnel
    /// through here so exact mode and HLL mode see identical hash streams
    /// (the crossover-continuity property).
    fn insert_hash(&mut self, h: u64) {
        match &mut self.repr {
            Repr::Exact(hashes) => {
                if let Err(pos) = hashes.binary_search(&h) {
                    hashes.insert(pos, h);
                    if hashes.len() > self.exact_threshold {
                        self.upgrade();
                    }
                }
            }
            Repr::Hll(regs) => Self::hll_insert(regs, h),
        }
    }

    /// Register update: the top `log2(m)` bits pick the register, the rank
    /// is the number of leading zeros (plus one) of the remaining bits.
    #[inline]
    fn hll_insert(regs: &mut [u8], h: u64) {
        let b = regs.len().trailing_zeros();
        let idx = (h >> (64 - b)) as usize;
        // The remaining 64-b bits, left-aligned; an all-zero remainder
        // saturates at the maximum observable rank.
        let rest = h << b;
        let rank = if rest == 0 {
            (64 - b + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rank > regs[idx] {
            regs[idx] = rank;
        }
    }

    /// Converts exact mode to HLL by replaying the stored hashes.
    fn upgrade(&mut self) {
        if let Repr::Exact(hashes) = &self.repr {
            let mut regs = vec![0u8; self.registers];
            for &h in hashes {
                Self::hll_insert(&mut regs, h);
            }
            self.repr = Repr::Hll(regs);
        }
    }

    /// Estimated number of distinct keys observed.
    ///
    /// Exact mode returns the true count. HLL mode uses Ertl's *improved
    /// raw estimator* ("New cardinality estimation algorithms for
    /// HyperLogLog sketches", 2017, Alg. 6): the register histogram is
    /// folded through the `σ`/`τ` series corrections for empty and
    /// saturated registers, which removes the classic estimator's
    /// bias-threshold switchovers — one smooth formula from zero through
    /// `2^64`, with the same `1.04/√m` asymptotic standard error. The
    /// smoothness is what makes the exact→HLL crossover continuous (no
    /// linear-counting cliff just past the threshold).
    pub fn estimate(&self) -> f64 {
        match &self.repr {
            Repr::Exact(hashes) => hashes.len() as f64,
            Repr::Hll(regs) => {
                let m = regs.len() as f64;
                // Rank histogram: ranks run 1..=q+1 with q = 64 - log2(m)
                // (plus bucket 0 for untouched registers).
                let q = 64 - regs.len().trailing_zeros() as usize;
                let mut hist = vec![0u64; q + 2];
                for &r in regs {
                    hist[(r as usize).min(q + 1)] += 1;
                }
                let mut z = m * tau(1.0 - hist[q + 1] as f64 / m);
                for k in (1..=q).rev() {
                    z = 0.5 * (z + hist[k] as f64);
                }
                z += m * sigma(hist[0] as f64 / m);
                // α_∞ = 1 / (2 ln 2).
                let alpha_inf = 0.5 / std::f64::consts::LN_2;
                if z.is_finite() {
                    alpha_inf * m * m / z
                } else {
                    // All registers empty: σ(1) diverges, estimate 0.
                    0.0
                }
            }
        }
    }

    /// [`CardinalitySketch::estimate`] rounded to a count.
    pub fn estimate_u64(&self) -> u64 {
        self.estimate().round().max(0.0) as u64
    }

    /// Unions `other` into `self`. The union of exact sketches stays exact
    /// while it fits the threshold; otherwise both sides are viewed as
    /// registers and merged by register-wise maximum — exactly the sketch
    /// that observing both streams into one sketch would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the sketches have different shapes (register count or
    /// threshold) — merging those would silently corrupt estimates.
    pub fn merge(&mut self, other: &CardinalitySketch) {
        assert_eq!(self.registers, other.registers, "register counts differ");
        assert_eq!(
            self.exact_threshold, other.exact_threshold,
            "exact thresholds differ"
        );
        match (&mut self.repr, &other.repr) {
            (_, Repr::Exact(theirs)) => {
                // Replay through insert_hash: dedups, keeps sorted order,
                // and upgrades automatically if the union outgrows the
                // threshold.
                for &h in theirs {
                    self.insert_hash(h);
                }
            }
            (Repr::Exact(_), Repr::Hll(_)) => {
                self.upgrade();
                self.merge(other);
            }
            (Repr::Hll(mine), Repr::Hll(theirs)) => {
                for (a, &b) in mine.iter_mut().zip(theirs) {
                    *a = (*a).max(b);
                }
            }
        }
    }

    /// Resets the sketch to empty, keeping its shape. Exact mode keeps its
    /// allocation; an HLL sketch drops back to exact mode so a fresh
    /// stream with a tiny working set is counted exactly again.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Exact(hashes) => hashes.clear(),
            Repr::Hll(_) => self.repr = Repr::Exact(Vec::new()),
        }
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Exact(hashes) => hashes.is_empty(),
            Repr::Hll(regs) => regs.iter().all(|&r| r == 0),
        }
    }
}

/// Point-in-time working-set statistics of one tracked demand stream —
/// what a shard reports alongside its
/// [`TierTraffic`](crate::TierTraffic).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkingSetStats {
    /// Estimated distinct keys across the sliding window (current epoch
    /// included).
    pub unique_keys: u64,
    /// Estimated distinct keys of the last *completed* epoch (0 until one
    /// completes).
    pub epoch_unique: u64,
    /// Phase score of the last completed epoch in `[0, 1]`: the estimated
    /// fraction of that epoch's distinct keys that were *not* present in
    /// the trailing window before it. Near 0 on a stationary workload,
    /// near 1 right after a working-set flip.
    pub phase_score: f64,
    /// Epochs completed so far.
    pub epochs: u64,
}

/// Sliding-window unique-key tracker over a demand stream.
///
/// Keys are observed into the *current epoch*'s sketch; every `epoch_len`
/// observations the epoch is rotated into a ring of the last
/// `window_epochs − 1` completed epochs (the window is `window_epochs`
/// epochs including the current one). At each rotation the tracker scores
/// the completed epoch against the trailing window that preceded it:
///
/// ```text
/// novelty = 1 − |epoch ∩ window| / |epoch|
///         ≈ 1 − (|epoch| + |window| − |epoch ∪ window|) / |epoch|
/// ```
///
/// — a containment-style Jaccard proxy computed purely from merged and
/// per-part cardinalities (HLL unions are exact register maxima, so the
/// three estimates share one error model). A stationary workload scores
/// near zero however small the epoch is relative to the window — unlike a
/// plain Jaccard index, containment does not punish epochs that sample
/// only part of the working set. A skew flip scores near one within a
/// single epoch, which is the trigger
/// [`Rebalancer::with_phase_trigger`](crate::Rebalancer::with_phase_trigger)
/// fires on.
///
/// Epoch boundaries are *access-counted*, not wall-clock, so every test
/// and bench over the tracker is deterministic.
#[derive(Debug, Clone)]
pub struct WorkingSetTracker {
    cfg: SketchConfig,
    current: CardinalitySketch,
    /// Last `window_epochs − 1` completed epoch sketches, oldest first.
    ring: VecDeque<CardinalitySketch>,
    /// Observations in the current epoch.
    in_epoch: u64,
    epochs: u64,
    /// Stats frozen at the last rotation (`epoch_unique`, `phase_score`).
    last_epoch_unique: u64,
    last_phase_score: f64,
}

impl WorkingSetTracker {
    /// A tracker shaped by `cfg` (validated).
    pub fn new(cfg: SketchConfig) -> Self {
        cfg.validate();
        WorkingSetTracker {
            current: CardinalitySketch::from_config(&cfg),
            ring: VecDeque::with_capacity(cfg.window_epochs.saturating_sub(1)),
            cfg,
            in_epoch: 0,
            epochs: 0,
            last_epoch_unique: 0,
            last_phase_score: 0.0,
        }
    }

    /// The sketch configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.cfg
    }

    /// Observations per epoch.
    pub fn epoch_len(&self) -> u64 {
        self.cfg.epoch_len
    }

    /// Epochs completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Observes one demand-stream key.
    pub fn observe(&mut self, key: u64) {
        self.current.insert(key);
        self.in_epoch += 1;
        if self.in_epoch >= self.cfg.epoch_len {
            self.rotate();
        }
    }

    /// Merged sketch of the ring (the trailing window *excluding* the
    /// current epoch), or `None` before any epoch completed.
    fn window_sketch(&self) -> Option<CardinalitySketch> {
        let mut it = self.ring.iter();
        let mut merged = it.next()?.clone();
        for s in it {
            merged.merge(s);
        }
        Some(merged)
    }

    /// Completes the current epoch: scores it against the trailing window,
    /// rotates it into the ring, and starts a fresh epoch.
    fn rotate(&mut self) {
        let epoch_est = self.current.estimate();
        self.last_epoch_unique = self.current.estimate_u64();
        self.last_phase_score = match self.window_sketch() {
            None => 0.0,
            Some(window) => {
                let window_est = window.estimate();
                let mut union = window;
                union.merge(&self.current);
                let union_est = union.estimate();
                if epoch_est <= 0.0 {
                    0.0
                } else {
                    // Containment complement, clamped: HLL noise can push
                    // the intersection estimate slightly outside [0, |E|].
                    let inter = (epoch_est + window_est - union_est).max(0.0);
                    (1.0 - inter / epoch_est).clamp(0.0, 1.0)
                }
            }
        };
        // Rotate: the completed epoch joins the ring, the oldest leaves.
        let completed =
            std::mem::replace(&mut self.current, CardinalitySketch::from_config(&self.cfg));
        if self.cfg.window_epochs > 1 {
            if self.ring.len() + 1 >= self.cfg.window_epochs {
                self.ring.pop_front();
            }
            self.ring.push_back(completed);
        }
        self.in_epoch = 0;
        self.epochs += 1;
    }

    /// Estimated distinct keys across the window (ring + current epoch).
    pub fn unique_keys(&self) -> u64 {
        match self.window_sketch() {
            None => self.current.estimate_u64(),
            Some(mut merged) => {
                merged.merge(&self.current);
                merged.estimate_u64()
            }
        }
    }

    /// Point-in-time working-set statistics.
    pub fn stats(&self) -> WorkingSetStats {
        WorkingSetStats {
            unique_keys: self.unique_keys(),
            epoch_unique: self.last_epoch_unique,
            phase_score: self.last_phase_score,
            epochs: self.epochs,
        }
    }

    /// Phase score of the last completed epoch (0 before any completes).
    pub fn phase_score(&self) -> f64 {
        self.last_phase_score
    }

    /// Resets all window state (a rebalance that rebuilt the stream can
    /// start observing afresh).
    pub fn reset(&mut self) {
        self.current.clear();
        self.ring.clear();
        self.in_epoch = 0;
        self.epochs = 0;
        self.last_epoch_unique = 0;
        self.last_phase_score = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic stream of distinct keys (SplitMix64 over a seed
    /// counter — distinct inputs stay distinct).
    fn keys(seed: u64, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| seed.wrapping_add(i)).collect()
    }

    fn sketch_of(keys: &[u64], m: usize, threshold: usize) -> CardinalitySketch {
        let mut s = CardinalitySketch::new(m, threshold);
        for &k in keys {
            s.insert(k);
        }
        s
    }

    #[test]
    fn exact_mode_counts_exactly_with_duplicates() {
        let mut s = CardinalitySketch::new(256, 64);
        for k in keys(7, 50) {
            s.insert(k);
            s.insert(k); // duplicates are free
        }
        assert!(s.is_exact());
        assert_eq!(s.estimate_u64(), 50);
        assert!(!s.is_empty());
    }

    #[test]
    fn upgrade_happens_past_threshold() {
        let mut s = CardinalitySketch::new(256, 32);
        for k in keys(1, 32) {
            s.insert(k);
        }
        assert!(s.is_exact());
        s.insert(999_999);
        assert!(!s.is_exact(), "33rd distinct key upgrades to HLL");
    }

    #[test]
    fn clear_empties_in_place() {
        let mut s = sketch_of(&keys(3, 500), 256, 64);
        assert!(!s.is_exact());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.estimate_u64(), 0);
        // Usable again, exactly, for small sets.
        s.insert(1);
        assert_eq!(s.estimate_u64(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_register_count_panics() {
        let _ = CardinalitySketch::new(100, 8);
    }

    #[test]
    #[should_panic(expected = "register counts differ")]
    fn mismatched_merge_panics() {
        let mut a = CardinalitySketch::new(256, 8);
        let b = CardinalitySketch::new(512, 8);
        a.merge(&b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// HLL estimates obey the standard error bound (σ = 1.04/√m) at
        /// the default 256 registers across cardinalities 10..100k: each
        /// case sweeps a ladder of cardinalities and asserts (a) exact
        /// counts below the threshold, (b) at most one ladder point
        /// beyond 3σ — the max-statistics tail of an *ideal* HLL already
        /// puts ~0.5% of draws there, so "every draw within 3σ" would
        /// reject the correct implementation — and (c) a hard 4.5σ cap
        /// on every point (an implementation bias, as opposed to sampling
        /// noise, blows both budgets immediately).
        #[test]
        fn estimate_within_three_sigma(
            base in 0u64..1_000_000,
            offset in 0usize..5_000,
        ) {
            let sigma = 1.04 / (256f64).sqrt();
            let ladder = [
                10, 40, 64, 80, 200, 700, 2_500, 9_000, 30_000, 95_000,
            ];
            let mut beyond_3 = 0usize;
            for (step, &lo) in ladder.iter().enumerate() {
                let n: usize = lo + if lo > 64 { offset.min(lo) } else { 0 };
                let seed = base.wrapping_mul(0x9E37).wrapping_add(step as u64) << 20;
                let s = sketch_of(&keys(seed, n), 256, 64);
                let est = s.estimate();
                let rel = (est - n as f64).abs() / n as f64;
                if n <= 64 {
                    prop_assert_eq!(est as usize, n, "exact below the threshold");
                } else {
                    prop_assert!(
                        rel <= 4.5 * sigma,
                        "estimate {est:.0} vs true {n}: {rel:.3} breaches the hard cap"
                    );
                    if rel > 3.0 * sigma {
                        beyond_3 += 1;
                    }
                }
            }
            prop_assert!(
                beyond_3 <= 1,
                "{beyond_3}/{} ladder points beyond 3σ — estimator is biased",
                ladder.len()
            );
        }

        /// Merge is commutative and associative *structurally*: any merge
        /// order of three sketches produces identical internal state (not
        /// just close estimates).
        #[test]
        fn merge_is_commutative_and_associative(
            na in 1usize..300,
            nb in 1usize..300,
            nc in 1usize..300,
            sa in 0u64..10_000,
            sb in 10_000u64..20_000,
            sc in 20_000u64..30_000,
        ) {
            let a = sketch_of(&keys(sa << 32, na), 256, 64);
            let b = sketch_of(&keys(sb << 32, nb), 256, 64);
            let c = sketch_of(&keys(sc << 32, nc), 256, 64);
            // ab == ba
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            // (ab)c == a(bc)
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            // Merge equals single-stream observation.
            let mut all: Vec<u64> = Vec::new();
            all.extend(keys(sa << 32, na));
            all.extend(keys(sb << 32, nb));
            all.extend(keys(sc << 32, nc));
            let direct = sketch_of(&all, 256, 64);
            prop_assert_eq!(&ab_c, &direct);
        }

        /// Crossing the exact→HLL threshold never jumps the estimate by
        /// more than the HLL error bound: the sketch one key past the
        /// threshold estimates within 3σ of the true count, continuous
        /// with the exact count one key before it.
        #[test]
        fn crossover_is_continuous(
            threshold in 16usize..128,
            seed in 0u64..100_000,
        ) {
            let ks = keys(seed.wrapping_mul(31), threshold + 1);
            let before = sketch_of(&ks[..threshold], 256, threshold);
            prop_assert!(before.is_exact());
            prop_assert_eq!(before.estimate() as usize, threshold);
            let after = sketch_of(&ks, 256, threshold);
            prop_assert!(!after.is_exact());
            let n = (threshold + 1) as f64;
            let bound = 3.0 * after.std_error() * n;
            prop_assert!(
                (after.estimate() - n).abs() <= bound.max(1.0),
                "crossover jump: exact {threshold} -> hll {:.1}",
                after.estimate()
            );
        }

        /// Epoch-window reset correctness: after feeding `window_epochs`
        /// full epochs of fresh keys, keys older than the window no longer
        /// contribute to the windowed estimate.
        #[test]
        fn window_forgets_old_epochs(
            epoch_keys in 20u64..200,
            window in 2usize..5,
            seed in 0u64..50_000,
        ) {
            let cfg = SketchConfig {
                epoch_len: epoch_keys,
                window_epochs: window,
                ..SketchConfig::default()
            };
            let mut t = WorkingSetTracker::new(cfg);
            // Feed 2×window epochs, each of `epoch_keys` *distinct* fresh
            // keys (epoch e uses the range [e*K, (e+1)*K)).
            let total_epochs = 2 * window;
            for e in 0..total_epochs as u64 {
                for i in 0..epoch_keys {
                    t.observe((seed << 20) + e * epoch_keys + i);
                }
            }
            prop_assert_eq!(t.epochs(), total_epochs as u64);
            // The stream length is an exact multiple of the epoch length,
            // so the current epoch is empty and the window holds exactly
            // the last `window - 1` completed epochs; with a
            // fully-disjoint stream the estimate must sit near
            // (window-1)×epoch_keys — far below the
            // total_epochs×epoch_keys a forgetting-free tracker would
            // report.
            let windowed = ((window - 1) as u64 * epoch_keys) as f64;
            let est = t.unique_keys() as f64;
            let bound = 4.5 * (1.04 / (256f64).sqrt()) * windowed + 1.0;
            prop_assert!(
                (est - windowed).abs() <= bound,
                "window estimate {est} vs expected {windowed} (±{bound:.0})"
            );
            // Half an epoch of fresh keys lands in the current epoch and
            // joins the window immediately.
            for i in 0..epoch_keys / 2 {
                t.observe((seed << 20) + 900_000_000 + i);
            }
            let grown = t.unique_keys() as f64;
            prop_assert!(
                grown >= est + (epoch_keys / 2) as f64 - bound - 2.0,
                "current epoch must extend the window: {est} -> {grown}"
            );
        }

        /// Phase score: stationary streams score near zero, a full
        /// working-set flip scores near one within a single epoch.
        #[test]
        fn phase_score_tracks_flips(
            epoch_keys in 32u64..128,
            seed in 0u64..50_000,
        ) {
            let cfg = SketchConfig {
                epoch_len: epoch_keys,
                window_epochs: 4,
                ..SketchConfig::default()
            };
            let mut t = WorkingSetTracker::new(cfg);
            // Three stationary epochs over the same key set.
            for _ in 0..3 {
                for i in 0..epoch_keys {
                    t.observe((seed << 20) + i);
                }
            }
            prop_assert!(
                t.phase_score() < 0.25,
                "stationary epochs must score low: {}",
                t.phase_score()
            );
            // One epoch of entirely fresh keys.
            for i in 0..epoch_keys {
                t.observe((seed << 20) + 1_000_000 + i);
            }
            prop_assert!(
                t.phase_score() > 0.75,
                "flip epoch must score high: {}",
                t.phase_score()
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        /// The same ladder discipline at DLRM-scale cardinalities with the
        /// `high_cardinality` preset (m = 4096, σ ≈ 1.6%): libai-style
        /// tables have millions of unique rows, and the table-profile
        /// sketches must stay inside the error bound there, not just at
        /// the toy footprints of the default shape. Three cases only —
        /// each streams ~1.7M inserts — but the ladder tops out past 1M
        /// unique keys, the regime the pin/split decisions read.
        #[test]
        fn high_cardinality_estimate_within_bound_at_millions(
            base in 0u64..1_000,
            offset in 0usize..100_000,
        ) {
            let cfg = SketchConfig::high_cardinality();
            let sigma = 1.04 / (cfg.registers as f64).sqrt();
            let ladder = [100usize, 1_000, 60_000, 250_000, 1_100_000];
            let mut beyond_3 = 0usize;
            for (step, &lo) in ladder.iter().enumerate() {
                let n = lo + if lo > cfg.exact_threshold { offset.min(lo) } else { 0 };
                let seed = base.wrapping_mul(0x9E37).wrapping_add(step as u64) << 24;
                let s = sketch_of(&keys(seed, n), cfg.registers, cfg.exact_threshold);
                let est = s.estimate();
                let rel = (est - n as f64).abs() / n as f64;
                if n <= cfg.exact_threshold {
                    prop_assert_eq!(est as usize, n, "exact below the threshold");
                } else {
                    prop_assert!(
                        rel <= 4.5 * sigma,
                        "estimate {est:.0} vs true {n}: {rel:.4} breaches the hard cap"
                    );
                    if rel > 3.0 * sigma {
                        beyond_3 += 1;
                    }
                }
            }
            prop_assert!(
                beyond_3 <= 1,
                "{beyond_3}/{} ladder points beyond 3σ — estimator is biased",
                ladder.len()
            );
        }
    }

    /// Distributional form of the error bound: over a deterministic
    /// 200-case sweep of cardinalities across 10..100k, the empirical
    /// RMSE matches the theoretical σ = 1.04/√m (within 25%), at least
    /// 97% of cases fall within 3σ, and none beyond 4.5σ. This is the
    /// assertion that would catch a systematically biased estimator,
    /// which a per-case cap alone cannot distinguish from tail luck.
    #[test]
    fn estimate_error_distribution_matches_theory() {
        let sigma = 1.04 / (256f64).sqrt();
        let mut sum_sq = 0.0f64;
        let mut beyond_3 = 0usize;
        let mut cases = 0usize;
        for case in 0u64..200 {
            // Log-spaced cardinalities: 10 × 1.047^case spans ~10..100k.
            let n = (10.0 * 1.047f64.powi(case as i32)).round() as usize;
            let s = sketch_of(&keys((case + 1) << 24, n), 256, 64);
            let rel = (s.estimate() - n as f64) / n as f64;
            if n <= 64 {
                assert_eq!(rel, 0.0, "exact below the threshold");
                continue;
            }
            cases += 1;
            sum_sq += rel * rel;
            if rel.abs() > 3.0 * sigma {
                beyond_3 += 1;
            }
            assert!(
                rel.abs() <= 4.5 * sigma,
                "case n={n}: relative error {rel:.3} beyond the hard cap"
            );
        }
        let rmse = (sum_sq / cases as f64).sqrt();
        assert!(
            rmse <= 1.25 * sigma,
            "empirical RMSE {rmse:.4} vs theoretical σ {sigma:.4}"
        );
        assert!(
            beyond_3 * 100 <= cases * 3,
            "{beyond_3}/{cases} cases beyond 3σ (≤3% expected)"
        );
    }

    #[test]
    fn tracker_stats_before_first_epoch() {
        let mut t = WorkingSetTracker::new(SketchConfig::default());
        t.observe(1);
        t.observe(2);
        let s = t.stats();
        assert_eq!(s.unique_keys, 2);
        assert_eq!(s.epoch_unique, 0, "no epoch completed yet");
        assert_eq!(s.phase_score, 0.0);
        assert_eq!(s.epochs, 0);
        t.reset();
        assert_eq!(t.unique_keys(), 0);
        assert_eq!(t.epochs(), 0);
    }

    #[test]
    fn single_epoch_window_tracks_only_current() {
        let cfg = SketchConfig {
            epoch_len: 10,
            window_epochs: 1,
            ..SketchConfig::default()
        };
        let mut t = WorkingSetTracker::new(cfg);
        for i in 0..25u64 {
            t.observe(i);
        }
        // Two epochs rotated out and discarded (window of 1): only the 5
        // keys of the current epoch remain.
        assert_eq!(t.epochs(), 2);
        assert_eq!(t.unique_keys(), 5);
    }
}
