//! # recmg-tensor
//!
//! A small, CPU-only deep-learning substrate built from scratch for the
//! RecMG reproduction ("Machine Learning-Guided Memory Optimization for
//! DLRM Inference on Tiered Memory", HPCA 2025).
//!
//! The paper's models are deliberately tiny (≈37K parameters for the caching
//! model, ≈74K for the prefetch model) and run on spare CPU cores during
//! DLRM inference; this crate provides exactly the machinery they need:
//!
//! * [`Tensor`] — dense row-major `f32` tensors with the usual linear
//!   algebra.
//! * [`Tape`] / [`ParamStore`] — reverse-mode autodiff over a Wengert list,
//!   with gradient accumulation for minibatching.
//! * [`nn`] — `Linear`, `Embedding`, `LstmCell`, Luong [`nn::Attention`],
//!   and the paper's encoder/decoder [`nn::Seq2SeqStack`].
//! * [`optim`] — SGD and Adam.
//! * Losses — binary cross-entropy with logits, softmax cross-entropy, MSE,
//!   and the paper's symmetric normalized **Chamfer measure** (Eq. 5),
//!   available both as tape ops and as free functions
//!   ([`chamfer_forward`], [`chamfer_backward`]).
//! * [`quant`] — int8 weight quantization used by the CPU serving path.
//! * [`simd`] — runtime kernel-lane detection (scalar vs AVX2+FMA) shared
//!   by the quantized and `f32` serving kernels.
//! * [`gradcheck`] — finite-difference gradient checking.
//!
//! # Examples
//!
//! Train a one-parameter model to minimise `(w - 3)^2`:
//!
//! ```
//! use recmg_tensor::optim::{Adam, Optimizer};
//! use recmg_tensor::{ParamStore, Tape, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add_param("w", Tensor::from_slice(&[0.0]));
//! let mut opt = Adam::new(vec![w], 0.1);
//! for _ in 0..200 {
//!     let mut tape = Tape::new(&store);
//!     let wv = tape.param_from(&store, w);
//!     let d = tape.add_scalar(wv, -3.0);
//!     let sq = tape.mul(d, d);
//!     let loss = tape.sum(sq);
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).data()[0] - 3.0).abs() < 0.05);
//! ```

#![allow(clippy::needless_range_loop)] // index-heavy numeric kernels

pub mod align;
pub mod gradcheck;
pub mod nn;
pub mod optim;
pub mod quant;
pub mod simd;
mod tape;
mod tensor;

pub use tape::{chamfer_backward, chamfer_forward, stable_sigmoid, ParamId, ParamStore, Tape, Var};
pub use tensor::Tensor;
